//! A minimal, dependency-free JSON value model, parser, and writer.
//!
//! The serve wire protocol is newline-delimited JSON (one object per
//! line). The build environment is fully offline, so instead of serde
//! this module hand-rolls the three pieces the protocol needs:
//!
//! * [`Value`] — a tagged JSON tree. Numbers keep their integer-ness:
//!   `Int(i64)` round-trips database coordinates exactly, `Float(f64)`
//!   carries timing stats. Object keys preserve insertion order (a
//!   `Vec` of pairs, not a map) so emitted frames are deterministic.
//! * [`parse`] — a recursive-descent parser with a hard recursion
//!   depth limit, full string-escape handling (`\uXXXX` incl.
//!   surrogate pairs), and precise error offsets for protocol error
//!   reports.
//! * [`base64`] — standard alphabet with padding, used to ship GDSII
//!   bytes inside JSON strings.
//!
//! The parser accepts exactly the JSON grammar (RFC 8259) — no
//! comments, trailing commas, or bare words — because every frame a
//! client sends is untrusted input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nesting depth past which [`parse`] rejects the document. Protocol
/// frames are at most a few levels deep; a thousand-level document is
/// a stack-overflow attempt, not a request.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number that lexed as an integer and fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order. Duplicate keys keep the
    /// *last* occurrence when queried through [`Value::get`].
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (last duplicate wins); `None` on
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload: `Int` directly, or a `Float` with an exact
    /// integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value as compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                // JSON has no NaN/Infinity; degrade to null like
                // serde_json's lossy mode rather than emit garbage.
                if f.is_finite() {
                    let start = out.len();
                    let _ = write!(out, "{f}");
                    // `{}` on a whole f64 prints no decimal point;
                    // keep the float-ness so a reader round-trips it.
                    if !out[start..].contains('.') && !out[start..].contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        if n <= i64::MAX as u64 {
            Value::Int(n as i64)
        } else {
            Value::Float(n as f64)
        }
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::from(n as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// Builds an object value from key/value pairs, preserving order.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (a frame is exactly one value).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.error("expected low surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let slice = &self.bytes[start..start + len];
                    out.push_str(std::str::from_utf8(slice).expect("valid utf8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Standard base64 (RFC 4648, with padding) — encode and decode, used
/// to carry GDSII byte streams inside JSON strings.
pub mod base64 {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

    /// Encodes `bytes` with padding.
    pub fn encode(bytes: &[u8]) -> String {
        let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
        for chunk in bytes.chunks(3) {
            let b = [
                chunk[0],
                chunk.get(1).copied().unwrap_or(0),
                chunk.get(2).copied().unwrap_or(0),
            ];
            let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(if chunk.len() > 1 {
                ALPHABET[(n >> 6) as usize & 63] as char
            } else {
                '='
            });
            out.push(if chunk.len() > 2 {
                ALPHABET[n as usize & 63] as char
            } else {
                '='
            });
        }
        out
    }

    /// Decodes padded or unpadded base64; whitespace is not accepted.
    pub fn decode(text: &str) -> Result<Vec<u8>, String> {
        let trimmed = text.trim_end_matches('=');
        let mut out = Vec::with_capacity(trimmed.len() * 3 / 4);
        let mut acc: u32 = 0;
        let mut bits = 0u32;
        for (i, c) in trimmed.bytes().enumerate() {
            let v = match c {
                b'A'..=b'Z' => c - b'A',
                b'a'..=b'z' => c - b'a' + 26,
                b'0'..=b'9' => c - b'0' + 52,
                b'+' => 62,
                b'/' => 63,
                _ => return Err(format!("invalid base64 character at offset {i}")),
            };
            acc = (acc << 6) | u32::from(v);
            bits += 6;
            if bits >= 8 {
                bits -= 8;
                out.push((acc >> bits) as u8);
            }
        }
        if bits >= 6 {
            return Err("truncated base64 input".to_string());
        }
        Ok(out)
    }
}

/// Sorted-key object from a `BTreeMap` — handy for stats maps whose
/// key order should be stable regardless of accumulation order.
pub fn obj_sorted(map: BTreeMap<String, Value>) -> Value {
    Value::Object(map.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"-42"#,
            r#"3.5"#,
            r#""hi there""#,
            r#"[1,2,[3]]"#,
            r#"{"a":1,"b":[true,null],"c":{"d":"e"}}"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(v.to_json(), *case, "round trip {case}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1: breaks f64
        assert_eq!(v, Value::Int(9007199254740993));
        assert_eq!(v.to_json(), "9007199254740993");
        assert!(matches!(parse("1.5").unwrap(), Value::Float(_)));
        assert!(matches!(parse("1e3").unwrap(), Value::Float(_)));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé😀");
        // Writer escapes control characters back out.
        let out = Value::Str("x\n\"\\\u{01}".to_string()).to_json();
        assert_eq!(out, r#""x\n\"\\\u0001""#);
        assert_eq!(parse(&out).unwrap().as_str().unwrap(), "x\n\"\\\u{01}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "--1",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800\"",
            "[1] trailing",
            "{\"a\":1}}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let enc = base64::encode(&data);
            assert_eq!(base64::decode(&enc).unwrap(), data, "len {len}");
        }
        assert_eq!(base64::encode(b"f"), "Zg==");
        assert_eq!(base64::encode(b"fo"), "Zm8=");
        assert_eq!(base64::encode(b"foo"), "Zm9v");
        assert!(base64::decode("a b").is_err());
        assert!(base64::decode("abcde").is_err());
    }
}
