//! The admission and scheduling layer: a bounded priority queue in
//! front of a fixed worker pool.
//!
//! This is the multi-tenant generalization of the engine's sizing
//! handshake. A single run assumes it owns the machine: its
//! `HostExecutor` sizes itself to `host_threads` and hands its
//! [`ThreadGate`] to the device so kernel dispatch and host fan-outs
//! draw from one budget. With many concurrent jobs that assumption
//! breaks — so the server owns one process-wide gate, every job's
//! engine is pointed at it via `EngineOptions::shared_gate`, and this
//! scheduler bounds how many jobs run at once. Worker count caps
//! *runs*; the gate caps *extra threads across all runs*; the two
//! together keep a fleet of jobs from oversubscribing the host the
//! same way one job never oversubscribes it.
//!
//! Eligibility: jobs carry an optional exclusion key (the session id
//! — an edit session's layout and baseline are single-writer), and at
//! most one job per key runs at a time. The queue picks the
//! highest-priority eligible job, FIFO within a priority. Admission
//! is bounded (`max_queue`); a full queue or a draining server
//! rejects instead of buffering unboundedly.
//!
//! Every admitted job runs to a terminal state even when cancelled —
//! cancellation trips the job's [`CancelToken`] and the engine winds
//! down at the next rule boundary, reporting exit 4 through the
//! normal completion path. A panicking job is caught by its worker
//! (the pool survives), reported as a job error, and never wedges the
//! queue.
//!
//! [`ThreadGate`]: odrc_infra::ThreadGate

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use odrc_infra::{CancelReason, CancelToken};
use parking_lot::{Condvar, Mutex};

use crate::proto::ServeError;

/// What the scheduler hands a job when it finally runs.
pub struct JobRun {
    /// The admitted job's id.
    pub job_id: u64,
    /// Milliseconds the job sat in the queue before a worker picked
    /// it up.
    pub queue_wait_ms: u64,
}

type JobFn = Box<dyn FnOnce(&JobRun) + Send>;

struct QueuedJob {
    job_id: u64,
    exclusion: Option<u64>,
    priority: i64,
    seq: u64,
    enqueued: Instant,
    run: JobFn,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<QueuedJob>,
    /// Exclusion keys of currently *running* jobs.
    running_keys: HashSet<u64>,
    running: usize,
    /// Cancel tokens of every live (queued or running) job, for the
    /// `cancel` verb.
    live: Vec<(u64, CancelToken)>,
    draining: bool,
    shutdown: bool,
    seq: u64,
}

/// Server-wide admission counters, exported via the `stats` verb and
/// stamped into each job's `done` event.
#[derive(Default)]
pub struct SchedulerStats {
    pub jobs_admitted: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_panicked: AtomicU64,
}

/// The admission queue plus its worker pool.
pub struct Scheduler {
    state: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    max_queue: usize,
    next_job: AtomicU64,
    pub stats: SchedulerStats,
}

impl Scheduler {
    /// A scheduler with `workers` concurrent job slots and an
    /// admission queue bounded at `max_queue` waiting jobs.
    pub fn new(workers: usize, max_queue: usize) -> Scheduler {
        let state = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            max_queue: max_queue.max(1),
            next_job: AtomicU64::new(1),
            stats: SchedulerStats::default(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("odrc-job-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn job worker")
            })
            .collect();
        Scheduler {
            state,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, or rejects it with a typed error (queue full /
    /// draining). `exclusion` serializes jobs sharing a key (one job
    /// per edit session); `cancel` is the token the `cancel` verb and
    /// client-disconnect teardown will trip.
    ///
    /// Returns the job id.
    pub fn submit(
        &self,
        exclusion: Option<u64>,
        priority: i64,
        cancel: CancelToken,
        run: impl FnOnce(&JobRun) + Send + 'static,
    ) -> Result<u64, ServeError> {
        let mut q = self.state.queue.lock();
        if q.draining || q.shutdown {
            self.state
                .stats
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected("server is draining".to_string()));
        }
        if q.pending.len() >= self.state.max_queue {
            self.state
                .stats
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(format!(
                "queue full ({} waiting jobs)",
                q.pending.len()
            )));
        }
        let job_id = self.state.next_job.fetch_add(1, Ordering::Relaxed);
        q.seq += 1;
        let seq = q.seq;
        q.live.push((job_id, cancel));
        q.pending.push(QueuedJob {
            job_id,
            exclusion,
            priority,
            seq,
            enqueued: Instant::now(),
            run: Box::new(run),
        });
        self.state
            .stats
            .jobs_admitted
            .fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.state.cv.notify_all();
        Ok(job_id)
    }

    /// Trips a live job's cancel token. Queued jobs still run (and
    /// immediately wind down to exit 4 through the normal completion
    /// path, so the submitter always gets its terminal event); unknown
    /// ids report an error.
    pub fn cancel(&self, job_id: u64) -> Result<(), ServeError> {
        let q = self.state.queue.lock();
        match q.live.iter().find(|(id, _)| *id == job_id) {
            Some((_, token)) => {
                token.cancel(CancelReason::Interrupt);
                self.state
                    .stats
                    .jobs_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(ServeError::UnknownJob(job_id)),
        }
    }

    /// Jobs currently queued or running.
    pub fn live_jobs(&self) -> usize {
        let q = self.state.queue.lock();
        q.pending.len() + q.running
    }

    /// Admission counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.state.stats
    }

    /// Stops admitting (`submit` now rejects) and blocks until every
    /// already-admitted job has finished. Running jobs are *not*
    /// cancelled — drain is graceful by definition; callers wanting a
    /// fast exit cancel jobs first.
    pub fn drain(&self) {
        let mut q = self.state.queue.lock();
        q.draining = true;
        while !q.pending.is_empty() || q.running > 0 {
            self.state.cv.wait(&mut q);
        }
    }

    /// Drains, then stops and joins the worker pool. The scheduler is
    /// unusable afterwards.
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut q = self.state.queue.lock();
            q.shutdown = true;
        }
        self.state.cv.notify_all();
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(state: &Shared) {
    loop {
        let job = {
            let mut q = state.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(index) = pick_eligible(&q) {
                    let job = q.pending.swap_remove(index);
                    if let Some(key) = job.exclusion {
                        q.running_keys.insert(key);
                    }
                    q.running += 1;
                    break job;
                }
                state.cv.wait(&mut q);
            }
        };

        let run = JobRun {
            job_id: job.job_id,
            queue_wait_ms: job.enqueued.elapsed().as_millis() as u64,
        };
        // A panicking job must not take its worker down with it: the
        // job closure owns reporting (it already caught its own panic
        // into an `error` event if it could), and the pool lives on.
        let body = job.run;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(&run)));
        match outcome {
            Ok(()) => state.stats.jobs_completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => state.stats.jobs_panicked.fetch_add(1, Ordering::Relaxed),
        };

        {
            let mut q = state.queue.lock();
            if let Some(key) = job.exclusion {
                q.running_keys.remove(&key);
            }
            q.running -= 1;
            q.live.retain(|(id, _)| *id != job.job_id);
        }
        // Wake both peers waiting for the freed exclusion key and any
        // drainer waiting for quiescence.
        state.cv.notify_all();
    }
}

/// Index of the best runnable job: eligible (exclusion key not
/// running), highest priority, FIFO within a priority.
fn pick_eligible(q: &QueueState) -> Option<usize> {
    q.pending
        .iter()
        .enumerate()
        .filter(|(_, j)| j.exclusion.is_none_or(|k| !q.running_keys.contains(&k)))
        .max_by(|(_, a), (_, b)| {
            a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)) // lower seq = earlier = wins
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_reports_wait() {
        let sched = Scheduler::new(2, 16);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            sched
                .submit(None, 0, CancelToken::new(), move |run| {
                    assert!(run.job_id > 0);
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        assert_eq!(sched.stats().jobs_admitted.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn exclusion_keys_serialize_same_session() {
        let sched = Scheduler::new(4, 64);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            sched
                .submit(Some(7), 0, CancelToken::new(), move |_| {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "same-session jobs must never overlap"
        );
    }

    #[test]
    fn different_sessions_do_overlap() {
        let sched = Scheduler::new(4, 64);
        let peak = Arc::new(AtomicUsize::new(0));
        let concurrent = Arc::new(AtomicUsize::new(0));
        for key in 0..4u64 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            sched
                .submit(Some(key), 0, CancelToken::new(), move |_| {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "distinct sessions should run concurrently"
        );
    }

    /// A job that parks its worker until released, *and* signals when
    /// it has actually started — tests must not race the worker for
    /// queue slots (a parked job still in `pending` occupies one).
    struct ParkedJob {
        state: Arc<(Mutex<(bool, bool)>, Condvar)>, // (started, open)
    }

    impl ParkedJob {
        fn submit_to(sched: &Scheduler) -> ParkedJob {
            let state = Arc::new((Mutex::new((false, false)), Condvar::new()));
            {
                let state = Arc::clone(&state);
                sched
                    .submit(None, 0, CancelToken::new(), move |_| {
                        let (lock, cv) = &*state;
                        let mut s = lock.lock();
                        s.0 = true;
                        cv.notify_all();
                        while !s.1 {
                            cv.wait(&mut s);
                        }
                    })
                    .unwrap();
            }
            let parked = ParkedJob { state };
            let (lock, cv) = &*parked.state;
            let mut s = lock.lock();
            while !s.0 {
                cv.wait(&mut s);
            }
            drop(s);
            parked
        }

        fn release(&self) {
            let (lock, cv) = &*self.state;
            lock.lock().1 = true;
            cv.notify_all();
        }
    }

    impl Drop for ParkedJob {
        /// Release on unwind too: a failed assertion must fail the
        /// test, not wedge the scheduler's drop-drain forever.
        fn drop(&mut self) {
            self.release();
        }
    }

    #[test]
    fn priorities_pick_order() {
        // One worker; park it so the queue builds up, then observe
        // completion order.
        let sched = Scheduler::new(1, 64);
        let order = Arc::new(Mutex::new(Vec::new()));
        let parked = ParkedJob::submit_to(&sched);
        for (priority, tag) in [(0, "low-a"), (5, "high"), (0, "low-b"), (9, "urgent")] {
            let order = Arc::clone(&order);
            sched
                .submit(None, priority, CancelToken::new(), move |_| {
                    order.lock().push(tag);
                })
                .unwrap();
        }
        parked.release();
        sched.drain();
        assert_eq!(
            *order.lock(),
            vec!["urgent", "high", "low-a", "low-b"],
            "priority desc, fifo within"
        );
    }

    #[test]
    fn queue_limit_rejects() {
        let sched = Scheduler::new(1, 2);
        let parked = ParkedJob::submit_to(&sched);
        // Worker busy; queue holds 2; the third submit must bounce.
        sched.submit(None, 0, CancelToken::new(), |_| {}).unwrap();
        sched.submit(None, 0, CancelToken::new(), |_| {}).unwrap();
        let err = sched.submit(None, 0, CancelToken::new(), |_| {});
        assert!(matches!(err, Err(ServeError::Rejected(_))));
        assert_eq!(sched.stats().jobs_rejected.load(Ordering::Relaxed), 1);
        parked.release();
        sched.drain();
    }

    #[test]
    fn cancel_trips_the_token_and_jobs_still_complete() {
        let sched = Scheduler::new(1, 16);
        // Park the lone worker so the cancel target is still queued —
        // otherwise it can run to completion before cancel() lands.
        let parked = ParkedJob::submit_to(&sched);
        let observed = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();
        let id = {
            let observed = Arc::clone(&observed);
            let token = token.clone();
            sched
                .submit(None, 0, token.clone(), move |_| {
                    observed.lock().push(token.is_cancelled());
                })
                .unwrap()
        };
        sched.cancel(id).unwrap();
        parked.release();
        sched.drain();
        assert_eq!(*observed.lock(), vec![true], "job saw its cancellation");
        assert!(matches!(
            sched.cancel(9999),
            Err(ServeError::UnknownJob(9999))
        ));
    }

    #[test]
    fn draining_rejects_new_jobs() {
        let sched = Scheduler::new(1, 16);
        sched.drain();
        let err = sched.submit(None, 0, CancelToken::new(), |_| {});
        assert!(matches!(err, Err(ServeError::Rejected(_))));
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let sched = Scheduler::new(1, 16);
        sched
            .submit(None, 0, CancelToken::new(), |_| panic!("job exploded"))
            .unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            sched
                .submit(None, 0, CancelToken::new(), move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "pool survived the panic");
        assert_eq!(sched.stats().jobs_panicked.load(Ordering::Relaxed), 1);
    }
}
