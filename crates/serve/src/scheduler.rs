//! The admission and scheduling layer: a bounded priority queue in
//! front of a fixed worker pool.
//!
//! This is the multi-tenant generalization of the engine's sizing
//! handshake. A single run assumes it owns the machine: its
//! `HostExecutor` sizes itself to `host_threads` and hands its
//! [`ThreadGate`] to the device so kernel dispatch and host fan-outs
//! draw from one budget. With many concurrent jobs that assumption
//! breaks — so the server owns one process-wide gate, every job's
//! engine is pointed at it via `EngineOptions::shared_gate`, and this
//! scheduler bounds how many jobs run at once. Worker count caps
//! *runs*; the gate caps *extra threads across all runs*; the two
//! together keep a fleet of jobs from oversubscribing the host the
//! same way one job never oversubscribes it.
//!
//! Eligibility: jobs carry an optional exclusion key (the session id
//! — an edit session's layout and baseline are single-writer), and at
//! most one job per key runs at a time. The queue picks the
//! highest-priority eligible job, FIFO within a priority. Admission
//! is bounded (`max_queue`); a full queue or a draining server
//! rejects instead of buffering unboundedly.
//!
//! Every admitted job runs to a terminal state even when cancelled —
//! cancellation trips the job's [`CancelToken`] and the engine winds
//! down at the next rule boundary, reporting exit 4 through the
//! normal completion path. A panicking job is caught by its worker
//! (the pool survives), reported as a job error, and never wedges the
//! queue.
//!
//! [`ThreadGate`]: odrc_infra::ThreadGate

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use odrc_infra::{CancelReason, CancelToken};
use parking_lot::{Condvar, Mutex};

use crate::proto::ServeError;

/// What the scheduler hands a job when it finally runs.
pub struct JobRun {
    /// The admitted job's id.
    pub job_id: u64,
    /// Milliseconds the job sat in the queue before a worker picked
    /// it up.
    pub queue_wait_ms: u64,
}

type JobFn = Box<dyn FnOnce(&JobRun) + Send>;

/// Called with the server's `retry_after_ms` hint when a queued job is
/// shed to make room for higher-priority work.
pub type ShedFn = Box<dyn FnOnce(i64) + Send>;

struct QueuedJob {
    job_id: u64,
    exclusion: Option<u64>,
    priority: i64,
    seq: u64,
    enqueued: Instant,
    run: JobFn,
    /// Jobs without a shed handler are never chosen as shed victims —
    /// nobody could be told, so they would silently vanish.
    on_shed: Option<ShedFn>,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<QueuedJob>,
    /// Exclusion keys of currently *running* jobs.
    running_keys: HashSet<u64>,
    running: usize,
    /// Cancel tokens of every live (queued or running) job, for the
    /// `cancel` verb.
    live: Vec<(u64, CancelToken)>,
    draining: bool,
    shutdown: bool,
    seq: u64,
}

/// Server-wide admission counters, exported via the `stats` verb and
/// stamped into each job's `done` event.
#[derive(Default)]
pub struct SchedulerStats {
    pub jobs_admitted: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_panicked: AtomicU64,
    /// Queued jobs evicted by higher-priority admissions under a full
    /// queue (each shed job's owner got a retry-after error).
    pub jobs_shed: AtomicU64,
}

/// The admission queue plus its worker pool.
pub struct Scheduler {
    state: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    max_queue: usize,
    next_job: AtomicU64,
    pub stats: SchedulerStats,
}

impl Scheduler {
    /// A scheduler with `workers` concurrent job slots and an
    /// admission queue bounded at `max_queue` waiting jobs.
    pub fn new(workers: usize, max_queue: usize) -> Scheduler {
        let state = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            max_queue: max_queue.max(1),
            next_job: AtomicU64::new(1),
            stats: SchedulerStats::default(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("odrc-job-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn job worker")
            })
            .collect();
        Scheduler {
            state,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, or rejects it with a typed error (queue full /
    /// draining). `exclusion` serializes jobs sharing a key (one job
    /// per edit session); `cancel` is the token the `cancel` verb and
    /// client-disconnect teardown will trip.
    ///
    /// Returns the job id.
    pub fn submit(
        &self,
        exclusion: Option<u64>,
        priority: i64,
        cancel: CancelToken,
        run: impl FnOnce(&JobRun) + Send + 'static,
    ) -> Result<u64, ServeError> {
        self.submit_with_shed(exclusion, priority, cancel, None, run)
    }

    /// [`Scheduler::submit`] with overload shedding: under a full
    /// queue, an incoming job of strictly higher priority evicts the
    /// lowest-priority (newest within a priority) queued job that
    /// carries a shed handler — the victim's `on_shed` gets the
    /// retry-after hint, the newcomer takes its slot. A full queue
    /// with no lower-priority victim refuses the newcomer with
    /// [`ServeError::Overloaded`] instead of buffering unboundedly or
    /// stalling admission.
    pub fn submit_with_shed(
        &self,
        exclusion: Option<u64>,
        priority: i64,
        cancel: CancelToken,
        on_shed: Option<ShedFn>,
        run: impl FnOnce(&JobRun) + Send + 'static,
    ) -> Result<u64, ServeError> {
        let mut q = self.state.queue.lock();
        if q.draining || q.shutdown {
            self.state
                .stats
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected("server is draining".to_string()));
        }
        let mut shed: Option<(ShedFn, i64)> = None;
        if q.pending.len() >= self.state.max_queue {
            let retry_after_ms = self.retry_after_ms(&q);
            let victim = q
                .pending
                .iter()
                .enumerate()
                .filter(|(_, j)| j.on_shed.is_some() && j.priority < priority)
                .min_by(|(_, a), (_, b)| {
                    // Lowest priority loses; newest within a priority
                    // loses first (older jobs have waited longest).
                    a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq))
                })
                .map(|(i, _)| i);
            let Some(index) = victim else {
                self.state
                    .stats
                    .jobs_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { retry_after_ms });
            };
            let evicted = q.pending.swap_remove(index);
            q.live.retain(|(id, _)| *id != evicted.job_id);
            self.state.stats.jobs_shed.fetch_add(1, Ordering::Relaxed);
            shed = Some((
                evicted.on_shed.expect("victims carry a handler"),
                retry_after_ms,
            ));
        }
        let job_id = self.state.next_job.fetch_add(1, Ordering::Relaxed);
        q.seq += 1;
        let seq = q.seq;
        q.live.push((job_id, cancel));
        q.pending.push(QueuedJob {
            job_id,
            exclusion,
            priority,
            seq,
            enqueued: Instant::now(),
            run: Box::new(run),
            on_shed,
        });
        self.state
            .stats
            .jobs_admitted
            .fetch_add(1, Ordering::Relaxed);
        drop(q);
        // Notify the victim outside the lock — its handler writes to a
        // client socket, which must never happen under the queue lock.
        if let Some((notify, retry_after_ms)) = shed {
            notify(retry_after_ms);
        }
        self.state.cv.notify_all();
        Ok(job_id)
    }

    /// Backoff hint for overload responses: scales with how much work
    /// is already in flight, clamped to a sane range.
    fn retry_after_ms(&self, q: &QueueState) -> i64 {
        (250 * (q.running + q.pending.len()) as i64).clamp(250, 5000)
    }

    /// Trips a live job's cancel token. Queued jobs still run (and
    /// immediately wind down to exit 4 through the normal completion
    /// path, so the submitter always gets its terminal event); unknown
    /// ids report an error.
    pub fn cancel(&self, job_id: u64) -> Result<(), ServeError> {
        let q = self.state.queue.lock();
        match q.live.iter().find(|(id, _)| *id == job_id) {
            Some((_, token)) => {
                token.cancel(CancelReason::Interrupt);
                self.state
                    .stats
                    .jobs_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(ServeError::UnknownJob(job_id)),
        }
    }

    /// Jobs currently queued or running.
    pub fn live_jobs(&self) -> usize {
        let q = self.state.queue.lock();
        q.pending.len() + q.running
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.state.queue.lock().pending.len()
    }

    /// Workers currently running a job.
    pub fn workers_busy(&self) -> usize {
        self.state.queue.lock().running
    }

    /// Whether the scheduler has stopped admitting.
    pub fn is_draining(&self) -> bool {
        self.state.queue.lock().draining
    }

    /// Allocates a fresh job id without admitting anything. Used when
    /// replaying a journaled result: the stored frame's job id may
    /// collide with ids handed out since the restart, so the replay is
    /// re-stamped with a reserved one.
    pub fn reserve_job_id(&self) -> u64 {
        self.state.next_job.fetch_add(1, Ordering::Relaxed)
    }

    /// Admission counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.state.stats
    }

    /// Stops admitting (`submit` now rejects) and blocks until every
    /// already-admitted job has finished. Running jobs are *not*
    /// cancelled — drain is graceful by definition; callers wanting a
    /// fast exit cancel jobs first.
    pub fn drain(&self) {
        let mut q = self.state.queue.lock();
        q.draining = true;
        while !q.pending.is_empty() || q.running > 0 {
            self.state.cv.wait(&mut q);
        }
    }

    /// Drains, then stops and joins the worker pool. The scheduler is
    /// unusable afterwards.
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut q = self.state.queue.lock();
            q.shutdown = true;
        }
        self.state.cv.notify_all();
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(state: &Shared) {
    loop {
        let job = {
            let mut q = state.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(index) = pick_eligible(&q) {
                    let job = q.pending.swap_remove(index);
                    if let Some(key) = job.exclusion {
                        q.running_keys.insert(key);
                    }
                    q.running += 1;
                    break job;
                }
                state.cv.wait(&mut q);
            }
        };

        let run = JobRun {
            job_id: job.job_id,
            queue_wait_ms: job.enqueued.elapsed().as_millis() as u64,
        };
        // A panicking job must not take its worker down with it: the
        // job closure owns reporting (it already caught its own panic
        // into an `error` event if it could), and the pool lives on.
        let body = job.run;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(&run)));
        match outcome {
            Ok(()) => state.stats.jobs_completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => state.stats.jobs_panicked.fetch_add(1, Ordering::Relaxed),
        };

        {
            let mut q = state.queue.lock();
            if let Some(key) = job.exclusion {
                q.running_keys.remove(&key);
            }
            q.running -= 1;
            q.live.retain(|(id, _)| *id != job.job_id);
        }
        // Wake both peers waiting for the freed exclusion key and any
        // drainer waiting for quiescence.
        state.cv.notify_all();
    }
}

/// Index of the best runnable job: eligible (exclusion key not
/// running), highest priority, FIFO within a priority.
fn pick_eligible(q: &QueueState) -> Option<usize> {
    q.pending
        .iter()
        .enumerate()
        .filter(|(_, j)| j.exclusion.is_none_or(|k| !q.running_keys.contains(&k)))
        .max_by(|(_, a), (_, b)| {
            a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)) // lower seq = earlier = wins
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_reports_wait() {
        let sched = Scheduler::new(2, 16);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            sched
                .submit(None, 0, CancelToken::new(), move |run| {
                    assert!(run.job_id > 0);
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        assert_eq!(sched.stats().jobs_admitted.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn exclusion_keys_serialize_same_session() {
        let sched = Scheduler::new(4, 64);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            sched
                .submit(Some(7), 0, CancelToken::new(), move |_| {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "same-session jobs must never overlap"
        );
    }

    #[test]
    fn different_sessions_do_overlap() {
        let sched = Scheduler::new(4, 64);
        let peak = Arc::new(AtomicUsize::new(0));
        let concurrent = Arc::new(AtomicUsize::new(0));
        for key in 0..4u64 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            sched
                .submit(Some(key), 0, CancelToken::new(), move |_| {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "distinct sessions should run concurrently"
        );
    }

    /// A job that parks its worker until released, *and* signals when
    /// it has actually started — tests must not race the worker for
    /// queue slots (a parked job still in `pending` occupies one).
    struct ParkedJob {
        state: Arc<(Mutex<(bool, bool)>, Condvar)>, // (started, open)
    }

    impl ParkedJob {
        fn submit_to(sched: &Scheduler) -> ParkedJob {
            let state = Arc::new((Mutex::new((false, false)), Condvar::new()));
            {
                let state = Arc::clone(&state);
                sched
                    .submit(None, 0, CancelToken::new(), move |_| {
                        let (lock, cv) = &*state;
                        let mut s = lock.lock();
                        s.0 = true;
                        cv.notify_all();
                        while !s.1 {
                            cv.wait(&mut s);
                        }
                    })
                    .unwrap();
            }
            let parked = ParkedJob { state };
            let (lock, cv) = &*parked.state;
            let mut s = lock.lock();
            while !s.0 {
                cv.wait(&mut s);
            }
            drop(s);
            parked
        }

        fn release(&self) {
            let (lock, cv) = &*self.state;
            lock.lock().1 = true;
            cv.notify_all();
        }
    }

    impl Drop for ParkedJob {
        /// Release on unwind too: a failed assertion must fail the
        /// test, not wedge the scheduler's drop-drain forever.
        fn drop(&mut self) {
            self.release();
        }
    }

    #[test]
    fn priorities_pick_order() {
        // One worker; park it so the queue builds up, then observe
        // completion order.
        let sched = Scheduler::new(1, 64);
        let order = Arc::new(Mutex::new(Vec::new()));
        let parked = ParkedJob::submit_to(&sched);
        for (priority, tag) in [(0, "low-a"), (5, "high"), (0, "low-b"), (9, "urgent")] {
            let order = Arc::clone(&order);
            sched
                .submit(None, priority, CancelToken::new(), move |_| {
                    order.lock().push(tag);
                })
                .unwrap();
        }
        parked.release();
        sched.drain();
        assert_eq!(
            *order.lock(),
            vec!["urgent", "high", "low-a", "low-b"],
            "priority desc, fifo within"
        );
    }

    #[test]
    fn queue_limit_rejects_with_retry_hint() {
        let sched = Scheduler::new(1, 2);
        let parked = ParkedJob::submit_to(&sched);
        // Worker busy; queue holds 2; an equal-priority third submit
        // must bounce with a typed retry-after (nothing to shed: the
        // newcomer is not *more* important than what is queued).
        sched.submit(None, 0, CancelToken::new(), |_| {}).unwrap();
        sched.submit(None, 0, CancelToken::new(), |_| {}).unwrap();
        let err = sched.submit(None, 0, CancelToken::new(), |_| {});
        match err {
            Err(ServeError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 250, "hint present: {retry_after_ms}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert_eq!(sched.stats().jobs_rejected.load(Ordering::Relaxed), 1);
        parked.release();
        sched.drain();
    }

    #[test]
    fn overload_sheds_lowest_priority_newest_victim() {
        let sched = Scheduler::new(1, 2);
        let parked = ParkedJob::submit_to(&sched);
        let shed_log = Arc::new(Mutex::new(Vec::new()));
        let ran = Arc::new(Mutex::new(Vec::new()));
        let submit = |tag: &'static str, priority: i64| {
            let shed_log = Arc::clone(&shed_log);
            let ran = Arc::clone(&ran);
            sched
                .submit_with_shed(
                    None,
                    priority,
                    CancelToken::new(),
                    Some(Box::new(move |retry_ms| {
                        assert!(retry_ms > 0);
                        shed_log.lock().push(tag);
                    })),
                    move |_| ran.lock().push(tag),
                )
                .unwrap()
        };
        submit("low-old", 1);
        submit("low-new", 1);
        // Queue is full; a higher-priority job sheds the *newest* of
        // the lowest-priority victims.
        submit("urgent", 5);
        assert_eq!(*shed_log.lock(), vec!["low-new"]);
        assert_eq!(sched.stats().jobs_shed.load(Ordering::Relaxed), 1);
        // A second urgent job now sheds the remaining low one.
        submit("urgent-2", 5);
        assert_eq!(*shed_log.lock(), vec!["low-new", "low-old"]);
        // Equal priority has no victim left: typed overload.
        let err = sched.submit(None, 5, CancelToken::new(), |_| {});
        assert!(matches!(err, Err(ServeError::Overloaded { .. })));
        parked.release();
        sched.drain();
        assert_eq!(*ran.lock(), vec!["urgent", "urgent-2"]);
    }

    #[test]
    fn jobs_without_shed_handler_are_never_shed() {
        let sched = Scheduler::new(1, 1);
        let parked = ParkedJob::submit_to(&sched);
        sched.submit(None, 0, CancelToken::new(), |_| {}).unwrap();
        // Higher priority, but the queued job carries no handler.
        let err = sched.submit(None, 9, CancelToken::new(), |_| {});
        assert!(matches!(err, Err(ServeError::Overloaded { .. })));
        parked.release();
        sched.drain();
    }

    #[test]
    fn cancel_trips_the_token_and_jobs_still_complete() {
        let sched = Scheduler::new(1, 16);
        // Park the lone worker so the cancel target is still queued —
        // otherwise it can run to completion before cancel() lands.
        let parked = ParkedJob::submit_to(&sched);
        let observed = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();
        let id = {
            let observed = Arc::clone(&observed);
            let token = token.clone();
            sched
                .submit(None, 0, token.clone(), move |_| {
                    observed.lock().push(token.is_cancelled());
                })
                .unwrap()
        };
        sched.cancel(id).unwrap();
        parked.release();
        sched.drain();
        assert_eq!(*observed.lock(), vec![true], "job saw its cancellation");
        assert!(matches!(
            sched.cancel(9999),
            Err(ServeError::UnknownJob(9999))
        ));
    }

    #[test]
    fn draining_rejects_new_jobs() {
        let sched = Scheduler::new(1, 16);
        sched.drain();
        let err = sched.submit(None, 0, CancelToken::new(), |_| {});
        assert!(matches!(err, Err(ServeError::Rejected(_))));
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let sched = Scheduler::new(1, 16);
        sched
            .submit(None, 0, CancelToken::new(), |_| panic!("job exploded"))
            .unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            sched
                .submit(None, 0, CancelToken::new(), move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "pool survived the panic");
        assert_eq!(sched.stats().jobs_panicked.load(Ordering::Relaxed), 1);
    }
}
