//! The MBR overlap sweepline of §IV-D (Fig. 3).
//!
//! > "The sweepline algorithm moves a conceptual line across the plane
//! > from top to bottom, which scans through the top and bottom sides of
//! > all MBRs in descending y. When the top side of an MBR `m` is
//! > encountered, the corresponding horizontal interval is inserted into
//! > the interval tree, and a query to the interval tree reports all the
//! > MBRs overlapping with `m`. When the bottom side of `m` is
//! > encountered, the horizontal interval is removed from the interval
//! > tree."

use odrc_geometry::{Coord, Rect};

use crate::IntervalTree;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Top side: insert the MBR's x-interval. Processed before removals
    /// at the same y so that rectangles touching edge-to-edge are
    /// reported (closed-rectangle overlap semantics).
    Insert,
    /// Bottom side: remove the x-interval.
    Remove,
}

/// Reports every unordered pair of overlapping rectangles via `report`,
/// with the first index smaller than the second.
///
/// Touching rectangles count as overlapping, matching the closed MBR
/// semantics used by the check pruning (rule-inflated MBRs that touch
/// can still harbour a violation).
///
/// # Examples
///
/// ```
/// use odrc_geometry::Rect;
/// use odrc_infra::sweep::sweep_overlap_pairs;
///
/// let rects = [
///     Rect::from_coords(0, 0, 10, 10),
///     Rect::from_coords(5, 5, 20, 20),
///     Rect::from_coords(100, 100, 110, 110),
/// ];
/// assert_eq!(sweep_overlap_pairs(&rects), vec![(0, 1)]);
/// ```
pub fn sweep_overlaps<F: FnMut(usize, usize)>(rects: &[Rect], mut report: F) {
    // Event list: (y, kind, rect index), descending y, inserts first.
    let mut events: Vec<(Coord, EventKind, usize)> = Vec::with_capacity(rects.len() * 2);
    let mut domain: Vec<Coord> = Vec::with_capacity(rects.len() * 2);
    for (i, r) in rects.iter().enumerate() {
        events.push((r.hi().y, EventKind::Insert, i));
        events.push((r.lo().y, EventKind::Remove, i));
        domain.push(r.lo().x);
        domain.push(r.hi().x);
    }
    events.sort_unstable_by(|a, b| {
        b.0.cmp(&a.0).then_with(|| {
            // Inserts before removes at equal y.
            let rank = |k: EventKind| match k {
                EventKind::Insert => 0,
                EventKind::Remove => 1,
            };
            rank(a.1).cmp(&rank(b.1))
        })
    });

    let mut tree: IntervalTree<usize> = IntervalTree::with_domain(domain);
    for (_, kind, i) in events {
        let x = rects[i].x_range();
        match kind {
            EventKind::Insert => {
                tree.query_into(x, &mut |&j| {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    report(a, b);
                });
                tree.insert(x, i);
            }
            EventKind::Remove => {
                tree.remove(x, &i);
            }
        }
    }
}

/// Convenience wrapper collecting the overlap pairs into a vector,
/// sorted lexicographically.
pub fn sweep_overlap_pairs(rects: &[Rect]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    sweep_overlaps(rects, |a, b| pairs.push((a, b)));
    pairs.sort_unstable();
    pairs
}

/// Reference `O(n²)` overlap enumeration used by tests and ablation
/// benches.
pub fn brute_force_overlap_pairs(rects: &[Rect]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..rects.len() {
        for j in i + 1..rects.len() {
            if rects[i].overlaps(rects[j]) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_and_single() {
        assert!(sweep_overlap_pairs(&[]).is_empty());
        assert!(sweep_overlap_pairs(&[r(0, 0, 5, 5)]).is_empty());
    }

    #[test]
    fn disjoint_rects_report_nothing() {
        let rects = [r(0, 0, 5, 5), r(10, 0, 15, 5), r(0, 10, 5, 15)];
        assert!(sweep_overlap_pairs(&rects).is_empty());
    }

    #[test]
    fn overlapping_pair_reported_once() {
        let rects = [r(0, 0, 10, 10), r(5, 5, 15, 15)];
        assert_eq!(sweep_overlap_pairs(&rects), vec![(0, 1)]);
    }

    #[test]
    fn touching_edges_count() {
        // Horizontal touch.
        assert_eq!(
            sweep_overlap_pairs(&[r(0, 0, 5, 5), r(5, 0, 10, 5)]),
            vec![(0, 1)]
        );
        // Vertical touch (same sweep y for bottom of one, top of other).
        assert_eq!(
            sweep_overlap_pairs(&[r(0, 0, 5, 5), r(0, 5, 5, 10)]),
            vec![(0, 1)]
        );
        // Corner touch.
        assert_eq!(
            sweep_overlap_pairs(&[r(0, 0, 5, 5), r(5, 5, 10, 10)]),
            vec![(0, 1)]
        );
    }

    #[test]
    fn nested_rects_overlap() {
        let rects = [r(0, 0, 100, 100), r(10, 10, 20, 20), r(30, 30, 40, 40)];
        assert_eq!(sweep_overlap_pairs(&rects), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn identical_rects() {
        let rects = [r(0, 0, 5, 5), r(0, 0, 5, 5), r(0, 0, 5, 5)];
        assert_eq!(sweep_overlap_pairs(&rects), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn chain_of_overlaps() {
        let rects = [r(0, 0, 10, 4), r(8, 0, 18, 4), r(16, 0, 26, 4)];
        assert_eq!(sweep_overlap_pairs(&rects), vec![(0, 1), (1, 2)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn matches_brute_force(
            specs in proptest::collection::vec(
                (-100i32..100, -100i32..100, 0i32..40, 0i32..40), 0..80),
        ) {
            let rects: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            prop_assert_eq!(sweep_overlap_pairs(&rects), brute_force_overlap_pairs(&rects));
        }
    }
}
