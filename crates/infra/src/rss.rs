//! Process peak-RSS measurement.
//!
//! Memory-budgeted (out-of-core) runs are gated on their *high-water
//! mark*, not their instantaneous footprint: a pipeline that touches
//! the budget for one allocation and immediately frees it has still
//! blown the budget. The kernel already tracks exactly this as `VmHWM`
//! in `/proc/self/status`, so the reading costs one small file read
//! and needs no allocator instrumentation.

/// The process's peak resident set size in bytes, if the platform
/// exposes it.
///
/// Reads `VmHWM` from `/proc/self/status` (Linux). Returns `None` on
/// platforms without procfs or if the field is missing — callers (the
/// bench gate, `--stats-json`) degrade to omitting the metric rather
/// than failing the run.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Resets the kernel's peak-RSS high-water mark down to the current
/// resident set (`clear_refs` code 5, Linux), so distinct phases of one
/// process can be measured independently — [`peak_rss_bytes`] after a
/// reset reports the high-water mark *since* the reset. Returns `false`
/// where unsupported; callers fall back to whole-process peaks.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Parses the `VmHWM:    123456 kB` line out of a `/proc/<pid>/status`
/// document.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\todrc\nVmPeak:\t  999 kB\nVmHWM:\t  204800 kB\nVmRSS:\t 1 kB\n";
        assert_eq!(parse_vm_hwm(doc), Some(204800 * 1024));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\todrc\n"), None);
    }

    #[test]
    fn garbage_value_is_none() {
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_reflects_allocation() {
        let before = peak_rss_bytes().expect("procfs available");
        // A touch-every-page allocation must raise the high-water mark.
        let mut v = vec![0u8; 64 << 20];
        for i in (0..v.len()).step_by(4096) {
            v[i] = 1;
        }
        let after = peak_rss_bytes().expect("procfs available");
        assert!(after >= before);
        assert!(
            after >= v.len() as u64 / 2,
            "HWM {after} ignores the 64 MiB touch"
        );
    }
}
