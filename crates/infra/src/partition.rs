//! The adaptive row-based layout partition of §IV-B.
//!
//! Layouts are partitioned into non-overlapping regions (rows) along the
//! y-axis by merging the vertical extents of cell MBRs; cells in
//! different rows cannot interact, which enables both check pruning and
//! row-level parallelism. Within a row, the same merging along the
//! x-axis yields independent *clips* (the paper's second intuition:
//! "x-coordinates of cells in a row are more likely to be separated as
//! well").

use odrc_geometry::{Coord, Interval, Rect};

use crate::host::HostExecutor;
use crate::merge::merge_pigeonhole;

/// One independent row of the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Vertical extent of the row (inflated extents merged).
    pub y: Interval,
    /// Indices (into the input MBR slice) of the members of this row,
    /// in ascending index order.
    pub members: Vec<usize>,
}

/// The result of the adaptive row partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    rows: Vec<Row>,
}

impl RowPartition {
    /// Builds a partition from explicit rows (used by ablation modes
    /// that bypass the adaptive partition, e.g. a single all-covering
    /// row).
    pub fn from_rows(rows: Vec<Row>) -> Self {
        RowPartition { rows }
    }

    /// The rows in ascending y order.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the input had no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }
}

impl<'a> IntoIterator for &'a RowPartition {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// Partitions cell MBRs into independent rows along the y-axis.
///
/// `expand` inflates every extent by the minimum rule distance before
/// merging, so that "different rows" really implies "no rule interaction
/// across rows" (§IV-C's MBR-inflation argument applied to rows). Rows
/// whose inflated extents share a coordinate are merged.
///
/// The merge itself runs in `Θ(k + N)` using the pigeonhole array of
/// Algorithm 1, where `k` is the number of cells and `N` the number of
/// unique (inflated) y-coordinates.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Rect;
/// use odrc_infra::partition::partition_rows;
///
/// let mbrs = [
///     Rect::from_coords(0, 0, 10, 8),
///     Rect::from_coords(12, 2, 30, 6),   // same band as the first
///     Rect::from_coords(0, 100, 10, 108),
/// ];
/// let part = partition_rows(&mbrs, 0);
/// assert_eq!(part.len(), 2);
/// assert_eq!(part.rows()[0].members, vec![0, 1]);
/// assert_eq!(part.rows()[1].members, vec![2]);
/// ```
pub fn partition_rows(mbrs: &[Rect], expand: Coord) -> RowPartition {
    let extents: Vec<Interval> = mbrs.iter().map(|m| m.y_range().inflate(expand)).collect();
    let rows = partition_intervals(&extents, None);
    RowPartition { rows }
}

/// [`partition_rows`] with the per-extent row assignment fanned out on
/// a host executor. The output is identical: assignment positions are
/// computed in parallel (a pure binary search per extent) and the
/// member lists are then filled serially in ascending index order.
pub fn partition_rows_on(mbrs: &[Rect], expand: Coord, host: &HostExecutor) -> RowPartition {
    let extents: Vec<Interval> = mbrs.iter().map(|m| m.y_range().inflate(expand)).collect();
    let rows = partition_intervals(&extents, Some(host));
    RowPartition { rows }
}

/// Partitions the members of one row into independent clips along the
/// x-axis, using the same interval merging.
///
/// Returns the clips as lists of indices into `mbrs` (subsets of
/// `members`), in ascending x order.
pub fn partition_clips(mbrs: &[Rect], members: &[usize], expand: Coord) -> Vec<Vec<usize>> {
    let extents: Vec<Interval> = members
        .iter()
        .map(|&i| mbrs[i].x_range().inflate(expand))
        .collect();
    partition_intervals(&extents, None)
        .into_iter()
        .map(|row| {
            row.members
                .into_iter()
                .map(|local| members[local])
                .collect()
        })
        .collect()
}

/// Shared 1-D machinery: merge the (already inflated) extents and assign
/// each input to its merged interval.
fn partition_intervals(extents: &[Interval], host: Option<&HostExecutor>) -> Vec<Row> {
    if extents.is_empty() {
        return Vec::new();
    }
    // Discretize unique coordinates.
    let mut coords: Vec<Coord> = Vec::with_capacity(extents.len() * 2);
    for e in extents {
        coords.push(e.lo());
        coords.push(e.hi());
    }
    coords.sort_unstable();
    coords.dedup();
    let index_of = |c: Coord| -> usize {
        coords
            .binary_search(&c)
            .expect("coordinate was collected above")
    };

    let merged = merge_pigeonhole(
        coords.len(),
        extents.iter().map(|e| (index_of(e.lo()), index_of(e.hi()))),
    );

    let mut rows: Vec<Row> = merged
        .into_iter()
        .map(|(l, r)| Row {
            y: Interval::new(coords[l], coords[r]),
            members: Vec::new(),
        })
        .collect();

    // Assign each extent to the unique merged interval containing it,
    // found by binary search on row start. With a (parallel) executor,
    // the searches fan out and only the member fill stays serial, which
    // keeps member lists in ascending index order either way.
    match host {
        Some(host) if !host.is_serial() && extents.len() > 1 => {
            let positions = host.run("partition", extents.len(), |i| {
                rows.partition_point(|row| row.y.lo() <= extents[i].lo())
            });
            for (i, (pos, e)) in positions.into_iter().zip(extents).enumerate() {
                debug_assert!(pos > 0, "extent {e} precedes every row");
                let row = &mut rows[pos - 1];
                debug_assert!(
                    row.y.contains(e.lo()) && row.y.contains(e.hi()),
                    "extent {e} not contained in its row {}",
                    row.y
                );
                row.members.push(i);
            }
        }
        _ => {
            for (i, e) in extents.iter().enumerate() {
                let pos = rows.partition_point(|row| row.y.lo() <= e.lo());
                debug_assert!(pos > 0, "extent {e} precedes every row");
                let row = &mut rows[pos - 1];
                debug_assert!(
                    row.y.contains(e.lo()) && row.y.contains(e.hi()),
                    "extent {e} not contained in its row {}",
                    row.y
                );
                row.members.push(i);
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_layout() {
        let part = partition_rows(&[], 0);
        assert!(part.is_empty());
        assert_eq!(part.len(), 0);
    }

    #[test]
    fn single_cell_single_row() {
        let part = partition_rows(&[r(0, 0, 10, 10)], 0);
        assert_eq!(part.len(), 1);
        assert_eq!(part.rows()[0].y, Interval::new(0, 10));
        assert_eq!(part.rows()[0].members, vec![0]);
    }

    #[test]
    fn standard_cell_rows_separate() {
        // Three placement rows of height 8 with 2 units of space.
        let mut mbrs = Vec::new();
        for row in 0..3 {
            let y0 = row * 10;
            for col in 0..4 {
                mbrs.push(r(col * 20, y0, col * 20 + 15, y0 + 8));
            }
        }
        let part = partition_rows(&mbrs, 0);
        assert_eq!(part.len(), 3);
        for (i, row) in part.iter().enumerate() {
            assert_eq!(row.members.len(), 4);
            assert_eq!(row.y, Interval::new(i as Coord * 10, i as Coord * 10 + 8));
        }
    }

    #[test]
    fn expansion_merges_close_rows() {
        let mbrs = [r(0, 0, 10, 8), r(0, 10, 10, 18)];
        assert_eq!(partition_rows(&mbrs, 0).len(), 2);
        // Inflating by 1 leaves a gap ([−1,9] vs [9,19] touch at 9 — merged).
        assert_eq!(partition_rows(&mbrs, 1).len(), 1);
    }

    #[test]
    fn tall_cell_bridges_rows() {
        let mbrs = [
            r(0, 0, 10, 8),
            r(0, 20, 10, 28),
            r(50, 0, 60, 28), // spans both bands
        ];
        let part = partition_rows(&mbrs, 0);
        assert_eq!(part.len(), 1);
        assert_eq!(part.rows()[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn clips_within_row() {
        let mbrs = [r(0, 0, 10, 8), r(12, 0, 20, 8), r(100, 0, 110, 8)];
        let part = partition_rows(&mbrs, 0);
        assert_eq!(part.len(), 1);
        let clips = partition_clips(&mbrs, &part.rows()[0].members, 0);
        assert_eq!(clips, vec![vec![0], vec![1], vec![2]]);
        // Inflating by 1 bridges the 2-unit gap between the first two.
        let clips = partition_clips(&mbrs, &part.rows()[0].members, 1);
        assert_eq!(clips, vec![vec![0, 1], vec![2]]);
        // Expanding enough merges the first two clips with the third.
        let clips = partition_clips(&mbrs, &part.rows()[0].members, 40);
        assert_eq!(clips, vec![vec![0, 1, 2]]);
    }

    proptest! {
        #[test]
        fn rows_are_disjoint_and_complete(
            specs in proptest::collection::vec(
                (-200i32..200, -200i32..200, 1i32..60, 1i32..60), 1..80),
            expand in 0i32..10,
        ) {
            let mbrs: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            let part = partition_rows(&mbrs, expand);

            // Every cell appears in exactly one row.
            let mut seen = vec![0usize; mbrs.len()];
            for row in &part {
                for &m in &row.members {
                    seen[m] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));

            // Rows are ordered and their y-extents never overlap.
            for w in part.rows().windows(2) {
                prop_assert!(w[0].y.hi() < w[1].y.lo());
            }

            // No inflated cell extent crosses a row boundary, i.e. cells
            // of different rows are farther than 2*expand apart in y.
            for row in &part {
                for &m in &row.members {
                    let e = mbrs[m].y_range().inflate(expand);
                    prop_assert!(row.y.contains(e.lo()) && row.y.contains(e.hi()));
                }
            }
        }

        #[test]
        fn parallel_assignment_matches_serial(
            specs in proptest::collection::vec(
                (-200i32..200, -200i32..200, 1i32..60, 1i32..60), 1..80),
            expand in 0i32..10,
            threads in 1usize..5,
        ) {
            let mbrs: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            let host = HostExecutor::new(threads);
            prop_assert_eq!(
                partition_rows_on(&mbrs, expand, &host),
                partition_rows(&mbrs, expand)
            );
        }

        #[test]
        fn cross_row_cells_cannot_violate_spacing(
            specs in proptest::collection::vec(
                (-100i32..100, -100i32..100, 1i32..30, 1i32..30), 2..40),
            rule in 1i32..10,
        ) {
            let mbrs: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            // Inflate by the rule distance: the partition contract is that
            // any two cells in different rows have y-gap > 0 after
            // inflation by `rule`, hence real gap >= 2*rule > rule.
            let part = partition_rows(&mbrs, rule);
            for (ri, row_a) in part.rows().iter().enumerate() {
                for row_b in part.rows().iter().skip(ri + 1) {
                    for &a in &row_a.members {
                        for &b in &row_b.members {
                            prop_assert!(mbrs[a].gap(mbrs[b]) > i64::from(rule));
                        }
                    }
                }
            }
        }
    }
}
