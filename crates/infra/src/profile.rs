//! Phase timers for runtime breakdowns.
//!
//! The paper's Fig. 4 decomposes the sequential space-check runtime into
//! adaptive partition (~15%), sweepline + interval tree (~35%), and
//! edge-to-edge checks (~40-50%). [`Profiler`] accumulates named phase
//! durations so the bench harness can print the same breakdown.

use std::fmt;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named phase.
///
/// Phases may be entered repeatedly; durations accumulate. Phase order
/// in reports follows first use.
///
/// # Examples
///
/// ```
/// use odrc_infra::Profiler;
///
/// let mut prof = Profiler::new();
/// let sum: u64 = prof.time("compute", || (0..1000u64).sum());
/// assert_eq!(sum, 499_500);
/// assert_eq!(prof.phases().len(), 1);
/// assert!(prof.total() >= prof.phase("compute").unwrap());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    phases: Vec<(String, Duration)>,
    host_util: Vec<HostPhaseUtil>,
}

/// Host-thread utilization of one phase: the wall time the executor
/// spent fanning the phase out and the busy time of each worker (index
/// 0 is the calling thread). Idle time per worker is `wall - busy`.
#[derive(Debug, Clone)]
pub struct HostPhaseUtil {
    /// Phase label (matches the executor's `run` call sites).
    pub phase: String,
    /// Wall-clock time across all fan-outs of this phase.
    pub wall: Duration,
    /// Per-worker busy time (time actually spent inside tasks).
    pub busy: Vec<Duration>,
}

impl HostPhaseUtil {
    /// Total busy time summed over workers.
    pub fn busy_total(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Mean worker utilization in `[0, 1]`: busy time over the
    /// wall-time budget of all workers that participated.
    pub fn utilization(&self) -> f64 {
        let budget = self.wall.as_secs_f64() * self.busy.len().max(1) as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        (self.busy_total().as_secs_f64() / budget).min(1.0)
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Runs `f`, charging its wall-clock time to `phase`.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: &str, d: Duration) {
        if let Some((_, total)) = self.phases.iter_mut().find(|(name, _)| name == phase) {
            *total += d;
        } else {
            self.phases.push((phase.to_owned(), d));
        }
    }

    /// The accumulated duration of one phase, if it was ever entered.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// All phases in first-use order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Phase shares of the total, as fractions in `[0, 1]`.
    ///
    /// Returns an empty vector when nothing was timed (or the total is
    /// zero), so callers never divide by zero.
    pub fn breakdown(&self) -> Vec<(String, f64)> {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return Vec::new();
        }
        self.phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64() / total))
            .collect()
    }

    /// Merges another profiler's phases into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (name, d) in &other.phases {
            self.add(name, *d);
        }
        for u in &other.host_util {
            self.add_host_util(&u.phase, u.wall, &u.busy);
        }
    }

    /// Accumulates host-thread utilization for `phase` (busy time per
    /// worker over `wall` of fan-out time). Repeated calls merge:
    /// wall adds up and workers add element-wise.
    pub fn add_host_util(&mut self, phase: &str, wall: Duration, busy: &[Duration]) {
        if let Some(u) = self.host_util.iter_mut().find(|u| u.phase == phase) {
            u.wall += wall;
            for (i, b) in busy.iter().enumerate() {
                if i < u.busy.len() {
                    u.busy[i] += *b;
                } else {
                    u.busy.push(*b);
                }
            }
        } else {
            self.host_util.push(HostPhaseUtil {
                phase: phase.to_owned(),
                wall,
                busy: busy.to_vec(),
            });
        }
    }

    /// Per-phase host-thread utilization in first-use order. Empty when
    /// every fan-out ran inline (one host thread).
    pub fn host_util(&self) -> &[HostPhaseUtil] {
        &self.host_util
    }
}

impl fmt::Display for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().as_secs_f64();
        for (name, d) in &self.phases {
            let pct = if total > 0.0 {
                100.0 * d.as_secs_f64() / total
            } else {
                0.0
            };
            writeln!(
                f,
                "{name:>24}: {:>10.3} ms ({pct:>5.1}%)",
                d.as_secs_f64() * 1e3
            )?;
        }
        writeln!(f, "{:>24}: {:>10.3} ms", "total", total * 1e3)?;
        for u in &self.host_util {
            writeln!(
                f,
                "{:>24}: {:>5.1}% busy over {} worker(s), {:.3} ms wall",
                format!("host[{}]", u.phase),
                100.0 * u.utilization(),
                u.busy.len(),
                u.wall.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phases_in_order() {
        let mut p = Profiler::new();
        p.add("b", Duration::from_millis(10));
        p.add("a", Duration::from_millis(30));
        p.add("b", Duration::from_millis(20));
        assert_eq!(p.phase("b"), Some(Duration::from_millis(30)));
        assert_eq!(p.phase("a"), Some(Duration::from_millis(30)));
        assert_eq!(p.phase("missing"), None);
        assert_eq!(p.total(), Duration::from_millis(60));
        assert_eq!(p.phases()[0].0, "b"); // first-use order
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut p = Profiler::new();
        p.add("x", Duration::from_millis(25));
        p.add("y", Duration::from_millis(75));
        let b = p.breakdown();
        let sum: f64 = b.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b[1].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_empty() {
        assert!(Profiler::new().breakdown().is_empty());
        assert_eq!(Profiler::new().total(), Duration::ZERO);
    }

    #[test]
    fn time_returns_closure_result() {
        let mut p = Profiler::new();
        let v = p.time("phase", || 42);
        assert_eq!(v, 42);
        assert!(p.phase("phase").is_some());
    }

    #[test]
    fn merge_combines() {
        let mut a = Profiler::new();
        a.add("x", Duration::from_millis(5));
        let mut b = Profiler::new();
        b.add("x", Duration::from_millis(7));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.phase("x"), Some(Duration::from_millis(12)));
        assert_eq!(a.phase("y"), Some(Duration::from_millis(1)));
    }

    #[test]
    fn host_util_merges_per_phase_and_worker() {
        let mut p = Profiler::new();
        p.add_host_util(
            "edge-check",
            Duration::from_millis(10),
            &[Duration::from_millis(8), Duration::from_millis(6)],
        );
        p.add_host_util(
            "edge-check",
            Duration::from_millis(10),
            &[
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(10),
            ],
        );
        let u = &p.host_util()[0];
        assert_eq!(u.wall, Duration::from_millis(20));
        assert_eq!(u.busy.len(), 3);
        assert_eq!(u.busy[0], Duration::from_millis(10));
        assert_eq!(u.busy_total(), Duration::from_millis(30));
        assert!((u.utilization() - 0.5).abs() < 1e-9);

        let mut q = Profiler::new();
        q.merge(&p);
        assert_eq!(q.host_util().len(), 1);
        assert!(q.to_string().contains("host[edge-check]"));
    }

    #[test]
    fn display_renders_every_phase() {
        let mut p = Profiler::new();
        p.add("partition", Duration::from_millis(15));
        p.add("sweepline", Duration::from_millis(35));
        let text = p.to_string();
        assert!(text.contains("partition"));
        assert!(text.contains("sweepline"));
        assert!(text.contains("total"));
    }
}
