//! Interval merging for the adaptive layout partition (§IV-B,
//! Algorithm 1).
//!
//! The merging problem: given `k` intervals over a discretized domain of
//! `N` values, produce the non-overlapping intervals covering their
//! union. The paper solves it in `Θ(k + N)` with a "pigeonhole array"
//! that maintains right endpoints indexed by left endpoints, arguing that
//! `k` is typically much larger than `N` and that arrays have better
//! locality than the `Ω(k log k)` sort-based alternative. Both variants
//! are implemented here; the ablation bench compares them.

/// Merges index intervals with the pigeonhole array of Algorithm 1.
///
/// `domain_size` is `N`, the number of unique discretized coordinates;
/// every input interval `(l, r)` must satisfy `l <= r < domain_size`.
/// The output is the ordered list of maximal merged intervals covering
/// the *union of the inputs* (indices not covered by any input are not
/// part of any output interval).
///
/// Note on fidelity: Algorithm 1 as printed initializes `A[i] = i`,
/// which makes its scan emit unit intervals for uncovered indices too
/// (the "cover of the domain"). Downstream, only intervals containing
/// cells matter, so this implementation initializes the array with a
/// sentinel and skips uncovered indices during the scan — the same scan,
/// minus the trivial intervals. [`merge_cover_pigeonhole`] reproduces
/// the verbatim behaviour for completeness.
///
/// # Examples
///
/// ```
/// use odrc_infra::merge::merge_pigeonhole;
///
/// let merged = merge_pigeonhole(10, [(0, 2), (1, 4), (7, 8)].iter().copied());
/// assert_eq!(merged, vec![(0, 4), (7, 8)]);
/// ```
///
/// # Panics
///
/// Panics if an interval is reversed or exceeds the domain.
pub fn merge_pigeonhole(
    domain_size: usize,
    intervals: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<(usize, usize)> {
    const EMPTY: usize = usize::MAX;
    let mut ends = vec![EMPTY; domain_size];
    for (l, r) in intervals {
        assert!(
            l <= r && r < domain_size,
            "interval ({l}, {r}) out of domain {domain_size}"
        );
        // A[l] <- max(A[l], r)
        if ends[l] == EMPTY || ends[l] < r {
            ends[l] = r;
        }
    }
    let mut out = Vec::new();
    let mut cur: Option<(usize, usize)> = None;
    for (i, &r) in ends.iter().enumerate() {
        if r == EMPTY {
            continue;
        }
        match cur {
            Some((s, e)) if i <= e => {
                cur = Some((s, e.max(r)));
            }
            Some(done) => {
                out.push(done);
                cur = Some((i, r));
            }
            None => {
                cur = Some((i, r));
            }
        }
    }
    if let Some(done) = cur {
        out.push(done);
    }
    out
}

/// The verbatim Algorithm 1: initializes `A[i] = i` and scans the whole
/// array, so uncovered indices appear as unit intervals and the output
/// tiles the entire domain `[0, domain_size)`.
///
/// ```
/// use odrc_infra::merge::merge_cover_pigeonhole;
///
/// let cover = merge_cover_pigeonhole(6, [(1, 3)].iter().copied());
/// assert_eq!(cover, vec![(0, 0), (1, 3), (4, 4), (5, 5)]);
/// ```
pub fn merge_cover_pigeonhole(
    domain_size: usize,
    intervals: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<(usize, usize)> {
    // Step 1: initialize an array A with indices.
    let mut a: Vec<usize> = (0..domain_size).collect();
    // Step 2: merge intervals.
    for (l, r) in intervals {
        assert!(
            l <= r && r < domain_size,
            "interval ({l}, {r}) out of domain {domain_size}"
        );
        a[l] = a[l].max(r);
    }
    // Step 3: scan to obtain the cover.
    let mut out = Vec::new();
    let mut end: Option<usize> = None; // e <- -1
    let mut start = 0;
    for (i, &r) in a.iter().enumerate() {
        match end {
            Some(e) if i <= e => {
                end = Some(e.max(r));
            }
            _ => {
                if let Some(e) = end {
                    out.push((start, e));
                }
                start = i;
                end = Some(r);
            }
        }
    }
    if let Some(e) = end {
        out.push((start, e));
    }
    out
}

/// The sort-based `Ω(k log k)` alternative mentioned in §IV-B: sort the
/// intervals by left endpoint and fold overlapping runs.
///
/// Produces the same merged union as [`merge_pigeonhole`] without
/// needing the domain size.
pub fn merge_sorted(mut intervals: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    intervals.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::new();
    for (l, r) in intervals {
        assert!(l <= r, "interval ({l}, {r}) is reversed");
        match out.last_mut() {
            Some((_, e)) if l <= *e => {
                *e = (*e).max(r);
            }
            _ => out.push((l, r)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(merge_pigeonhole(10, std::iter::empty()).is_empty());
        assert!(merge_sorted(vec![]).is_empty());
        assert_eq!(
            merge_cover_pigeonhole(3, std::iter::empty()),
            vec![(0, 0), (1, 1), (2, 2)]
        );
    }

    #[test]
    fn single_interval() {
        assert_eq!(merge_pigeonhole(10, [(2, 5)]), vec![(2, 5)]);
    }

    #[test]
    fn touching_intervals_merge() {
        // Index intervals [0,2] and [2,4] share index 2.
        assert_eq!(merge_pigeonhole(5, [(0, 2), (2, 4)]), vec![(0, 4)]);
    }

    #[test]
    fn adjacent_but_disjoint_stay_separate() {
        // [0,1] and [2,3] have no shared index.
        assert_eq!(merge_pigeonhole(4, [(0, 1), (2, 3)]), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn nested_and_duplicate() {
        assert_eq!(
            merge_pigeonhole(10, [(0, 9), (2, 3), (0, 9), (5, 6)]),
            vec![(0, 9)]
        );
    }

    #[test]
    fn later_interval_extends_earlier_run() {
        // A chain where the scan must propagate the running maximum.
        assert_eq!(merge_pigeonhole(10, [(0, 3), (1, 7), (6, 9)]), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_panics() {
        let _ = merge_pigeonhole(5, [(3, 5)]);
    }

    #[test]
    fn cover_variant_tiles_domain() {
        let cover = merge_cover_pigeonhole(8, [(1, 2), (2, 4)]);
        assert_eq!(cover, vec![(0, 0), (1, 4), (5, 5), (6, 6), (7, 7)]);
        // Union of the cover is the whole domain.
        let covered: usize = cover.iter().map(|&(l, r)| r - l + 1).sum();
        assert_eq!(covered, 8);
    }

    fn arb_intervals() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
        (4usize..60).prop_flat_map(|n| {
            let iv = (0..n)
                .prop_flat_map(move |l| (Just(l), l..n))
                .prop_map(|(l, r)| (l, r));
            (Just(n), proptest::collection::vec(iv, 0..100))
        })
    }

    proptest! {
        #[test]
        fn pigeonhole_matches_sorted((n, ivs) in arb_intervals()) {
            prop_assert_eq!(
                merge_pigeonhole(n, ivs.iter().copied()),
                merge_sorted(ivs.clone())
            );
        }

        #[test]
        fn merged_is_disjoint_and_covers_inputs((n, ivs) in arb_intervals()) {
            let merged = merge_pigeonhole(n, ivs.iter().copied());
            // Ordered output with no shared indices between runs.
            for w in merged.windows(2) {
                prop_assert!(w[0].1 < w[1].0);
            }
            // Every input lies inside exactly one merged interval.
            for &(l, r) in &ivs {
                let host = merged.iter().filter(|&&(ml, mr)| ml <= l && r <= mr).count();
                prop_assert_eq!(host, 1);
            }
        }

        #[test]
        fn cover_restricted_to_nontrivial_matches((n, ivs) in arb_intervals()) {
            // The verbatim cover, with input-free unit intervals removed,
            // equals the union merge — provided unit inputs are kept.
            let cover = merge_cover_pigeonhole(n, ivs.iter().copied());
            let merged = merge_pigeonhole(n, ivs.iter().copied());
            for &(l, r) in &merged {
                // Each merged interval appears in the cover as-is.
                prop_assert!(cover.contains(&(l, r)));
            }
        }
    }
}
