//! The shared work-stealing host executor.
//!
//! The paper's Fig. 4 attributes essentially all of the sequential
//! mode's runtime to host-side phases (partition ~15%, sweepline ~35%,
//! edge checks ~40-50%), and the row partition of §IV-B makes those
//! phases embarrassingly row-parallel. [`HostExecutor`] turns an index
//! range `0..n` of independent tasks into per-worker work-stealing
//! deques: each worker pops from the front of its own deque and, when
//! empty, steals the rear half of a victim's deque — the classic
//! Chase-Lev split between cheap owner pops and contended steals,
//! implemented here on a packed `AtomicU64` range (no external deque
//! crate; the workspace dependency list is fixed).
//!
//! Determinism is the design constraint: `run` returns results in task
//! index order no matter which worker executed what, so callers merge
//! with byte-identical output regardless of thread count or steal
//! interleaving. An executor with one thread (or an exhausted
//! [`ThreadGate`]) runs every task inline on the caller — the serial
//! path is the parallel path with zero workers, not a separate code
//! shape.
//!
//! # Sizing handshake
//!
//! The executor owns a [`ThreadGate`] holding `threads - 1` extra-thread
//! permits. Its own fan-outs draw worker threads from the gate, and the
//! simulated device can be handed the same gate so kernel dispatches
//! draw from the *same* budget — host phases and device kernels share
//! one pool-sized allowance instead of adding up, and nested fan-outs
//! (a task that launches a device sort) degrade to inline execution
//! instead of oversubscribing the machine.
//!
//! # Adaptive granularity
//!
//! Requesting N threads does not mean every fan-out should use N. On a
//! host with fewer physical cores than configured threads, or for a
//! phase whose total work is smaller than the cost of standing up the
//! workers, spawning only adds overhead — the pathology that made
//! `--host-threads 2` *slower* than serial on small hosts. Each
//! executor therefore keeps a per-phase cost model (an EWMA of
//! nanoseconds per task, learned from its own measured busy time) and
//! plans each fan-out as `workers = min(requested, physical cores,
//! total_estimated_ns / fanout_cost_ns)`, where the fan-out cost is
//! calibrated once per process by timing a no-op scoped spawn. Phases
//! the model has never seen run optimistically and are measured; the
//! planner only ever changes *how many* workers execute, never what
//! they produce, so results stay byte-identical either way.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::profile::Profiler;

/// A task panicked inside a [`HostExecutor`] fan-out.
///
/// Worker bodies run under `catch_unwind` (mirroring the xpu SPMD
/// pool), so a panicking task fails the whole fan-out with this typed
/// error instead of unwinding through the thread scope — which would
/// skip the gate release and permanently shrink the shared thread
/// budget ("poisoning" every later run down to inline execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostPanic {
    /// Phase label the fan-out was running under.
    pub phase: String,
    /// Index of the first (lowest-indexed) panicking task.
    pub task: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for HostPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "host task {} panicked in phase '{}': {}",
            self.task, self.phase, self.message
        )
    }
}

impl std::error::Error for HostPanic {}

/// Stringifies a caught panic payload (same shape as the xpu pool's
/// `panic_message`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// A budget of *extra* threads, shared between the host executor and
/// any other thread-spawning component (the simulated device's kernel
/// dispatch). Acquire-at-most semantics: a request returns however many
/// permits are available (possibly zero), never blocks, and the caller
/// runs inline with whatever it got — so sharing the gate can starve
/// parallelism but never deadlock.
#[derive(Debug)]
pub struct ThreadGate {
    permits: AtomicUsize,
}

impl ThreadGate {
    /// A gate holding `permits` extra-thread permits.
    pub fn new(permits: usize) -> Self {
        ThreadGate {
            permits: AtomicUsize::new(permits),
        }
    }

    /// Takes up to `want` permits, returning how many were granted.
    pub fn try_acquire(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Returns `n` permits to the gate.
    pub fn release(&self, n: usize) {
        if n > 0 {
            self.permits.fetch_add(n, Ordering::Release);
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }
}

/// One worker's deque: a half-open index range packed into an
/// `AtomicU64` (`lo` in the high word, `hi` in the low word). The owner
/// claims single indices from the front; thieves claim the rear half in
/// one CAS. Every transition only shrinks the current range (or
/// installs a freshly stolen one into an empty deque), so each index is
/// claimed exactly once.
struct RangeDeque(AtomicU64);

#[inline]
fn pack_range(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack_range(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl RangeDeque {
    fn new(lo: usize, hi: usize) -> Self {
        RangeDeque(AtomicU64::new(pack_range(lo as u32, hi as u32)))
    }

    /// Owner side: claim the front index.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(cur);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack_range(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: claim the rear half (at least one index).
    fn steal_back(&self) -> Option<std::ops::Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(cur);
            if lo >= hi {
                return None;
            }
            let take = (hi - lo).div_ceil(2);
            match self.0.compare_exchange_weak(
                cur,
                pack_range(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - take) as usize..hi as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Owner side: install a stolen range into this (empty) deque.
    fn install(&self, r: std::ops::Range<usize>) {
        self.0
            .store(pack_range(r.start as u32, r.end as u32), Ordering::Release);
    }
}

/// What one worker brings back from a fan-out.
struct WorkerResult<T> {
    results: Vec<(usize, T)>,
    busy: Duration,
    /// First panicking task on this worker, if any.
    panic: Option<(usize, String)>,
}

/// Per-phase utilization sample accumulated by [`HostExecutor::run`].
struct UtilSample {
    phase: String,
    wall: Duration,
    busy: Vec<Duration>,
}

/// Measured cost of standing up one extra scoped worker (spawn + join),
/// calibrated once per process. Floored at 20µs so a suspiciously fast
/// calibration run can't convince the planner that threads are free.
fn fanout_cost() -> Duration {
    static COST: OnceLock<Duration> = OnceLock::new();
    *COST.get_or_init(|| {
        let mut best = Duration::MAX;
        for _ in 0..4 {
            let t0 = Instant::now();
            std::thread::scope(|s| {
                s.spawn(|| {});
            });
            best = best.min(t0.elapsed());
        }
        best.max(Duration::from_micros(20))
    })
}

/// Physical parallelism of this host, cached once per process.
fn physical_parallelism() -> usize {
    static PHYS: OnceLock<usize> = OnceLock::new();
    *PHYS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The shared work-stealing host executor (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use odrc_infra::host::HostExecutor;
///
/// let host = HostExecutor::new(4);
/// let squares = host.run("demo", 100, |i| i * i);
/// assert_eq!(squares[7], 49); // results come back in index order
/// assert!(host.tasks() >= 100);
/// ```
pub struct HostExecutor {
    threads: usize,
    gate: Option<Arc<ThreadGate>>,
    cancel: Mutex<Option<CancelToken>>,
    tasks: AtomicU64,
    steals: AtomicU64,
    util: Mutex<Vec<UtilSample>>,
    /// Adaptive granularity switch (see the module docs). On by
    /// default; tests that must exercise the multi-worker path on a
    /// single-core host switch it off.
    adaptive: AtomicBool,
    /// EWMA of per-task nanoseconds, keyed by phase label.
    cost_model: Mutex<HashMap<String, f64>>,
}

impl std::fmt::Debug for HostExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostExecutor")
            .field("threads", &self.threads)
            .field("tasks", &self.tasks())
            .field("steals", &self.steals())
            .finish()
    }
}

impl HostExecutor {
    /// An executor sized to `threads` (clamped to at least 1). One
    /// thread means strictly inline execution — no gate, no spawns.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        HostExecutor {
            threads,
            gate: (threads > 1).then(|| Arc::new(ThreadGate::new(threads - 1))),
            cancel: Mutex::new(None),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            util: Mutex::new(Vec::new()),
            adaptive: AtomicBool::new(true),
            cost_model: Mutex::new(HashMap::new()),
        }
    }

    /// An executor that draws its extra workers from an *external*
    /// gate instead of owning one — the multi-tenant generalization of
    /// the sizing handshake. Every engine run inside a server shares
    /// one process-wide permit budget: concurrent runs' fan-outs (and,
    /// via [`HostExecutor::gate`], their devices' kernel dispatches)
    /// contend for the same permits, so N simultaneous jobs never
    /// oversubscribe the machine — late-coming fan-outs degrade toward
    /// inline execution exactly like nested fan-outs always have.
    ///
    /// `threads` caps how many workers *this* executor will use per
    /// fan-out (it still never takes more than the gate can grant).
    /// With `threads <= 1` the executor is serial and the gate is
    /// untouched.
    pub fn with_shared_gate(threads: usize, gate: Arc<ThreadGate>) -> Self {
        let threads = threads.max(1);
        HostExecutor {
            threads,
            gate: (threads > 1).then_some(gate),
            cancel: Mutex::new(None),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            util: Mutex::new(Vec::new()),
            adaptive: AtomicBool::new(true),
            cost_model: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches (or clears) the run's cancel token. A cancelled token
    /// makes workers stop *stealing*: every seeded task still executes
    /// exactly once — the deterministic index-ordered merge is
    /// unaffected — but load balancing stops, so an in-flight fan-out
    /// winds down on the cheapest path instead of redistributing work
    /// the run is about to discard.
    pub fn set_cancel(&self, token: Option<CancelToken>) {
        *self.cancel.lock().expect("cancel lock") = token;
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when this executor never spawns (one thread): callers can
    /// keep their exact single-threaded code path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// The extra-thread gate, for sharing the budget with other
    /// components (the device's kernel dispatch). `None` when serial.
    pub fn gate(&self) -> Option<Arc<ThreadGate>> {
        self.gate.clone()
    }

    /// Tasks executed so far (across all `run` calls).
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Enables or disables the adaptive granularity planner (on by
    /// default). With it off, every fan-out uses the full configured
    /// thread count — the pre-cost-model behavior, kept for tests that
    /// must exercise the multi-worker path regardless of host shape.
    pub fn set_adaptive(&self, on: bool) {
        self.adaptive.store(on, Ordering::Relaxed);
    }

    /// Decides how many workers a fan-out of `n` tasks in `phase`
    /// should use, given that the caller wants `want`. Only ever
    /// shrinks: never above the physical core count, and never so many
    /// that the calibrated fan-out cost exceeds the phase's estimated
    /// total work. Unknown phases run optimistically and get measured.
    fn plan_workers(&self, phase: &str, want: usize, n: usize) -> usize {
        if want <= 1 || !self.adaptive.load(Ordering::Relaxed) {
            return want;
        }
        let phys = physical_parallelism();
        if phys <= 1 {
            return 1;
        }
        let want = want.min(phys);
        let est = {
            let model = self.cost_model.lock().expect("cost model lock");
            model.get(phase).copied()
        };
        match est {
            None => want,
            Some(ns_per_task) => {
                let total_ns = ns_per_task * n as f64;
                let spawn_ns = fanout_cost().as_nanos() as f64;
                let by_work = (total_ns / spawn_ns) as usize;
                want.min(by_work.max(1))
            }
        }
    }

    /// Feeds a measured fan-out back into the per-phase cost model.
    /// `busy` is the summed worker busy time, so the estimate tracks
    /// work per task independent of how many workers ran it.
    fn observe(&self, phase: &str, n: usize, busy: Duration) {
        if n == 0 {
            return;
        }
        let sample = busy.as_nanos() as f64 / n as f64;
        let mut model = self.cost_model.lock().expect("cost model lock");
        match model.get_mut(phase) {
            Some(est) => *est = 0.7 * *est + 0.3 * sample,
            None => {
                model.insert(phase.to_owned(), sample);
            }
        }
    }

    /// Runs tasks `0..n` of `f`, returning the results in index order.
    ///
    /// Infallible wrapper over [`HostExecutor::try_run`]: a panicking
    /// task re-raises the panic on the caller — but only *after* the
    /// fan-out has wound down and the gate permits are back, so the
    /// executor stays usable.
    pub fn run<T, F>(&self, phase: &str, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(phase, n, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs tasks `0..n` of `f`, returning the results in index order,
    /// or a typed [`HostPanic`] if any task panicked.
    ///
    /// Tasks are distributed over up to `threads` workers (the caller
    /// is worker 0; extra workers are scoped threads drawn from the
    /// gate) with rear-half stealing for load balance. `phase` labels
    /// the per-worker busy time accumulated for
    /// [`HostExecutor::drain_utilization_into`].
    ///
    /// Each task body runs under `catch_unwind`; on a panic the
    /// affected worker stops claiming work, the other workers drain
    /// normally, the gate permits are released, and the error reports
    /// the lowest-indexed panicking task (deterministic regardless of
    /// scheduling).
    pub fn try_run<T, F>(&self, phase: &str, n: usize, f: F) -> Result<Vec<T>, HostPanic>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.tasks.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Ok(Vec::new());
        }
        let want = self.plan_workers(phase, self.threads.min(n), n);
        let extra = match (&self.gate, want) {
            (Some(gate), w) if w > 1 => gate.try_acquire(w - 1),
            _ => 0,
        };
        if extra == 0 {
            let start = Instant::now();
            let mut out: Vec<T> = Vec::with_capacity(n);
            for i in 0..n {
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        self.note_util(phase, start.elapsed(), vec![start.elapsed()]);
                        return Err(HostPanic {
                            phase: phase.to_owned(),
                            task: i,
                            message: panic_message(payload),
                        });
                    }
                }
            }
            self.observe(phase, n, start.elapsed());
            self.note_util(phase, start.elapsed(), vec![start.elapsed()]);
            return Ok(out);
        }
        let workers = extra + 1;

        // Seed per-worker deques with contiguous slices of the range.
        let chunk = n.div_ceil(workers);
        let deques: Vec<RangeDeque> = (0..workers)
            .map(|w| RangeDeque::new((w * chunk).min(n), ((w + 1) * chunk).min(n)))
            .collect();
        let deques = &deques;
        let f = &f;
        let steals = &self.steals;
        let cancel = self.cancel.lock().expect("cancel lock").clone();
        let cancel = &cancel;
        let worker_loop = move |w: usize| -> WorkerResult<T> {
            let mut local: Vec<(usize, T)> = Vec::new();
            let mut busy = Duration::ZERO;
            loop {
                while let Some(i) = deques[w].pop_front() {
                    let t0 = Instant::now();
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                        Ok(v) => local.push((i, v)),
                        Err(payload) => {
                            busy += t0.elapsed();
                            return WorkerResult {
                                results: local,
                                busy,
                                panic: Some((i, panic_message(payload))),
                            };
                        }
                    }
                    busy += t0.elapsed();
                }
                // A cancelled run stops load balancing: every seeded
                // task still runs exactly once (owners drain their own
                // deques), but nothing is redistributed.
                let stealing_allowed = cancel.as_ref().is_none_or(|t| !t.is_cancelled());
                let mut refilled = false;
                if stealing_allowed {
                    for off in 1..deques.len() {
                        let victim = (w + off) % deques.len();
                        if let Some(r) = deques[victim].steal_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            deques[w].install(r);
                            refilled = true;
                            break;
                        }
                    }
                }
                if !refilled {
                    return WorkerResult {
                        results: local,
                        busy,
                        panic: None,
                    };
                }
            }
        };

        let start = Instant::now();
        let mut per_worker: Vec<WorkerResult<T>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|w| scope.spawn(move || worker_loop(w)))
                .collect();
            per_worker.push(worker_loop(0));
            for h in handles {
                match h.join() {
                    Ok(r) => per_worker.push(r),
                    // Unreachable in practice (the task body is caught),
                    // but never let a join failure skip the gate release.
                    Err(payload) => per_worker.push(WorkerResult {
                        results: Vec::new(),
                        busy: Duration::ZERO,
                        panic: Some((usize::MAX, panic_message(payload))),
                    }),
                }
            }
        });
        let wall = start.elapsed();
        if let Some(gate) = &self.gate {
            gate.release(extra);
        }

        let busy: Vec<Duration> = per_worker.iter().map(|r| r.busy).collect();
        self.observe(phase, n, busy.iter().sum());
        self.note_util(phase, wall, busy);

        // Deterministic failure: report the lowest-indexed panic no
        // matter which worker hit it first.
        if let Some((task, message)) = per_worker
            .iter()
            .filter_map(|r| r.panic.clone())
            .min_by_key(|(i, _)| *i)
        {
            return Err(HostPanic {
                phase: phase.to_owned(),
                task,
                message,
            });
        }

        // Deterministic merge: place every result by its task index.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for r in per_worker {
            for (i, v) in r.results {
                debug_assert!(slots[i].is_none(), "task {i} claimed twice");
                slots[i] = Some(v);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task index claimed exactly once"))
            .collect())
    }

    fn note_util(&self, phase: &str, wall: Duration, busy: Vec<Duration>) {
        let mut util = self.util.lock().expect("utilization lock");
        if let Some(sample) = util.iter_mut().find(|s| s.phase == phase) {
            sample.wall += wall;
            for (i, b) in busy.into_iter().enumerate() {
                if i < sample.busy.len() {
                    sample.busy[i] += b;
                } else {
                    sample.busy.push(b);
                }
            }
        } else {
            util.push(UtilSample {
                phase: phase.to_owned(),
                wall,
                busy,
            });
        }
    }

    /// Moves the accumulated per-phase host-thread utilization into a
    /// profiler (busy vs idle per worker, keyed by phase).
    pub fn drain_utilization_into(&self, profiler: &mut Profiler) {
        let mut util = self.util.lock().expect("utilization lock");
        for sample in util.drain(..) {
            profiler.add_host_util(&sample.phase, sample.wall, &sample.busy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_runs_inline() {
        let host = HostExecutor::new(1);
        assert!(host.is_serial());
        assert!(host.gate().is_none());
        let out = host.run("t", 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(host.tasks(), 10);
        assert_eq!(host.steals(), 0);
    }

    #[test]
    fn results_in_index_order_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let host = HostExecutor::new(threads);
            host.set_adaptive(false);
            let out = host.run("t", 1000, |i| i * 3);
            assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_run() {
        let host = HostExecutor::new(4);
        let out: Vec<usize> = host.run("t", 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_tasks_balance_via_stealing() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        // A few heavy tasks at the front force front-loaded deques to be
        // drained by thieves on multicore hosts; on any host the result
        // must still come back in order.
        let out = host.run("t", 64, |i| {
            if i < 4 {
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc & 1
            } else {
                (i as u64) & 1
            }
        });
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate().skip(4) {
            assert_eq!(*v, (i as u64) & 1);
        }
    }

    #[test]
    fn gate_bounds_extra_threads() {
        let gate = ThreadGate::new(3);
        assert_eq!(gate.try_acquire(2), 2);
        assert_eq!(gate.try_acquire(5), 1);
        assert_eq!(gate.try_acquire(1), 0);
        gate.release(3);
        assert_eq!(gate.available(), 3);
        assert_eq!(gate.try_acquire(0), 0);
    }

    #[test]
    fn executor_shares_gate_budget() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        let gate = host.gate().expect("parallel executor has a gate");
        assert_eq!(gate.available(), 3);
        // Drain the gate: the next run degrades to inline but completes.
        let taken = gate.try_acquire(3);
        assert_eq!(taken, 3);
        let out = host.run("t", 100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        gate.release(taken);
        assert_eq!(gate.available(), 3);
        // And after release the budget is intact for a parallel run.
        let out = host.run("t", 100, |i| i);
        assert_eq!(out.len(), 100);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn shared_gate_spans_executors() {
        // Two executors over one gate: permits drawn by either come
        // from (and return to) the same budget.
        let gate = Arc::new(ThreadGate::new(3));
        let a = HostExecutor::with_shared_gate(4, Arc::clone(&gate));
        let b = HostExecutor::with_shared_gate(4, Arc::clone(&gate));
        assert!(Arc::ptr_eq(&a.gate().unwrap(), &b.gate().unwrap()));
        // Drain the shared budget: both executors degrade to inline
        // but still complete with index-ordered results.
        let taken = gate.try_acquire(3);
        assert_eq!(taken, 3);
        assert_eq!(a.run("t", 20, |i| i), (0..20).collect::<Vec<_>>());
        assert_eq!(b.run("t", 20, |i| i + 1), (1..=20).collect::<Vec<_>>());
        gate.release(taken);
        assert_eq!(gate.available(), 3);
        // With permits back, a fan-out returns them when done.
        let out = a.run("t", 200, |i| i);
        assert_eq!(out.len(), 200);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn shared_gate_serial_executor_ignores_gate() {
        let gate = Arc::new(ThreadGate::new(2));
        let host = HostExecutor::with_shared_gate(1, Arc::clone(&gate));
        assert!(host.is_serial());
        assert!(host.gate().is_none());
        assert_eq!(host.run("t", 5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(gate.available(), 2);
    }

    #[test]
    fn utilization_accumulates_per_phase() {
        let host = HostExecutor::new(2);
        host.set_adaptive(false);
        host.run("alpha", 50, |i| i);
        host.run("alpha", 50, |i| i);
        host.run("beta", 10, |i| i);
        let mut prof = Profiler::new();
        host.drain_utilization_into(&mut prof);
        let util = prof.host_util();
        assert_eq!(util.len(), 2);
        assert_eq!(util[0].phase, "alpha");
        assert!(!util[0].busy.is_empty());
        // Drained: a second drain adds nothing.
        let mut prof2 = Profiler::new();
        host.drain_utilization_into(&mut prof2);
        assert!(prof2.host_util().is_empty());
    }

    #[test]
    fn panicking_task_fails_with_typed_error_and_keeps_pool() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        let gate = host.gate().expect("parallel executor has a gate");
        let err = host
            .try_run("t", 64, |i| {
                if i == 17 {
                    panic!("task {i} exploded");
                }
                i
            })
            .expect_err("task 17 panics");
        assert_eq!(err.task, 17);
        assert_eq!(err.phase, "t");
        assert!(err.message.contains("exploded"), "got: {}", err.message);
        // Regression: the fan-out used to unwind through the thread
        // scope, skipping the gate release and degrading every later
        // run to inline execution. The permits must all be back.
        assert_eq!(gate.available(), 3);
        let out = host.run("t", 100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_fails_inline_path_too() {
        let host = HostExecutor::new(1);
        let err = host
            .try_run("serial", 8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
            .expect_err("task 3 panics");
        assert_eq!(err.task, 3);
        assert!(err.message.contains("boom"));
    }

    #[test]
    fn run_repanics_after_releasing_gate() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        let gate = host.gate().expect("gate");
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            host.run("t", 16, |i| {
                if i == 5 {
                    panic!("inner");
                }
                i
            })
        }));
        assert!(result.is_err());
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn lowest_indexed_panic_wins() {
        // Several tasks panic; the reported task index must be the
        // minimum regardless of worker scheduling.
        for _ in 0..8 {
            let host = HostExecutor::new(4);
            host.set_adaptive(false);
            let err = host
                .try_run("t", 64, |i| {
                    if i % 9 == 4 {
                        panic!("p{i}");
                    }
                    i
                })
                .expect_err("several tasks panic");
            assert_eq!(err.task, 4);
        }
    }

    #[test]
    fn cancelled_token_still_runs_every_task() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        let token = CancelToken::new();
        token.cancel(crate::cancel::CancelReason::Interrupt);
        host.set_cancel(Some(token));
        // Stealing is disabled, but all seeded tasks still execute and
        // merge deterministically.
        let out = host.run("t", 500, |i| i * 2);
        assert_eq!(out, (0..500).map(|i| i * 2).collect::<Vec<_>>());
        host.set_cancel(None);
    }

    #[test]
    fn planner_never_exceeds_physical_cores() {
        let host = HostExecutor::new(64);
        let planned = host.plan_workers("t", 64, 10_000);
        assert!(planned <= physical_parallelism());
        assert!(planned >= 1);
    }

    #[test]
    fn planner_shrinks_cheap_phases_to_inline() {
        let host = HostExecutor::new(4);
        // Teach the model that "cheap" tasks are ~40ns each: total work
        // for a small fan-out is far below the calibrated spawn cost,
        // so the planner must refuse to spawn.
        host.observe("cheap", 1000, Duration::from_nanos(40_000));
        assert_eq!(host.plan_workers("cheap", 4, 8), 1);
        // An expensive phase keeps its workers (modulo physical cores).
        host.observe("heavy", 10, Duration::from_millis(400));
        let planned = host.plan_workers("heavy", 4, 10);
        assert_eq!(planned, 4.min(physical_parallelism()));
    }

    #[test]
    fn planner_is_optimistic_for_unknown_phases() {
        let host = HostExecutor::new(4);
        let expect = 4.min(physical_parallelism());
        assert_eq!(host.plan_workers("never-seen", 4, 100), expect);
    }

    #[test]
    fn disabling_adaptive_restores_full_fanout() {
        let host = HostExecutor::new(4);
        host.set_adaptive(false);
        host.observe("cheap", 1000, Duration::from_nanos(40_000));
        assert_eq!(host.plan_workers("cheap", 4, 8), 4);
    }

    #[test]
    fn cost_model_learns_from_runs() {
        let host = HostExecutor::new(2);
        host.run("spin", 32, |i| {
            let mut acc = 0u64;
            for k in 0..50_000u64 {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            acc
        });
        let model = host.cost_model.lock().unwrap();
        let est = model.get("spin").copied().expect("phase was measured");
        assert!(est > 0.0);
    }

    #[test]
    fn adaptive_results_match_full_fanout() {
        // The planner changes worker counts, never results.
        let adaptive = HostExecutor::new(8);
        let pinned = HostExecutor::new(8);
        pinned.set_adaptive(false);
        for _ in 0..3 {
            let a = adaptive.run("t", 777, |i| i * 31 + 7);
            let b = pinned.run("t", 777, |i| i * 31 + 7);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn range_deque_claims_each_index_once() {
        let d = RangeDeque::new(0, 10);
        let stolen = d.steal_back().expect("non-empty");
        assert_eq!(stolen, 5..10);
        let mut fronts = Vec::new();
        while let Some(i) = d.pop_front() {
            fronts.push(i);
        }
        assert_eq!(fronts, vec![0, 1, 2, 3, 4]);
        assert!(d.steal_back().is_none());
        assert!(d.pop_front().is_none());
    }
}
