//! The shared work-stealing host executor.
//!
//! The paper's Fig. 4 attributes essentially all of the sequential
//! mode's runtime to host-side phases (partition ~15%, sweepline ~35%,
//! edge checks ~40-50%), and the row partition of §IV-B makes those
//! phases embarrassingly row-parallel. [`HostExecutor`] turns an index
//! range `0..n` of independent tasks into per-worker work-stealing
//! deques: each worker pops from the front of its own deque and, when
//! empty, steals the rear half of a victim's deque — the classic
//! Chase-Lev split between cheap owner pops and contended steals,
//! implemented here on a packed `AtomicU64` range (no external deque
//! crate; the workspace dependency list is fixed).
//!
//! Determinism is the design constraint: `run` returns results in task
//! index order no matter which worker executed what, so callers merge
//! with byte-identical output regardless of thread count or steal
//! interleaving. An executor with one thread (or an exhausted
//! [`ThreadGate`]) runs every task inline on the caller — the serial
//! path is the parallel path with zero workers, not a separate code
//! shape.
//!
//! # Sizing handshake
//!
//! The executor owns a [`ThreadGate`] holding `threads - 1` extra-thread
//! permits. Its own fan-outs draw worker threads from the gate, and the
//! simulated device can be handed the same gate so kernel dispatches
//! draw from the *same* budget — host phases and device kernels share
//! one pool-sized allowance instead of adding up, and nested fan-outs
//! (a task that launches a device sort) degrade to inline execution
//! instead of oversubscribing the machine.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::profile::Profiler;

/// A budget of *extra* threads, shared between the host executor and
/// any other thread-spawning component (the simulated device's kernel
/// dispatch). Acquire-at-most semantics: a request returns however many
/// permits are available (possibly zero), never blocks, and the caller
/// runs inline with whatever it got — so sharing the gate can starve
/// parallelism but never deadlock.
#[derive(Debug)]
pub struct ThreadGate {
    permits: AtomicUsize,
}

impl ThreadGate {
    /// A gate holding `permits` extra-thread permits.
    pub fn new(permits: usize) -> Self {
        ThreadGate {
            permits: AtomicUsize::new(permits),
        }
    }

    /// Takes up to `want` permits, returning how many were granted.
    pub fn try_acquire(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Returns `n` permits to the gate.
    pub fn release(&self, n: usize) {
        if n > 0 {
            self.permits.fetch_add(n, Ordering::Release);
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }
}

/// One worker's deque: a half-open index range packed into an
/// `AtomicU64` (`lo` in the high word, `hi` in the low word). The owner
/// claims single indices from the front; thieves claim the rear half in
/// one CAS. Every transition only shrinks the current range (or
/// installs a freshly stolen one into an empty deque), so each index is
/// claimed exactly once.
struct RangeDeque(AtomicU64);

#[inline]
fn pack_range(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack_range(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl RangeDeque {
    fn new(lo: usize, hi: usize) -> Self {
        RangeDeque(AtomicU64::new(pack_range(lo as u32, hi as u32)))
    }

    /// Owner side: claim the front index.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(cur);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack_range(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: claim the rear half (at least one index).
    fn steal_back(&self) -> Option<std::ops::Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(cur);
            if lo >= hi {
                return None;
            }
            let take = (hi - lo).div_ceil(2);
            match self.0.compare_exchange_weak(
                cur,
                pack_range(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - take) as usize..hi as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Owner side: install a stolen range into this (empty) deque.
    fn install(&self, r: std::ops::Range<usize>) {
        self.0
            .store(pack_range(r.start as u32, r.end as u32), Ordering::Release);
    }
}

/// Per-phase utilization sample accumulated by [`HostExecutor::run`].
struct UtilSample {
    phase: String,
    wall: Duration,
    busy: Vec<Duration>,
}

/// The shared work-stealing host executor (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use odrc_infra::host::HostExecutor;
///
/// let host = HostExecutor::new(4);
/// let squares = host.run("demo", 100, |i| i * i);
/// assert_eq!(squares[7], 49); // results come back in index order
/// assert!(host.tasks() >= 100);
/// ```
pub struct HostExecutor {
    threads: usize,
    gate: Option<Arc<ThreadGate>>,
    tasks: AtomicU64,
    steals: AtomicU64,
    util: Mutex<Vec<UtilSample>>,
}

impl std::fmt::Debug for HostExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostExecutor")
            .field("threads", &self.threads)
            .field("tasks", &self.tasks())
            .field("steals", &self.steals())
            .finish()
    }
}

impl HostExecutor {
    /// An executor sized to `threads` (clamped to at least 1). One
    /// thread means strictly inline execution — no gate, no spawns.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        HostExecutor {
            threads,
            gate: (threads > 1).then(|| Arc::new(ThreadGate::new(threads - 1))),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            util: Mutex::new(Vec::new()),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when this executor never spawns (one thread): callers can
    /// keep their exact single-threaded code path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// The extra-thread gate, for sharing the budget with other
    /// components (the device's kernel dispatch). `None` when serial.
    pub fn gate(&self) -> Option<Arc<ThreadGate>> {
        self.gate.clone()
    }

    /// Tasks executed so far (across all `run` calls).
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Runs tasks `0..n` of `f`, returning the results in index order.
    ///
    /// Tasks are distributed over up to `threads` workers (the caller
    /// is worker 0; extra workers are scoped threads drawn from the
    /// gate) with rear-half stealing for load balance. `phase` labels
    /// the per-worker busy time accumulated for
    /// [`HostExecutor::drain_utilization_into`].
    pub fn run<T, F>(&self, phase: &str, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.tasks.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Vec::new();
        }
        let want = self.threads.min(n);
        let extra = match (&self.gate, want) {
            (Some(gate), w) if w > 1 => gate.try_acquire(w - 1),
            _ => 0,
        };
        if extra == 0 {
            let start = Instant::now();
            let out: Vec<T> = (0..n).map(&f).collect();
            self.note_util(phase, start.elapsed(), vec![start.elapsed()]);
            return out;
        }
        let workers = extra + 1;

        // Seed per-worker deques with contiguous slices of the range.
        let chunk = n.div_ceil(workers);
        let deques: Vec<RangeDeque> = (0..workers)
            .map(|w| RangeDeque::new((w * chunk).min(n), ((w + 1) * chunk).min(n)))
            .collect();
        let deques = &deques;
        let f = &f;
        let steals = &self.steals;
        let worker_loop = move |w: usize| -> (Vec<(usize, T)>, Duration) {
            let mut local: Vec<(usize, T)> = Vec::new();
            let mut busy = Duration::ZERO;
            loop {
                while let Some(i) = deques[w].pop_front() {
                    let t0 = Instant::now();
                    local.push((i, f(i)));
                    busy += t0.elapsed();
                }
                let mut refilled = false;
                for off in 1..deques.len() {
                    let victim = (w + off) % deques.len();
                    if let Some(r) = deques[victim].steal_back() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        deques[w].install(r);
                        refilled = true;
                        break;
                    }
                }
                if !refilled {
                    return (local, busy);
                }
            }
        };

        let start = Instant::now();
        let mut per_worker: Vec<(Vec<(usize, T)>, Duration)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|w| scope.spawn(move || worker_loop(w)))
                .collect();
            per_worker.push(worker_loop(0));
            for h in handles {
                per_worker.push(h.join().expect("host worker panicked"));
            }
        });
        let wall = start.elapsed();
        if let Some(gate) = &self.gate {
            gate.release(extra);
        }

        let busy: Vec<Duration> = per_worker.iter().map(|(_, b)| *b).collect();
        self.note_util(phase, wall, busy);

        // Deterministic merge: place every result by its task index.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (results, _) in per_worker {
            for (i, v) in results {
                debug_assert!(slots[i].is_none(), "task {i} claimed twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index claimed exactly once"))
            .collect()
    }

    fn note_util(&self, phase: &str, wall: Duration, busy: Vec<Duration>) {
        let mut util = self.util.lock().expect("utilization lock");
        if let Some(sample) = util.iter_mut().find(|s| s.phase == phase) {
            sample.wall += wall;
            for (i, b) in busy.into_iter().enumerate() {
                if i < sample.busy.len() {
                    sample.busy[i] += b;
                } else {
                    sample.busy.push(b);
                }
            }
        } else {
            util.push(UtilSample {
                phase: phase.to_owned(),
                wall,
                busy,
            });
        }
    }

    /// Moves the accumulated per-phase host-thread utilization into a
    /// profiler (busy vs idle per worker, keyed by phase).
    pub fn drain_utilization_into(&self, profiler: &mut Profiler) {
        let mut util = self.util.lock().expect("utilization lock");
        for sample in util.drain(..) {
            profiler.add_host_util(&sample.phase, sample.wall, &sample.busy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_runs_inline() {
        let host = HostExecutor::new(1);
        assert!(host.is_serial());
        assert!(host.gate().is_none());
        let out = host.run("t", 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(host.tasks(), 10);
        assert_eq!(host.steals(), 0);
    }

    #[test]
    fn results_in_index_order_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let host = HostExecutor::new(threads);
            let out = host.run("t", 1000, |i| i * 3);
            assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_run() {
        let host = HostExecutor::new(4);
        let out: Vec<usize> = host.run("t", 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_tasks_balance_via_stealing() {
        let host = HostExecutor::new(4);
        // A few heavy tasks at the front force front-loaded deques to be
        // drained by thieves on multicore hosts; on any host the result
        // must still come back in order.
        let out = host.run("t", 64, |i| {
            if i < 4 {
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc & 1
            } else {
                (i as u64) & 1
            }
        });
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate().skip(4) {
            assert_eq!(*v, (i as u64) & 1);
        }
    }

    #[test]
    fn gate_bounds_extra_threads() {
        let gate = ThreadGate::new(3);
        assert_eq!(gate.try_acquire(2), 2);
        assert_eq!(gate.try_acquire(5), 1);
        assert_eq!(gate.try_acquire(1), 0);
        gate.release(3);
        assert_eq!(gate.available(), 3);
        assert_eq!(gate.try_acquire(0), 0);
    }

    #[test]
    fn executor_shares_gate_budget() {
        let host = HostExecutor::new(4);
        let gate = host.gate().expect("parallel executor has a gate");
        assert_eq!(gate.available(), 3);
        // Drain the gate: the next run degrades to inline but completes.
        let taken = gate.try_acquire(3);
        assert_eq!(taken, 3);
        let out = host.run("t", 100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        gate.release(taken);
        assert_eq!(gate.available(), 3);
        // And after release the budget is intact for a parallel run.
        let out = host.run("t", 100, |i| i);
        assert_eq!(out.len(), 100);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn utilization_accumulates_per_phase() {
        let host = HostExecutor::new(2);
        host.run("alpha", 50, |i| i);
        host.run("alpha", 50, |i| i);
        host.run("beta", 10, |i| i);
        let mut prof = Profiler::new();
        host.drain_utilization_into(&mut prof);
        let util = prof.host_util();
        assert_eq!(util.len(), 2);
        assert_eq!(util[0].phase, "alpha");
        assert!(!util[0].busy.is_empty());
        // Drained: a second drain adds nothing.
        let mut prof2 = Profiler::new();
        host.drain_utilization_into(&mut prof2);
        assert!(prof2.host_util().is_empty());
    }

    #[test]
    fn range_deque_claims_each_index_once() {
        let d = RangeDeque::new(0, 10);
        let stolen = d.steal_back().expect("non-empty");
        assert_eq!(stolen, 5..10);
        let mut fronts = Vec::new();
        while let Some(i) = d.pop_front() {
            fronts.push(i);
        }
        assert_eq!(fronts, vec![0, 1, 2, 3, 4]);
        assert!(d.steal_back().is_none());
        assert!(d.pop_front().is_none());
    }
}
