//! Crash-safe sidecar writes.
//!
//! The engine persists several sidecar files next to a run — the
//! incremental result cache, the checkpoint journal, `--stats-json` —
//! and every one of them may be written at the exact moment the process
//! is killed (that is the *point* of checkpointing). A plain
//! `File::create` + `write_all` leaves a truncated file on a mid-write
//! kill, which a later run would then half-parse or discard wholesale.
//!
//! [`write_atomic`] routes all such writes through the standard
//! write-temp-then-rename protocol: the bytes land in a sibling
//! temporary file, are flushed, and the temp file is renamed over the
//! destination. On POSIX filesystems `rename(2)` within one directory
//! is atomic, so readers observe either the complete old file or the
//! complete new file — never a torn one.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Writes `bytes` to `path` atomically (temp file + rename).
///
/// The temporary file is created in `path`'s parent directory (same
/// filesystem, so the rename cannot degrade to a copy) and named after
/// the destination plus a `.tmp.<pid>` suffix, so concurrent writers in
/// different processes cannot collide on the staging file. On any
/// error, the temp file is removed and the destination is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = staging_path(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Make the rename publish a fully durable file: flush file
        // contents before the new name becomes visible.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // The rename is atomic but not yet durable: a power cut can
        // still roll the *directory entry* back to the old file. Sync
        // the parent directory so the publish survives anything short
        // of disk loss — the contract crash-safe journals rely on.
        fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs a directory so a just-renamed entry inside it is durable.
///
/// Best-effort by design: some filesystems refuse `fsync` on directory
/// handles (and Windows cannot open them at all), and an undurable
/// rename is exactly as safe as the pre-sync behavior — the failure is
/// swallowed rather than turning a successful write into an error.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// The sibling staging path used by [`write_atomic`] for `path`.
fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_owned();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// An advisory cross-process file lock guarding a sidecar's
/// load-modify-save cycle.
///
/// [`write_atomic`] makes each individual *write* all-or-nothing, but a
/// merge-on-save (load the current file, fold in new entries, write the
/// union back) is a read-modify-write: two uncoordinated writers can
/// interleave and silently drop each other's entries. `FileLock`
/// serializes such cycles with the portable `O_CREAT|O_EXCL` protocol —
/// the lock is a sibling file created with `create_new`, which exactly
/// one contender can win; everyone else retries with a short sleep.
///
/// The lock is advisory (plain `write_atomic` callers are not blocked)
/// and self-healing: a lock file older than [`FileLock::STALE_AFTER`]
/// — a holder that was killed mid-cycle — is broken and re-contended,
/// so a crashed process never wedges every later run.
#[derive(Debug)]
pub struct FileLock {
    path: PathBuf,
}

impl FileLock {
    /// Age past which an existing lock file is presumed abandoned.
    /// Sidecar merge cycles take milliseconds; thirty seconds of
    /// continuous ownership means the holder died without unlocking.
    pub const STALE_AFTER: Duration = Duration::from_secs(30);

    /// Acquires the lock at `path` (the lock file itself, conventionally
    /// `<sidecar>.lock`), waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// `TimedOut` if the lock stayed contended past `timeout`; any
    /// filesystem error from creating the lock file (e.g. a missing
    /// parent directory).
    pub fn acquire(path: &Path, timeout: Duration) -> std::io::Result<FileLock> {
        let deadline = Instant::now() + timeout;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut f) => {
                    // Best effort breadcrumb for humans inspecting a
                    // stuck lock; the content is never parsed.
                    let _ = writeln!(f, "pid {}", std::process::id());
                    return Ok(FileLock {
                        path: path.to_owned(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Break a stale lock: if its mtime is old enough,
                    // remove it and re-contend (the remove itself may
                    // race; create_new stays the single arbiter).
                    if let Ok(meta) = std::fs::metadata(path) {
                        let age = meta
                            .modified()
                            .ok()
                            .and_then(|m| SystemTime::now().duration_since(m).ok());
                        if age.is_some_and(|a| a > Self::STALE_AFTER) {
                            let _ = std::fs::remove_file(path);
                            continue;
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("lock file {} stayed contended", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-atomic-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = temp_dir("rw");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_staging_file_left_behind() {
        let dir = temp_dir("clean");
        let path = dir.join("out.bin");
        write_atomic(&path, &[0u8; 4096]).unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names, vec![std::ffi::OsString::from("out.bin")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_lock_excludes_and_releases() {
        let dir = temp_dir("lock");
        let lock_path = dir.join("side.lock");
        let first = FileLock::acquire(&lock_path, Duration::from_millis(50)).unwrap();
        // Contended: a second acquire with a tiny timeout fails.
        let err =
            FileLock::acquire(&lock_path, Duration::from_millis(20)).expect_err("lock is held");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        drop(first);
        // Released: the lock file is gone and re-acquirable.
        assert!(!lock_path.exists());
        let _again = FileLock::acquire(&lock_path, Duration::from_millis(50)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = temp_dir("stale");
        let lock_path = dir.join("side.lock");
        std::fs::write(&lock_path, b"pid 0").unwrap();
        // Backdate the lock file's mtime past the stale threshold by
        // pretending time: we can't set mtimes with std, so exercise
        // the non-stale path instead — a *fresh* foreign lock file is
        // respected until timeout.
        let err = FileLock::acquire(&lock_path, Duration::from_millis(20))
            .expect_err("fresh foreign lock is respected");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_intact() {
        let dir = temp_dir("fail");
        let path = dir.join("out.txt");
        write_atomic(&path, b"good").unwrap();
        // Writing under a missing directory fails without touching the
        // existing file.
        let bad = dir.join("missing").join("out.txt");
        assert!(write_atomic(&bad, b"bad").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
