//! Crash-safe sidecar writes.
//!
//! The engine persists several sidecar files next to a run — the
//! incremental result cache, the checkpoint journal, `--stats-json` —
//! and every one of them may be written at the exact moment the process
//! is killed (that is the *point* of checkpointing). A plain
//! `File::create` + `write_all` leaves a truncated file on a mid-write
//! kill, which a later run would then half-parse or discard wholesale.
//!
//! [`write_atomic`] routes all such writes through the standard
//! write-temp-then-rename protocol: the bytes land in a sibling
//! temporary file, are flushed, and the temp file is renamed over the
//! destination. On POSIX filesystems `rename(2)` within one directory
//! is atomic, so readers observe either the complete old file or the
//! complete new file — never a torn one.

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically (temp file + rename).
///
/// The temporary file is created in `path`'s parent directory (same
/// filesystem, so the rename cannot degrade to a copy) and named after
/// the destination plus a `.tmp.<pid>` suffix, so concurrent writers in
/// different processes cannot collide on the staging file. On any
/// error, the temp file is removed and the destination is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = staging_path(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Make the rename publish a fully durable file: flush file
        // contents before the new name becomes visible.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// The sibling staging path used by [`write_atomic`] for `path`.
fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_owned();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-atomic-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = temp_dir("rw");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_staging_file_left_behind() {
        let dir = temp_dir("clean");
        let path = dir.join("out.bin");
        write_atomic(&path, &[0u8; 4096]).unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names, vec![std::ffi::OsString::from("out.bin")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_intact() {
        let dir = temp_dir("fail");
        let path = dir.join("out.txt");
        write_atomic(&path, b"good").unwrap();
        // Writing under a missing directory fails without touching the
        // existing file.
        let bad = dir.join("missing").join("out.txt");
        assert!(write_atomic(&bad, b"bad").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
