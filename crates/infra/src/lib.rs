//! Infrastructure algorithms for the OpenDRC design rule checking engine.
//!
//! This crate is the paper's "infrastructure layer" (§V-A): abstract data
//! structures and algorithms that the engine's application and algorithm
//! layers build upon.
//!
//! * [`IntervalTree`] — the interval tree of §IV-D, a binary search tree
//!   whose nodes keep their intervals in two sorted lists (by left and by
//!   right endpoint) to answer overlap queries output-sensitively.
//! * [`sweep::sweep_overlaps`] — the top-to-bottom sweepline that reports
//!   all pairs of overlapping MBRs (§IV-D, Fig. 3).
//! * [`merge`] — Algorithm 1's pigeonhole interval merging in
//!   `Θ(k + N)`, plus the `Ω(k log k)` sort-based alternative the paper
//!   contrasts it with (§IV-B).
//! * [`partition`] — the adaptive row-based layout partitioner built on
//!   interval merging (§IV-B), including the secondary x-axis clip
//!   partition within each row.
//! * [`profile`] — phase timers backing the runtime breakdown of Fig. 4.
//! * [`host`] — the shared work-stealing host executor that fans the
//!   row/cell-parallel phases above out over `--host-threads` workers
//!   with deterministic index-ordered merges.
//! * [`cancel`] — the cooperative [`CancelToken`] threaded through the
//!   engine, host executor, and device layer so SIGINT/SIGTERM and
//!   wall-clock deadlines wind a run down at rule boundaries.
//! * [`atomic_io`] — crash-safe write-temp-then-rename sidecar writes
//!   (result cache, checkpoint journal, stats JSON).
//!
//! # Examples
//!
//! ```
//! use odrc_geometry::Rect;
//! use odrc_infra::partition::partition_rows;
//!
//! let mbrs = [
//!     Rect::from_coords(0, 0, 10, 10),
//!     Rect::from_coords(20, 2, 30, 9),
//!     Rect::from_coords(5, 40, 15, 50),
//! ];
//! let rows = partition_rows(&mbrs, 0);
//! assert_eq!(rows.len(), 2); // two independent rows along y
//! ```

pub mod atomic_io;
pub mod cancel;
pub mod host;
pub mod interval_tree;
pub mod journal;
pub mod merge;
pub mod partition;
pub mod profile;
pub mod quadtree;
pub mod region;
pub mod rss;
pub mod rtree;
pub mod sweep;

pub use atomic_io::{fsync_dir, write_atomic, FileLock};
pub use cancel::{install_signal_handlers, CancelReason, CancelToken};
pub use host::{HostExecutor, HostPanic, ThreadGate};
pub use interval_tree::IntervalTree;
pub use journal::{fnv1a64, RecordLog};
pub use partition::{partition_rows, Row, RowPartition};
pub use profile::Profiler;
pub use quadtree::QuadTree;
pub use region::{BoolOp, Region};
pub use rss::{peak_rss_bytes, reset_peak_rss};
pub use rtree::RTree;
pub use sweep::sweep_overlaps;
