//! A region quadtree over rectangles.
//!
//! The paper cites "binary space partitioning data structures like
//! \[the\] quad-tree and kd-tree" among the layout data-structure
//! foundations
//! (§I). This quadtree stores each rectangle in the smallest quadrant
//! node that fully contains it; window queries descend only the
//! quadrants the window touches.
//!
//! Like the [R-tree](crate::rtree::RTree), it serves unstructured
//! rectangle sets and the query-structure ablation; the engine's hot
//! paths use the layout hierarchy and the sweepline instead.

use odrc_geometry::{Coord, Rect};

const MAX_ENTRIES: usize = 8;
const MAX_DEPTH: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    bounds: Rect,
    /// Entries that do not fit entirely inside one child quadrant (or
    /// any entry while the node is a leaf).
    entries: Vec<(Rect, usize)>,
    children: Option<Box<[Node; 4]>>,
    depth: usize,
}

impl Node {
    fn new(bounds: Rect, depth: usize) -> Node {
        Node {
            bounds,
            entries: Vec::new(),
            children: None,
            depth,
        }
    }

    fn quadrants(&self) -> [Rect; 4] {
        let lo = self.bounds.lo();
        let hi = self.bounds.hi();
        let mx = lo.x + ((hi.x - lo.x) / 2);
        let my = lo.y + ((hi.y - lo.y) / 2);
        [
            Rect::from_coords(lo.x, lo.y, mx, my),
            Rect::from_coords(mx, lo.y, hi.x, my),
            Rect::from_coords(lo.x, my, mx, hi.y),
            Rect::from_coords(mx, my, hi.x, hi.y),
        ]
    }

    fn insert(&mut self, rect: Rect, id: usize) {
        if self.children.is_none() {
            self.entries.push((rect, id));
            if self.entries.len() > MAX_ENTRIES && self.depth < MAX_DEPTH {
                self.split();
            }
            return;
        }
        self.place(rect, id);
    }

    fn split(&mut self) {
        let quads = self.quadrants();
        self.children = Some(Box::new([
            Node::new(quads[0], self.depth + 1),
            Node::new(quads[1], self.depth + 1),
            Node::new(quads[2], self.depth + 1),
            Node::new(quads[3], self.depth + 1),
        ]));
        let entries = std::mem::take(&mut self.entries);
        for (r, id) in entries {
            self.place(r, id);
        }
    }

    /// With children present: push into the unique containing child,
    /// or keep here if the entry straddles quadrants.
    fn place(&mut self, rect: Rect, id: usize) {
        let children = self.children.as_mut().expect("split node");
        for child in children.iter_mut() {
            if child.bounds.contains_rect(rect) {
                child.insert(rect, id);
                return;
            }
        }
        self.entries.push((rect, id));
    }

    fn query(&self, window: Rect, visit: &mut impl FnMut(usize)) {
        if !self.bounds.overlaps(window) {
            return;
        }
        for (r, id) in &self.entries {
            if r.overlaps(window) {
                visit(*id);
            }
        }
        if let Some(children) = &self.children {
            for c in children.iter() {
                c.query(window, visit);
            }
        }
    }
}

/// A point-region quadtree over a fixed universe of rectangles.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Rect;
/// use odrc_infra::quadtree::QuadTree;
///
/// let rects: Vec<Rect> = (0..64)
///     .map(|i| Rect::from_coords(i * 10, 0, i * 10 + 6, 6))
///     .collect();
/// let tree = QuadTree::build(&rects);
/// assert_eq!(tree.query(Rect::from_coords(0, 0, 25, 6)).len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree {
    root: Option<Node>,
    len: usize,
}

impl QuadTree {
    /// Builds the tree over the given rectangles (the universe is their
    /// hull).
    pub fn build(rects: &[Rect]) -> QuadTree {
        let Some(bounds) = rects.iter().copied().reduce(|a, b| a.hull(b)) else {
            return QuadTree { root: None, len: 0 };
        };
        let mut root = Node::new(bounds, 0);
        for (i, &r) in rects.iter().enumerate() {
            root.insert(r, i);
        }
        QuadTree {
            root: Some(root),
            len: rects.len(),
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indices of all rectangles overlapping `window` (closed
    /// semantics), ascending.
    pub fn query(&self, window: Rect) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            root.query(window, &mut |i| out.push(i));
        }
        out.sort_unstable();
        out
    }

    /// Maximum depth of the tree (0 for empty, 1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(n: &Node) -> usize {
            1 + n
                .children
                .as_ref()
                .map(|cs| cs.iter().map(rec).max().unwrap_or(0))
                .unwrap_or(0)
        }
        self.root.as_ref().map(rec).unwrap_or(0)
    }
}

/// Smallest power-of-two style midpoint helper kept for clarity of the
/// quadrant math in tests.
#[allow(dead_code)]
fn mid(a: Coord, b: Coord) -> Coord {
    a + (b - a) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: i32, y0: i32, x1: i32, y1: i32) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty() {
        let t = QuadTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert!(t.query(r(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn single() {
        let t = QuadTree::build(&[r(3, 3, 7, 7)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(r(0, 0, 10, 10)), vec![0]);
        assert_eq!(t.query(r(7, 7, 9, 9)), vec![0]); // touch
        assert!(t.query(r(8, 8, 9, 9)).is_empty());
    }

    #[test]
    fn splits_under_load() {
        let rects: Vec<Rect> = (0..200)
            .map(|i| {
                r(
                    (i % 20) * 10,
                    (i / 20) * 10,
                    (i % 20) * 10 + 4,
                    (i / 20) * 10 + 4,
                )
            })
            .collect();
        let t = QuadTree::build(&rects);
        assert!(t.depth() > 1, "tree should have split");
        assert_eq!(t.query(r(-10, -10, 500, 500)).len(), 200);
    }

    #[test]
    fn straddling_entries_stay_at_parent() {
        // One rect covering everything plus many small ones.
        let mut rects = vec![r(0, 0, 1000, 1000)];
        rects.extend((0..50).map(|i| r(i * 20, 0, i * 20 + 5, 5)));
        let t = QuadTree::build(&rects);
        let hits = t.query(r(500, 500, 510, 510));
        assert_eq!(hits, vec![0]); // only the big one
    }

    proptest! {
        #[test]
        fn query_matches_brute_force(
            specs in proptest::collection::vec(
                (-200i32..200, -200i32..200, 0i32..80, 0i32..80), 0..120),
            wx in -250i32..250, wy in -250i32..250, ww in 0i32..120, wh in 0i32..120,
        ) {
            let rects: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            let t = QuadTree::build(&rects);
            let window = r(wx, wy, wx + ww, wy + wh);
            let brute: Vec<usize> = rects.iter().enumerate()
                .filter(|(_, rc)| rc.overlaps(window))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(t.query(window), brute);
        }
    }
}
