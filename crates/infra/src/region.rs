//! Boolean operations on rectilinear regions.
//!
//! Boolean mask operations are one of the algorithmic foundations of
//! design rule checking (§I of the paper cites them alongside rectangle
//! intersection and range queries), and rules on derived layers — "the
//! NOT CUT result between layers, minimum overlapping area constraints"
//! (§II) — need them at check time.
//!
//! A [`Region`] is a set of points of the plane with rectilinear
//! boundary, stored as disjoint rectangles. Boolean operations run a
//! vertical-slab scanline: the unique x-coordinates of all vertical
//! edges cut the plane into slabs; within one slab each operand's
//! coverage is constant in x, so the combined predicate is evaluated on
//! the y-axis profile and emitted as rectangles, which are then
//! coalesced across slabs.

use odrc_geometry::{Coord, Orientation, Point, Polygon, Rect, WideCoord};

/// A boolean combination of two regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Points in either operand.
    Or,
    /// Points in both operands.
    And,
    /// Points in the first but not the second (the "NOT CUT" result).
    AndNot,
    /// Points in exactly one operand.
    Xor,
}

impl BoolOp {
    #[inline]
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::Or => a || b,
            BoolOp::And => a && b,
            BoolOp::AndNot => a && !b,
            BoolOp::Xor => a ^ b,
        }
    }
}

/// A rectilinear point set stored as disjoint rectangles.
///
/// Rectangles use *half-open* semantics internally (a rectangle covers
/// `[lo.x, hi.x) × [lo.y, hi.y)` of the unit-cell grid), which makes
/// "abutting" unambiguous: two rects sharing an edge cover adjacent,
/// non-overlapping cells and their union is seamless.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Rect;
/// use odrc_infra::region::Region;
///
/// let a = Region::from_rects([Rect::from_coords(0, 0, 10, 10)]);
/// let b = Region::from_rects([Rect::from_coords(5, 0, 15, 10)]);
/// assert_eq!(a.union(&b).area(), 150);
/// assert_eq!(a.intersection(&b).area(), 50);
/// assert_eq!(a.difference(&b).area(), 50);
/// assert_eq!(a.xor(&b).area(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    /// Disjoint rectangles, normalized by the scanline (sorted by
    /// (x, y), maximal vertical runs coalesced horizontally).
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// Builds a region from rectangles (overlaps and degenerates are
    /// normalized away).
    pub fn from_rects(rects: impl IntoIterator<Item = Rect>) -> Region {
        let edges: Vec<VEdge> = rects
            .into_iter()
            .filter(|r| !r.is_degenerate())
            .flat_map(|r| {
                [
                    VEdge {
                        x: r.lo().x,
                        y0: r.lo().y,
                        y1: r.hi().y,
                        delta: 1,
                    },
                    VEdge {
                        x: r.hi().x,
                        y0: r.lo().y,
                        y1: r.hi().y,
                        delta: -1,
                    },
                ]
            })
            .collect();
        scanline(&edges, &[], BoolOp::Or)
    }

    /// Builds a region from rectilinear polygons.
    pub fn from_polygons<'a>(polys: impl IntoIterator<Item = &'a Polygon>) -> Region {
        let mut edges = Vec::new();
        for p in polys {
            collect_vertical_edges(p, &mut edges);
        }
        scanline(&edges, &[], BoolOp::Or)
    }

    /// The normalized rectangle decomposition.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Returns `true` for the empty region.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total area in square dbu.
    pub fn area(&self) -> WideCoord {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// Bounding rectangle, `None` if empty.
    pub fn mbr(&self) -> Option<Rect> {
        self.rects.iter().copied().reduce(|a, b| a.hull(b))
    }

    /// Returns `true` if the unit cell with lower-left corner `p` is
    /// covered (half-open semantics).
    pub fn covers_cell(&self, p: Point) -> bool {
        self.rects
            .iter()
            .any(|r| r.lo().x <= p.x && p.x < r.hi().x && r.lo().y <= p.y && p.y < r.hi().y)
    }

    /// The boolean combination of two regions.
    pub fn combine(&self, other: &Region, op: BoolOp) -> Region {
        let a: Vec<VEdge> = region_edges(self);
        let b: Vec<VEdge> = region_edges(other);
        scanline(&a, &b, op)
    }

    /// Union.
    pub fn union(&self, other: &Region) -> Region {
        self.combine(other, BoolOp::Or)
    }

    /// Intersection.
    pub fn intersection(&self, other: &Region) -> Region {
        self.combine(other, BoolOp::And)
    }

    /// Difference (`self` NOT `other`).
    pub fn difference(&self, other: &Region) -> Region {
        self.combine(other, BoolOp::AndNot)
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Region) -> Region {
        self.combine(other, BoolOp::Xor)
    }

    /// Splits the region into connected components (rectangles touching
    /// along an edge are connected; corner contact is not).
    pub fn components(&self) -> Vec<Region> {
        let n = self.rects.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (self.rects[i], self.rects[j]);
                // Edge adjacency under half-open semantics: closed
                // overlap in one axis with positive overlap in the other.
                let x_touch = a.x_range().overlaps(b.x_range());
                let y_touch = a.y_range().overlaps(b.y_range());
                let x_open = a.x_range().overlaps_open(b.x_range());
                let y_open = a.y_range().overlaps_open(b.y_range());
                if (x_touch && y_open) || (y_touch && x_open) {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> = Default::default();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.rects[i]);
        }
        groups.into_values().map(|rects| Region { rects }).collect()
    }
}

/// A vertical boundary edge with coverage delta (`+1` entering the
/// interior to its right, `-1` leaving).
#[derive(Debug, Clone, Copy)]
struct VEdge {
    x: Coord,
    y0: Coord,
    y1: Coord,
    delta: i32,
}

fn region_edges(r: &Region) -> Vec<VEdge> {
    r.rects
        .iter()
        .flat_map(|r| {
            [
                VEdge {
                    x: r.lo().x,
                    y0: r.lo().y,
                    y1: r.hi().y,
                    delta: 1,
                },
                VEdge {
                    x: r.hi().x,
                    y0: r.lo().y,
                    y1: r.hi().y,
                    delta: -1,
                },
            ]
        })
        .collect()
}

/// Extracts vertical edges of a clockwise rectilinear polygon: an
/// upward edge is a left boundary (+1), a downward edge a right
/// boundary (-1).
fn collect_vertical_edges(p: &Polygon, out: &mut Vec<VEdge>) {
    for e in p.edges() {
        if e.orientation() != Orientation::Vertical {
            continue;
        }
        let span = e.span();
        let delta = if e.interior_sign() > 0 { 1 } else { -1 };
        out.push(VEdge {
            x: e.track(),
            y0: span.lo(),
            y1: span.hi(),
            delta,
        });
    }
}

/// The slab scanline over two operand edge sets.
fn scanline(a: &[VEdge], b: &[VEdge], op: BoolOp) -> Region {
    // Unique event xs across both operands.
    let mut xs: Vec<Coord> = a.iter().chain(b.iter()).map(|e| e.x).collect();
    xs.sort_unstable();
    xs.dedup();
    if xs.is_empty() {
        return Region::new();
    }
    // Unique y breakpoints.
    let mut ys: Vec<Coord> = a
        .iter()
        .chain(b.iter())
        .flat_map(|e| [e.y0, e.y1])
        .collect();
    ys.sort_unstable();
    ys.dedup();
    let y_index = |y: Coord| ys.binary_search(&y).expect("collected above");

    // Coverage counters per y-cell (between consecutive breakpoints).
    let cells = ys.len().saturating_sub(1);
    let mut cov_a = vec![0i32; cells];
    let mut cov_b = vec![0i32; cells];

    // Sort edges by x for incremental application.
    let mut ea: Vec<&VEdge> = a.iter().collect();
    let mut eb: Vec<&VEdge> = b.iter().collect();
    ea.sort_unstable_by_key(|e| e.x);
    eb.sort_unstable_by_key(|e| e.x);
    let (mut ia, mut ib) = (0usize, 0usize);

    // Open rectangles carried across slabs: (y0 index, y1 index) -> x
    // where the run began.
    let mut open: std::collections::BTreeMap<(usize, usize), Coord> = Default::default();
    let mut out: Vec<Rect> = Vec::new();

    for (k, &x) in xs.iter().enumerate() {
        // Apply all edges at this x.
        while ia < ea.len() && ea[ia].x == x {
            let e = ea[ia];
            for c in cov_a[y_index(e.y0)..y_index(e.y1)].iter_mut() {
                *c += e.delta;
            }
            ia += 1;
        }
        while ib < eb.len() && eb[ib].x == x {
            let e = eb[ib];
            for c in cov_b[y_index(e.y0)..y_index(e.y1)].iter_mut() {
                *c += e.delta;
            }
            ib += 1;
        }
        // Predicate intervals for the slab starting at x.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        if k + 1 < xs.len() {
            let mut run: Option<usize> = None;
            for ci in 0..cells {
                let covered = op.eval(cov_a[ci] > 0, cov_b[ci] > 0);
                match (covered, run) {
                    (true, None) => run = Some(ci),
                    (false, Some(start)) => {
                        intervals.push((start, ci));
                        run = None;
                    }
                    _ => {}
                }
            }
            if let Some(start) = run {
                intervals.push((start, cells));
            }
        }
        // Close open runs that do not continue; open new ones.
        let mut next_open: std::collections::BTreeMap<(usize, usize), Coord> = Default::default();
        for &iv in &intervals {
            match open.remove(&iv) {
                Some(started) => {
                    next_open.insert(iv, started);
                }
                None => {
                    next_open.insert(iv, x);
                }
            }
        }
        for ((y0i, y1i), started) in open {
            out.push(Rect::from_coords(started, ys[y0i], x, ys[y1i]));
        }
        open = next_open;
    }
    debug_assert!(open.is_empty(), "scanline left open rectangles");
    out.sort_unstable();
    Region { rects: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_region() {
        let e = Region::new();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert_eq!(e.mbr(), None);
        assert!(e.union(&e).is_empty());
    }

    #[test]
    fn single_rect_identity() {
        let a = Region::from_rects([r(0, 0, 10, 20)]);
        assert_eq!(a.area(), 200);
        assert_eq!(a.rects(), &[r(0, 0, 10, 20)]);
        assert_eq!(a.mbr(), Some(r(0, 0, 10, 20)));
    }

    #[test]
    fn degenerate_rects_dropped() {
        let a = Region::from_rects([r(0, 0, 0, 10), r(5, 5, 9, 5)]);
        assert!(a.is_empty());
    }

    #[test]
    fn overlapping_rects_normalize() {
        let a = Region::from_rects([r(0, 0, 10, 10), r(5, 0, 15, 10)]);
        assert_eq!(a.area(), 150);
        // Same y-profile coalesces into one rectangle.
        assert_eq!(a.rects(), &[r(0, 0, 15, 10)]);
    }

    #[test]
    fn abutting_rects_fuse() {
        let a = Region::from_rects([r(0, 0, 10, 10), r(10, 0, 20, 10)]);
        assert_eq!(a.rects(), &[r(0, 0, 20, 10)]);
        let b = Region::from_rects([r(0, 0, 10, 10), r(0, 10, 10, 20)]);
        assert_eq!(b.rects(), &[r(0, 0, 10, 20)]);
    }

    #[test]
    fn boolean_ops_known_values() {
        let a = Region::from_rects([r(0, 0, 10, 10)]);
        let b = Region::from_rects([r(5, 5, 15, 15)]);
        assert_eq!(a.union(&b).area(), 175);
        assert_eq!(a.intersection(&b).area(), 25);
        assert_eq!(a.intersection(&b).rects(), &[r(5, 5, 10, 10)]);
        assert_eq!(a.difference(&b).area(), 75);
        assert_eq!(b.difference(&a).area(), 75);
        assert_eq!(a.xor(&b).area(), 150);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let a = Region::from_rects([r(0, 0, 10, 10)]);
        let b = Region::from_rects([r(20, 20, 30, 30)]);
        assert!(a.intersection(&b).is_empty());
        assert_eq!(a.union(&b).area(), 200);
    }

    #[test]
    fn polygon_region_l_shape() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 30),
            Point::new(10, 30),
            Point::new(10, 10),
            Point::new(30, 10),
            Point::new(30, 0),
        ])
        .unwrap();
        let region = Region::from_polygons([&l]);
        assert_eq!(region.area(), l.area());
        // Not-cut against a blocking layer.
        let cut = Region::from_rects([r(0, 0, 30, 5)]);
        let kept = region.difference(&cut);
        assert_eq!(kept.area(), l.area() - 150);
    }

    #[test]
    fn components_split_and_touch() {
        let reg = Region::from_rects([r(0, 0, 10, 10), r(10, 0, 20, 10), r(50, 50, 60, 60)]);
        // First two fuse at from_rects time; still 2 components.
        let comps = reg.components();
        assert_eq!(comps.len(), 2);
        let mut areas: Vec<i64> = comps.iter().map(|c| c.area()).collect();
        areas.sort_unstable();
        assert_eq!(areas, vec![100, 200]);
    }

    #[test]
    fn corner_contact_is_not_connected() {
        // from_rects would coalesce only edge-adjacent same-profile
        // rects; diagonal corner contact stays two components.
        let reg = Region::from_rects([r(0, 0, 10, 10), r(10, 10, 20, 20)]);
        assert_eq!(reg.components().len(), 2);
    }

    #[test]
    fn covers_cell_half_open() {
        let a = Region::from_rects([r(0, 0, 10, 10)]);
        assert!(a.covers_cell(Point::new(0, 0)));
        assert!(a.covers_cell(Point::new(9, 9)));
        assert!(!a.covers_cell(Point::new(10, 0)));
        assert!(!a.covers_cell(Point::new(0, 10)));
    }

    fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
        proptest::collection::vec(
            (-30i32..30, -30i32..30, 1i32..20, 1i32..20)
                .prop_map(|(x, y, w, h)| r(x, y, x + w, y + h)),
            0..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ops_match_cellwise_evaluation(ra in arb_rects(8), rb in arb_rects(8)) {
            let a = Region::from_rects(ra.clone());
            let b = Region::from_rects(rb.clone());
            let in_set = |rs: &[Rect], p: Point| {
                rs.iter().any(|r| r.lo().x <= p.x && p.x < r.hi().x
                               && r.lo().y <= p.y && p.y < r.hi().y)
            };
            for op in [BoolOp::Or, BoolOp::And, BoolOp::AndNot, BoolOp::Xor] {
                let c = a.combine(&b, op);
                // Sample the lattice: each covered cell must match the
                // pointwise predicate.
                for x in -35i32..55 {
                    for y in -35i32..55 {
                        let p = Point::new(x, y);
                        let expect = op.eval(in_set(&ra, p), in_set(&rb, p));
                        prop_assert_eq!(c.covers_cell(p), expect,
                            "op {:?} at {}", op, p);
                    }
                }
            }
        }

        #[test]
        fn union_area_bounds(ra in arb_rects(6), rb in arb_rects(6)) {
            let a = Region::from_rects(ra);
            let b = Region::from_rects(rb);
            let u = a.union(&b);
            prop_assert!(u.area() <= a.area() + b.area());
            prop_assert!(u.area() >= a.area().max(b.area()));
            // Inclusion-exclusion.
            prop_assert_eq!(u.area() + a.intersection(&b).area(), a.area() + b.area());
        }

        #[test]
        fn polygon_region_preserves_area(heights in proptest::collection::vec(1i32..15, 2..7)) {
            // A histogram polygon: its region decomposition must have
            // exactly the Shoelace area.
            let mut hs: Vec<i32> = Vec::new();
            for h in heights {
                match hs.last() {
                    Some(&prev) if prev == h => hs.push(h + 1),
                    _ => hs.push(h),
                }
            }
            let mut verts = vec![Point::new(0, 0)];
            let mut x = 0;
            for (i, h) in hs.iter().enumerate() {
                verts.push(Point::new(x, *h));
                x += 4;
                verts.push(Point::new(x, *h));
                if i + 1 == hs.len() {
                    verts.push(Point::new(x, 0));
                }
            }
            let poly = Polygon::new(verts).unwrap();
            let region = Region::from_polygons([&poly]);
            prop_assert_eq!(region.area(), poly.area());
            // And every covered cell is inside the polygon.
            let mbr = poly.mbr();
            for cx in mbr.lo().x..mbr.hi().x {
                for cy in mbr.lo().y..mbr.hi().y {
                    let p = Point::new(cx, cy);
                    let cell_inside = poly.contains(p)
                        && poly.contains(Point::new(cx + 1, cy))
                        && poly.contains(Point::new(cx, cy + 1))
                        && poly.contains(Point::new(cx + 1, cy + 1));
                    prop_assert_eq!(region.covers_cell(p), cell_inside, "at {}", p);
                }
            }
        }

        #[test]
        fn output_rects_are_disjoint(ra in arb_rects(8)) {
            let a = Region::from_rects(ra);
            let rects = a.rects();
            for i in 0..rects.len() {
                for j in i + 1..rects.len() {
                    prop_assert!(!rects[i].overlaps_open(rects[j]));
                }
            }
        }
    }
}
