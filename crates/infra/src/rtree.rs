//! A bulk-loaded R-tree.
//!
//! The paper lists "hierarchies of bounding volumes like \[the\] r-tree
//! and its variants" among the data-structure foundations of design
//! rule checking (§I). This is a static R-tree built with the
//! Sort-Tile-Recursive (STR) packing algorithm: entries are tiled into
//! vertical slices by x, sorted by y within each slice, and packed into
//! nodes of fixed fan-out, recursively.
//!
//! The engine's object scenes use the layout's own hierarchy as their
//! BVH; the R-tree serves as the general-purpose spatial index for
//! unstructured rectangle sets and as an ablation point against the
//! sweepline (see the ablation bench).

use odrc_geometry::Rect;

const FANOUT: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mbr: Rect,
        /// (rect, payload index into the original input).
        entries: Vec<(Rect, usize)>,
    },
    Inner {
        mbr: Rect,
        children: Vec<Node>,
    },
}

impl Node {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }
}

/// A static R-tree over rectangles, queried by window overlap.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Rect;
/// use odrc_infra::rtree::RTree;
///
/// let rects: Vec<Rect> = (0..100)
///     .map(|i| Rect::from_coords(i * 10, 0, i * 10 + 5, 5))
///     .collect();
/// let tree = RTree::bulk_load(&rects);
/// let hits = tree.query(Rect::from_coords(22, 0, 38, 5));
/// assert_eq!(hits.len(), 2); // rects 2 and 3
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Builds the tree with STR bulk loading.
    pub fn bulk_load(rects: &[Rect]) -> RTree {
        if rects.is_empty() {
            return RTree { root: None, len: 0 };
        }
        let mut entries: Vec<(Rect, usize)> = rects
            .iter()
            .copied()
            .enumerate()
            .map(|(i, r)| (r, i))
            .collect();
        // STR: slice count s = ceil(sqrt(n / fanout)).
        let leaves = build_leaves(&mut entries);
        let root = build_upward(leaves);
        RTree {
            root: Some(root),
            len: rects.len(),
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indices of all rectangles overlapping `window` (closed
    /// semantics), in ascending order.
    pub fn query(&self, window: Rect) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            query_node(root, window, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Visits the indices of all rectangles overlapping `window`.
    pub fn query_into(&self, window: Rect, visit: &mut dyn FnMut(usize)) {
        if let Some(root) = &self.root {
            let mut f = |i: usize| visit(i);
            query_node_fn(root, window, &mut f);
        }
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => 1 + depth(&children[0]),
            }
        }
        self.root.as_ref().map(depth).unwrap_or(0)
    }
}

fn build_leaves(entries: &mut [(Rect, usize)]) -> Vec<Node> {
    let n = entries.len();
    let leaf_count = n.div_ceil(FANOUT);
    let slices = (leaf_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slices.max(1));
    entries.sort_unstable_by_key(|(r, _)| (r.lo().x, r.lo().y));
    let mut leaves = Vec::with_capacity(leaf_count);
    for slice in entries.chunks_mut(per_slice.max(1)) {
        slice.sort_unstable_by_key(|(r, _)| (r.lo().y, r.lo().x));
        for group in slice.chunks(FANOUT) {
            let mbr = group
                .iter()
                .map(|(r, _)| *r)
                .reduce(|a, b| a.hull(b))
                .expect("non-empty group");
            leaves.push(Node::Leaf {
                mbr,
                entries: group.to_vec(),
            });
        }
    }
    leaves
}

fn build_upward(mut level: Vec<Node>) -> Node {
    while level.len() > 1 {
        // Pack by x then y of child MBRs (STR again on the node level).
        level.sort_unstable_by_key(|n| (n.mbr().lo().x, n.mbr().lo().y));
        let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
        for group in level.chunks(FANOUT) {
            let mbr = group
                .iter()
                .map(|n| n.mbr())
                .reduce(|a, b| a.hull(b))
                .expect("non-empty group");
            next.push(Node::Inner {
                mbr,
                children: group.to_vec(),
            });
        }
        level = next;
    }
    level.into_iter().next().expect("at least one node")
}

fn query_node(node: &Node, window: Rect, out: &mut Vec<usize>) {
    query_node_fn(node, window, &mut |i| out.push(i));
}

fn query_node_fn(node: &Node, window: Rect, visit: &mut impl FnMut(usize)) {
    match node {
        Node::Leaf { mbr, entries } => {
            if !mbr.overlaps(window) {
                return;
            }
            for (r, i) in entries {
                if r.overlaps(window) {
                    visit(*i);
                }
            }
        }
        Node::Inner { mbr, children } => {
            if !mbr.overlaps(window) {
                return;
            }
            for c in children {
                query_node_fn(c, window, visit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: i32, y0: i32, x1: i32, y1: i32) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.query(r(-100, -100, 100, 100)).is_empty());
    }

    #[test]
    fn single_rect() {
        let t = RTree::bulk_load(&[r(0, 0, 10, 10)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.query(r(5, 5, 6, 6)), vec![0]);
        assert!(t.query(r(20, 20, 30, 30)).is_empty());
        // Touching counts (closed semantics).
        assert_eq!(t.query(r(10, 10, 20, 20)), vec![0]);
    }

    #[test]
    fn grid_queries() {
        let rects: Vec<Rect> = (0..10)
            .flat_map(|i| (0..10).map(move |j| r(i * 20, j * 20, i * 20 + 10, j * 20 + 10)))
            .collect();
        let t = RTree::bulk_load(&rects);
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 2);
        // Window [75,125]² overlaps cell columns/rows 4, 5, 6 (cells at
        // [80,90], [100,110], [120,130]): a 3x3 block.
        let hits = t.query(r(75, 75, 125, 125));
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn visitor_matches_query() {
        let rects: Vec<Rect> = (0..50).map(|i| r(i, i, i + 10, i + 10)).collect();
        let t = RTree::bulk_load(&rects);
        let w = r(20, 20, 30, 30);
        let mut visited = Vec::new();
        t.query_into(w, &mut |i| visited.push(i));
        visited.sort_unstable();
        assert_eq!(visited, t.query(w));
    }

    proptest! {
        #[test]
        fn query_matches_brute_force(
            specs in proptest::collection::vec(
                (-200i32..200, -200i32..200, 0i32..60, 0i32..60), 0..150),
            wx in -200i32..200, wy in -200i32..200, ww in 0i32..100, wh in 0i32..100,
        ) {
            let rects: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            let t = RTree::bulk_load(&rects);
            let window = r(wx, wy, wx + ww, wy + wh);
            let brute: Vec<usize> = rects.iter().enumerate()
                .filter(|(_, rc)| rc.overlaps(window))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(t.query(window), brute);
        }

        #[test]
        fn height_is_logarithmic(n in 1usize..2000) {
            let rects: Vec<Rect> = (0..n as i32).map(|i| r(i, 0, i + 1, 1)).collect();
            let t = RTree::bulk_load(&rects);
            // Fanout 8: height bounded by log8(n) + small slack from STR
            // slice rounding.
            let bound = ((n as f64).log(8.0).ceil() as usize).max(1) + 2;
            prop_assert!(t.height() <= bound, "height {} for n {}", t.height(), n);
        }
    }
}
