//! A generic append-only record log with crash-safe framing.
//!
//! Several subsystems need the same on-disk shape: a file a process
//! can append to and be killed over at any byte offset, where a later
//! open recovers every record that was fully written and drops a torn
//! or corrupt tail. The engine's checkpoint journal pioneered the
//! idiom (magic header, self-checksummed records, lenient open that
//! heals the file to its longest valid prefix via
//! [`crate::write_atomic`]); this module factors it out so the serve
//! layer's durable job journal — and anything after it — shares one
//! audited implementation instead of re-rolling the recovery logic.
//!
//! # Format
//!
//! ```text
//! file   := magic(8) record*
//! record := len:u32le payload[len] fnv1a64(payload):u64le
//! ```
//!
//! The payload is opaque to the log; callers bring their own encoding
//! (binary for the checkpoint journal, JSON for the job journal).
//! Appends are `write_all` + `sync_data`, so a record either survives
//! a kill in full or is dropped in full by the next lenient open.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::atomic_io::write_atomic;

/// FNV-1a over a byte slice — the same cheap, dependency-free content
/// hash the result cache uses for its signatures.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bytes of framing around each payload: length prefix + checksum.
const FRAME_OVERHEAD: usize = 4 + 8;

/// An append-only, checksummed record log. See the [module
/// docs](self) for the format and recovery contract.
#[derive(Debug)]
pub struct RecordLog {
    path: PathBuf,
    file: File,
}

impl RecordLog {
    /// Opens (or creates) the log at `path`, returning the append
    /// handle and every intact record's payload in file order.
    ///
    /// The open is *lenient*: a wrong magic, a corrupt record, or a
    /// torn tail drops everything from the first bad byte onward, and
    /// the file is atomically rewritten to its longest valid prefix so
    /// one bad tail never poisons future appends.
    pub fn open(path: &Path, magic: &[u8; 8]) -> io::Result<(RecordLog, Vec<Vec<u8>>)> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (records, valid_len) = parse(&buf, magic);
        if valid_len != buf.len() || buf.is_empty() {
            let mut prefix = Vec::with_capacity(valid_len.max(magic.len()));
            if valid_len == 0 {
                prefix.extend_from_slice(magic);
            } else {
                prefix.extend_from_slice(&buf[..valid_len]);
            }
            write_atomic(path, &prefix)?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok((
            RecordLog {
                path: path.to_path_buf(),
                file,
            },
            records,
        ))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames one payload as it would appear on disk (length prefix,
    /// payload, trailing checksum). Exposed so fault-injection tests
    /// can write deliberately torn records via [`RecordLog::append_raw`].
    pub fn frame(payload: &[u8]) -> Vec<u8> {
        let mut rec = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        rec
    }

    /// Appends one record and flushes it to stable storage: a kill
    /// immediately after still finds the record on the next open.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_raw(&RecordLog::frame(payload))
    }

    /// Writes raw bytes verbatim (no framing) and syncs. This exists
    /// for fault injection — writing half a frame models a process
    /// killed mid-append — and for nothing else.
    pub fn append_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.sync_data()
    }

    /// Atomically replaces the log's contents with `payloads`
    /// (compaction). The append handle is re-opened on the new file.
    pub fn rewrite<'a>(
        &mut self,
        magic: &[u8; 8],
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(magic);
        for p in payloads {
            out.extend_from_slice(&RecordLog::frame(p));
        }
        write_atomic(&self.path, &out)?;
        self.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// Parses `buf` leniently: intact record payloads in order, plus the
/// byte length of the longest valid prefix (0 if the magic is wrong).
fn parse(buf: &[u8], magic: &[u8; 8]) -> (Vec<Vec<u8>>, usize) {
    if buf.len() < magic.len() || &buf[..magic.len()] != magic {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = magic.len();
    let mut valid = pos;
    while buf.len() - pos >= FRAME_OVERHEAD {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let Some(end) = pos.checked_add(4 + len + 8) else {
            break;
        };
        if end > buf.len() {
            break; // torn tail
        }
        let payload = &buf[pos + 4..pos + 4 + len];
        let stored = u64::from_le_bytes(buf[pos + 4 + len..end].try_into().unwrap());
        if fnv1a64(payload) != stored {
            break; // corrupt record
        }
        records.push(payload.to_vec());
        pos = end;
        valid = pos;
    }
    (records, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"TESTLOG1";

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-rlog-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("log.bin")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn appends_and_replays_in_order() {
        let path = temp("order");
        {
            let (mut log, records) = RecordLog::open(&path, MAGIC).expect("open");
            assert!(records.is_empty());
            log.append(b"alpha").expect("append");
            log.append(b"").expect("append empty");
            log.append(b"gamma").expect("append");
        }
        let (_, records) = RecordLog::open(&path, MAGIC).expect("reopen");
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let path = temp("torn");
        {
            let (mut log, _) = RecordLog::open(&path, MAGIC).expect("open");
            log.append(b"keep").expect("append");
            log.append(b"lose").expect("append");
        }
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        let (_, records) = RecordLog::open(&path, MAGIC).expect("lenient open");
        assert_eq!(records, vec![b"keep".to_vec()]);
        // The heal rewrote the file: a byte-level reopen parses fully.
        let healed = std::fs::read(&path).expect("read healed");
        let (reparsed, valid) = parse(&healed, MAGIC);
        assert_eq!(valid, healed.len());
        assert_eq!(reparsed.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let path = temp("corrupt");
        {
            let (mut log, _) = RecordLog::open(&path, MAGIC).expect("open");
            log.append(b"first").expect("append");
            log.append(b"second").expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload byte of the first record: both records drop
        // (the log cannot trust framing after a corrupt length/body).
        bytes[MAGIC.len() + 5] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let (mut log, records) = RecordLog::open(&path, MAGIC).expect("lenient open");
        assert!(records.is_empty());
        log.append(b"fresh").expect("append after heal");
        let (_, records) = RecordLog::open(&path, MAGIC).expect("reopen");
        assert_eq!(records, vec![b"fresh".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn wrong_magic_heals_to_empty() {
        let path = temp("magic");
        std::fs::write(&path, b"not a log file").expect("write garbage");
        let (_, records) = RecordLog::open(&path, MAGIC).expect("open");
        assert!(records.is_empty());
        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(&bytes, MAGIC);
        cleanup(&path);
    }

    #[test]
    fn torn_half_frame_from_append_raw_is_recoverable() {
        let path = temp("halfframe");
        {
            let (mut log, _) = RecordLog::open(&path, MAGIC).expect("open");
            log.append(b"whole").expect("append");
            let framed = RecordLog::frame(b"torn-record-payload");
            log.append_raw(&framed[..framed.len() / 2]).expect("tear");
        }
        let (mut log, records) = RecordLog::open(&path, MAGIC).expect("lenient open");
        assert_eq!(records, vec![b"whole".to_vec()]);
        log.append(b"after").expect("append after heal");
        let (_, records) = RecordLog::open(&path, MAGIC).expect("reopen");
        assert_eq!(records, vec![b"whole".to_vec(), b"after".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn rewrite_compacts_in_place() {
        let path = temp("rewrite");
        let (mut log, _) = RecordLog::open(&path, MAGIC).expect("open");
        for payload in [b"a".as_slice(), b"b", b"c"] {
            log.append(payload).expect("append");
        }
        log.rewrite(MAGIC, [b"b".as_slice(), b"c"])
            .expect("rewrite");
        log.append(b"d").expect("append after rewrite");
        drop(log);
        let (_, records) = RecordLog::open(&path, MAGIC).expect("reopen");
        assert_eq!(records, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn hostile_length_prefix_does_not_overallocate() {
        let path = temp("hostile");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"short");
        std::fs::write(&path, &bytes).expect("write");
        let (_, records) = RecordLog::open(&path, MAGIC).expect("open");
        assert!(records.is_empty(), "absurd length must read as a torn tail");
        cleanup(&path);
    }
}
