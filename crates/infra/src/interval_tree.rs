//! The interval tree of §IV-D.
//!
//! > "An interval tree is a binary search tree that stores an interval
//! > `I` in the highest node satisfying `u ∈ I`, where `u` is the key of
//! > this node. Specifically, every node of the interval tree maintains
//! > its intervals in two separate lists: one is sorted by left
//! > endpoints, and the other is sorted by right endpoints."
//!
//! The tree here is built over a *static key domain* — the sorted unique
//! interval endpoints, which the sweepline knows in advance — so the BST
//! is perfectly balanced without rotations. Intervals are inserted and
//! removed dynamically as the sweepline advances.

use odrc_geometry::{Coord, Interval};

/// A value stored alongside its interval; typically an index identifying
/// the rectangle the interval belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry<T> {
    interval: Interval,
    payload: T,
}

#[derive(Debug, Clone)]
struct Node<T> {
    key: Coord,
    /// Entries containing `key`, sorted ascending by `interval.lo()`.
    by_lo: Vec<Entry<T>>,
    /// Entries containing `key`, sorted ascending by `interval.hi()`.
    by_hi: Vec<Entry<T>>,
    left: Option<usize>,
    right: Option<usize>,
}

/// An interval tree over a fixed key domain supporting dynamic insertion,
/// removal, and overlap queries.
///
/// # Examples
///
/// ```
/// use odrc_geometry::Interval;
/// use odrc_infra::IntervalTree;
///
/// let mut tree = IntervalTree::with_domain(vec![0, 5, 10, 15, 20]);
/// tree.insert(Interval::new(0, 10), 'a');
/// tree.insert(Interval::new(12, 20), 'b');
///
/// let mut hits = tree.query(Interval::new(8, 13));
/// hits.sort();
/// assert_eq!(hits, vec!['a', 'b']);
///
/// tree.remove(Interval::new(0, 10), &'a');
/// assert_eq!(tree.query(Interval::new(8, 13)), vec!['b']);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalTree<T> {
    nodes: Vec<Node<T>>,
    root: Option<usize>,
    len: usize,
}

impl<T: Clone + PartialEq> IntervalTree<T> {
    /// Builds a balanced tree over the given key domain.
    ///
    /// Keys are deduplicated and sorted; every interval later inserted
    /// must have both endpoints in the domain (this is naturally true
    /// for the sweepline, which collects all MBR x-coordinates first).
    pub fn with_domain(mut keys: Vec<Coord>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        let mut nodes = Vec::with_capacity(keys.len());
        let root = Self::build(&keys, &mut nodes);
        IntervalTree {
            nodes,
            root,
            len: 0,
        }
    }

    fn build(keys: &[Coord], nodes: &mut Vec<Node<T>>) -> Option<usize> {
        if keys.is_empty() {
            return None;
        }
        let mid = keys.len() / 2;
        let left = Self::build(&keys[..mid], nodes);
        let right = Self::build(&keys[mid + 1..], nodes);
        nodes.push(Node {
            key: keys[mid],
            by_lo: Vec::new(),
            by_hi: Vec::new(),
            left,
            right,
        });
        Some(nodes.len() - 1)
    }

    /// Number of intervals currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no intervals are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `interval` with an identifying `payload`.
    ///
    /// # Panics
    ///
    /// Panics if the interval does not contain any domain key reachable
    /// on its search path (i.e. its endpoints were not part of the
    /// domain the tree was built with).
    pub fn insert(&mut self, interval: Interval, payload: T) {
        let mut cur = self.root;
        while let Some(i) = cur {
            let node = &mut self.nodes[i];
            if interval.hi() < node.key {
                cur = node.left;
            } else if interval.lo() > node.key {
                cur = node.right;
            } else {
                let entry = Entry { interval, payload };
                let lo_pos = node
                    .by_lo
                    .partition_point(|e| e.interval.lo() <= interval.lo());
                node.by_lo.insert(lo_pos, entry.clone());
                let hi_pos = node
                    .by_hi
                    .partition_point(|e| e.interval.hi() <= interval.hi());
                node.by_hi.insert(hi_pos, entry);
                self.len += 1;
                return;
            }
        }
        panic!("interval {interval} has no containing key in the tree domain");
    }

    /// Removes one stored copy of `interval` with the given payload.
    ///
    /// Returns `true` if a matching entry was found and removed.
    pub fn remove(&mut self, interval: Interval, payload: &T) -> bool {
        let mut cur = self.root;
        while let Some(i) = cur {
            let node = &mut self.nodes[i];
            if interval.hi() < node.key {
                cur = node.left;
            } else if interval.lo() > node.key {
                cur = node.right;
            } else {
                let found = remove_entry(&mut node.by_lo, interval, payload);
                if found {
                    remove_entry(&mut node.by_hi, interval, payload);
                    self.len -= 1;
                }
                return found;
            }
        }
        false
    }

    /// Collects the payloads of all stored intervals overlapping `q`
    /// (closed-interval semantics: touching counts).
    pub fn query(&self, q: Interval) -> Vec<T> {
        let mut out = Vec::new();
        self.query_into(q, &mut |p| out.push(p.clone()));
        out
    }

    /// Visits the payloads of all stored intervals overlapping `q`.
    ///
    /// The visitor form avoids allocation in the sweepline inner loop.
    pub fn query_into(&self, q: Interval, visit: &mut dyn FnMut(&T)) {
        self.query_node(self.root, q, visit);
    }

    fn query_node(&self, cur: Option<usize>, q: Interval, visit: &mut dyn FnMut(&T)) {
        let Some(i) = cur else { return };
        let node = &self.nodes[i];
        if q.hi() < node.key {
            // Stored intervals contain node.key > q.hi, so they overlap q
            // iff their lo <= q.hi; by_lo is sorted ascending by lo.
            for e in &node.by_lo {
                if e.interval.lo() > q.hi() {
                    break;
                }
                visit(&e.payload);
            }
            self.query_node(node.left, q, visit);
        } else if q.lo() > node.key {
            // Stored intervals contain node.key < q.lo, so they overlap q
            // iff their hi >= q.lo; walk by_hi from the largest hi down.
            for e in node.by_hi.iter().rev() {
                if e.interval.hi() < q.lo() {
                    break;
                }
                visit(&e.payload);
            }
            self.query_node(node.right, q, visit);
        } else {
            // q contains the key: every stored interval overlaps q.
            for e in &node.by_lo {
                visit(&e.payload);
            }
            self.query_node(node.left, q, visit);
            self.query_node(node.right, q, visit);
        }
    }
}

fn remove_entry<T: PartialEq>(list: &mut Vec<Entry<T>>, interval: Interval, payload: &T) -> bool {
    if let Some(pos) = list
        .iter()
        .position(|e| e.interval == interval && &e.payload == payload)
    {
        list.remove(pos);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(lo: Coord, hi: Coord) -> Interval {
        Interval::new(lo, hi)
    }

    fn tree_with(intervals: &[Interval]) -> IntervalTree<usize> {
        let mut domain = Vec::new();
        for i in intervals {
            domain.push(i.lo());
            domain.push(i.hi());
        }
        let mut t = IntervalTree::with_domain(domain);
        for (idx, &i) in intervals.iter().enumerate() {
            t.insert(i, idx);
        }
        t
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let t: IntervalTree<usize> = IntervalTree::with_domain(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.query(iv(0, 100)), Vec::<usize>::new());
    }

    #[test]
    fn basic_insert_query_remove() {
        let ivs = [iv(0, 10), iv(5, 15), iv(20, 30)];
        let mut t = tree_with(&ivs);
        assert_eq!(t.len(), 3);

        let mut hits = t.query(iv(8, 12));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);

        assert!(t.remove(iv(0, 10), &0));
        assert!(!t.remove(iv(0, 10), &0)); // already gone
        assert_eq!(t.query(iv(8, 12)), vec![1]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn touching_counts_as_overlap() {
        let t = tree_with(&[iv(0, 10)]);
        assert_eq!(t.query(iv(10, 20)), vec![0]);
        assert_eq!(t.query(iv(-5, 0)), vec![0]);
        assert!(t.query(iv(11, 20)).is_empty());
    }

    #[test]
    fn duplicate_intervals_distinct_payloads() {
        let mut t = IntervalTree::with_domain(vec![0, 10]);
        t.insert(iv(0, 10), 1usize);
        t.insert(iv(0, 10), 2usize);
        let mut hits = t.query(iv(5, 5));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert!(t.remove(iv(0, 10), &1));
        assert_eq!(t.query(iv(5, 5)), vec![2]);
    }

    #[test]
    #[should_panic(expected = "no containing key")]
    fn insert_outside_domain_panics() {
        let mut t = IntervalTree::with_domain(vec![0, 10]);
        t.insert(iv(20, 30), 0usize);
    }

    #[test]
    fn query_through_subtrees() {
        // Many disjoint intervals; query windows spanning several.
        let ivs: Vec<Interval> = (0..20).map(|i| iv(i * 10, i * 10 + 5)).collect();
        let t = tree_with(&ivs);
        let mut hits = t.query(iv(23, 87));
        hits.sort_unstable();
        // Overlapping [23,87]: intervals 3..=8 ([30,35]..[80,85]) plus
        // interval 2 ([20,25]) since 23 <= 25.
        assert_eq!(hits, vec![2, 3, 4, 5, 6, 7, 8]);
    }

    proptest! {
        #[test]
        fn query_matches_brute_force(
            spans in proptest::collection::vec((0i32..200, 1i32..40), 1..60),
            qlo in 0i32..200, qlen in 0i32..60,
        ) {
            let ivs: Vec<Interval> = spans.iter().map(|&(l, w)| iv(l, l + w)).collect();
            let t = tree_with(&ivs);
            let q = iv(qlo, qlo + qlen);
            let mut fast = t.query(q);
            fast.sort_unstable();
            let brute: Vec<usize> = ivs.iter().enumerate()
                .filter(|(_, i)| i.overlaps(q))
                .map(|(idx, _)| idx)
                .collect();
            prop_assert_eq!(fast, brute);
        }

        #[test]
        fn removal_keeps_remainder_consistent(
            spans in proptest::collection::vec((0i32..100, 1i32..30), 2..40),
            remove_mask in proptest::collection::vec(proptest::bool::ANY, 2..40),
        ) {
            let ivs: Vec<Interval> = spans.iter().map(|&(l, w)| iv(l, l + w)).collect();
            let mut t = tree_with(&ivs);
            let mut kept = Vec::new();
            for (idx, &i) in ivs.iter().enumerate() {
                if remove_mask.get(idx).copied().unwrap_or(false) {
                    prop_assert!(t.remove(i, &idx));
                } else {
                    kept.push(idx);
                }
            }
            let q = iv(0, 200);
            let mut hits = t.query(q);
            hits.sort_unstable();
            prop_assert_eq!(hits, kept);
        }
    }
}
