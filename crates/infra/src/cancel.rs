//! Cooperative run cancellation.
//!
//! Full-chip decks run for minutes; the dominant run-level failure mode
//! is not a bad kernel (the device layer handles those) but a killed or
//! over-budget *process*. [`CancelToken`] is the one signal threaded
//! through the engine's issue/collect window, the host executor, the
//! recovery drain loop, and the device layer: anything that observes
//! `cancelled()` stops starting new work, drains what is already in
//! flight, and returns partial-but-valid results.
//!
//! Three producers can trip a token:
//!
//! * an explicit [`CancelToken::cancel`] call (tests, embedding code),
//! * a wall-clock deadline ([`CancelToken::with_deadline`]),
//! * the process-wide SIGINT/SIGTERM flag set by
//!   [`install_signal_handlers`], which tokens opt into via
//!   [`CancelToken::linked_to_signals`].
//!
//! Cancellation is *cooperative and monotone*: once a token reports a
//! reason it keeps reporting the same reason, and no API forcibly stops
//! a running task. The engine checks the token only at rule boundaries
//! — the same granularity as the checkpoint journal — so a cancelled
//! run never tears a rule's result set in half.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The process received SIGINT/SIGTERM, or `cancel()` was called.
    Interrupt,
    /// The `--deadline` wall-clock budget elapsed.
    Deadline,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Interrupt => f.write_str("interrupted"),
            CancelReason::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

const STATE_LIVE: u8 = 0;
const STATE_INTERRUPT: u8 = 1;
const STATE_DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// Latched cancellation state; first writer wins.
    state: AtomicU8,
    /// Wall-clock budget, measured from token creation.
    deadline: Option<Instant>,
    /// Whether `cancelled()` also consults the process signal flag.
    watch_signals: bool,
    /// Deterministic test hook: trip after this many polls (`usize::MAX`
    /// = disabled). Decremented on every `cancelled()` call.
    polls_left: AtomicUsize,
}

/// A cloneable, thread-safe cancellation flag (see the
/// [module docs](self)).
///
/// Clones share state: cancelling one cancels all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only trips on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken::build(None, false, usize::MAX)
    }

    /// A token that trips with [`CancelReason::Deadline`] once `budget`
    /// wall-clock time has elapsed from this call.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken::build(Some(Instant::now() + budget), false, usize::MAX)
    }

    /// A deterministic test token that trips with
    /// [`CancelReason::Interrupt`] after `polls` calls to
    /// [`cancelled`](Self::cancelled). The engine polls the token from
    /// its single-threaded control loop at every rule boundary, so a
    /// poll budget selects a reproducible cancellation point.
    pub fn after_polls(polls: usize) -> Self {
        CancelToken::build(None, false, polls)
    }

    /// Makes this token also trip on the process-wide SIGINT/SIGTERM
    /// flag (see [`install_signal_handlers`]).
    #[must_use]
    pub fn linked_to_signals(self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(self.inner.state.load(Ordering::Relaxed)),
                deadline: self.inner.deadline,
                watch_signals: true,
                polls_left: AtomicUsize::new(self.inner.polls_left.load(Ordering::Relaxed)),
            }),
        }
    }

    fn build(deadline: Option<Instant>, watch_signals: bool, polls: usize) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(STATE_LIVE),
                deadline,
                watch_signals,
                polls_left: AtomicUsize::new(polls),
            }),
        }
    }

    /// Latches the token as cancelled. The first reason wins; later
    /// calls (and later deadline expiry) do not change it.
    pub fn cancel(&self, reason: CancelReason) {
        let state = match reason {
            CancelReason::Interrupt => STATE_INTERRUPT,
            CancelReason::Deadline => STATE_DEADLINE,
        };
        let _ = self.inner.state.compare_exchange(
            STATE_LIVE,
            state,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Polls the token: `Some(reason)` once cancelled, `None` while
    /// live. Checks, in order: the latched state, the deterministic
    /// poll budget, the process signal flag (if linked), the deadline.
    pub fn cancelled(&self) -> Option<CancelReason> {
        match self.inner.state.load(Ordering::Acquire) {
            STATE_INTERRUPT => return Some(CancelReason::Interrupt),
            STATE_DEADLINE => return Some(CancelReason::Deadline),
            _ => {}
        }
        if self.inner.polls_left.load(Ordering::Relaxed) != usize::MAX {
            let left = self.inner.polls_left.fetch_sub(1, Ordering::Relaxed);
            if left == 0 {
                // Keep the budget from wrapping toward MAX (= disabled).
                self.inner.polls_left.store(0, Ordering::Relaxed);
                self.cancel(CancelReason::Interrupt);
                return Some(CancelReason::Interrupt);
            }
        }
        if self.inner.watch_signals && signal_flag().load(Ordering::Relaxed) {
            self.cancel(CancelReason::Interrupt);
            return Some(CancelReason::Interrupt);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.cancel(CancelReason::Deadline);
                return Some(CancelReason::Deadline);
            }
        }
        None
    }

    /// Non-consuming peek: `true` once the token is cancelled.
    ///
    /// Unlike [`cancelled`](Self::cancelled) this never decrements the
    /// [`after_polls`](Self::after_polls) budget, so concurrent workers
    /// (host executor, streams) can check freely without perturbing the
    /// deterministic cancellation point chosen by the control loop.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.state.load(Ordering::Acquire) != STATE_LIVE {
            return true;
        }
        if self.inner.watch_signals && signal_flag().load(Ordering::Relaxed) {
            self.cancel(CancelReason::Interrupt);
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.cancel(CancelReason::Deadline);
                return true;
            }
        }
        false
    }
}

/// The process-wide flag flipped by the SIGINT/SIGTERM handlers.
fn signal_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// Test/embedding hook: raises or clears the process signal flag as if
/// a SIGINT had arrived.
pub fn set_signal_flag(raised: bool) {
    signal_flag().store(raised, Ordering::Relaxed);
}

/// Installs SIGINT and SIGTERM handlers that set the process-wide flag
/// consulted by [`CancelToken::linked_to_signals`]. The handler only
/// stores to an `AtomicBool` (async-signal-safe); all draining and
/// flushing happens cooperatively on the normal control path.
///
/// Idempotent; a no-op on non-Unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // std already links libc; declare the two symbols we need
        // instead of depending on the `libc` crate (the workspace
        // dependency list is fixed).
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            signal_flag().store(true, Ordering::Relaxed);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_latches_first_reason() {
        let token = CancelToken::new();
        assert_eq!(token.cancelled(), None);
        token.cancel(CancelReason::Deadline);
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
        token.cancel(CancelReason::Interrupt);
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let other = token.clone();
        other.cancel(CancelReason::Interrupt);
        assert_eq!(token.cancelled(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn deadline_trips_after_budget() {
        let token = CancelToken::with_deadline(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
        // Latched: the reason survives further polls.
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn poll_budget_is_deterministic() {
        let token = CancelToken::after_polls(3);
        assert_eq!(token.cancelled(), None);
        assert_eq!(token.cancelled(), None);
        assert_eq!(token.cancelled(), None);
        assert_eq!(token.cancelled(), Some(CancelReason::Interrupt));
        assert_eq!(token.cancelled(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn peek_does_not_consume_poll_budget() {
        let token = CancelToken::after_polls(1);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert_eq!(token.cancelled(), None);
        assert_eq!(token.cancelled(), Some(CancelReason::Interrupt));
        assert!(token.is_cancelled());
    }

    #[test]
    fn signal_flag_only_observed_when_linked() {
        set_signal_flag(true);
        let unlinked = CancelToken::new();
        assert_eq!(unlinked.cancelled(), None);
        let linked = CancelToken::new().linked_to_signals();
        assert_eq!(linked.cancelled(), Some(CancelReason::Interrupt));
        set_signal_flag(false);
        // Latched even after the flag clears.
        assert_eq!(linked.cancelled(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn install_handlers_is_idempotent() {
        install_signal_handlers();
        install_signal_handlers();
    }
}
