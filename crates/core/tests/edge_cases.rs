//! Engine edge cases: degenerate layouts, deep hierarchies, absent
//! layers, extreme coordinates.

use odrc::{rule, Engine, RuleDeck};
use odrc_db::Layout;
use odrc_gdsii::{Element, Library, RefElement, Structure};
use odrc_geometry::Point;
use odrc_xpu::Device;

fn rect_el(layer: i16, x0: i32, y0: i32, x1: i32, y1: i32) -> Element {
    Element::boundary(
        layer,
        vec![
            Point::new(x0, y0),
            Point::new(x0, y1),
            Point::new(x1, y1),
            Point::new(x1, y0),
        ],
    )
}

fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule().layer(1).width().greater_than(10).named("W"),
        rule().layer(1).space().greater_than(12).named("S"),
        rule().layer(1).area().greater_than(100).named("A"),
        rule().layer(2).enclosed_by(1).greater_than(3).named("EN"),
    ])
}

#[test]
fn empty_top_cell() {
    let mut lib = Library::new("e");
    lib.structures.push(Structure::new("TOP"));
    let layout = Layout::from_library(&lib).unwrap();
    for engine in [Engine::sequential(), Engine::parallel_on(Device::new(2))] {
        let r = engine.check(&layout, &deck());
        assert!(r.violations.is_empty());
    }
}

#[test]
fn empty_rule_deck() {
    let mut lib = Library::new("e");
    let mut top = Structure::new("TOP");
    top.elements.push(rect_el(1, 0, 0, 5, 5));
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();
    let r = Engine::sequential().check(&layout, &RuleDeck::default());
    assert!(r.violations.is_empty());
    assert_eq!(r.stats.checks_computed, 0);
}

#[test]
fn top_polygons_only_no_placements() {
    let mut lib = Library::new("e");
    let mut top = Structure::new("TOP");
    top.elements.push(rect_el(1, 0, 0, 8, 50)); // width 8 < 10, area 400
    top.elements.push(rect_el(1, 15, 0, 40, 50)); // 7 from the first
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();
    let seq = Engine::sequential().check(&layout, &deck());
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &deck());
    assert_eq!(seq.violations, par.violations);
    assert_eq!(seq.violations_of("W").count(), 1);
    assert_eq!(seq.violations_of("S").count(), 1);
}

#[test]
fn six_level_hierarchy_with_transforms() {
    // L0 holds the geometry; L{k+1} places two L{k}s with alternating
    // rotations and mirrors -> 32 leaf instances.
    let mut lib = Library::new("deep");
    let mut leaf = Structure::new("L0");
    leaf.elements.push(rect_el(1, 0, 0, 8, 30)); // width violation
    lib.structures.push(leaf);
    for k in 1..=5 {
        let mut s = Structure::new(format!("L{k}"));
        let mut a = RefElement::sref(format!("L{}", k - 1), Point::new(0, 0));
        a.angle_deg = f64::from(k % 4) * 90.0;
        let mut b = RefElement::sref(format!("L{}", k - 1), Point::new(1000 * k, 500));
        b.mirror_x = k % 2 == 0;
        s.elements.push(Element::Ref(a));
        s.elements.push(Element::Ref(b));
        lib.structures.push(s);
    }
    let layout = Layout::from_library(&lib).unwrap();
    let only_width = RuleDeck::new(vec![rule().layer(1).width().greater_than(10).named("W")]);
    let seq = Engine::sequential().check(&layout, &only_width);
    assert_eq!(seq.violations.len(), 32, "one violation per leaf instance");
    // The check ran once; 31 instances reused it.
    assert_eq!(seq.stats.checks_computed, 1);
    assert_eq!(seq.stats.checks_reused, 31);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &only_width);
    assert_eq!(seq.violations, par.violations);
}

#[test]
fn enclosure_against_absent_layer_flags_everything() {
    let mut lib = Library::new("e");
    let mut top = Structure::new("TOP");
    top.elements.push(rect_el(2, 0, 0, 10, 10));
    top.elements.push(rect_el(2, 50, 0, 60, 10));
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();
    // Layer 1 does not exist: every layer-2 shape is unenclosed.
    let d = RuleDeck::new(vec![rule()
        .layer(2)
        .enclosed_by(1)
        .greater_than(3)
        .named("EN")]);
    let seq = Engine::sequential().check(&layout, &d);
    assert_eq!(seq.violations.len(), 2);
    assert!(seq.violations.iter().all(|v| v.measured == -3));
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &d);
    assert_eq!(seq.violations, par.violations);
}

#[test]
fn far_flung_coordinates() {
    // Geometry spread across a quarter-billion-dbu die; distances and
    // areas stay exact.
    let m = 250_000_000;
    let mut lib = Library::new("far");
    let mut top = Structure::new("TOP");
    top.elements.push(rect_el(1, -m, -m, -m + 20, -m + 2000));
    top.elements.push(rect_el(1, m - 20, m - 2000, m, m));
    top.elements
        .push(rect_el(1, -m + 28, -m, -m + 48, -m + 2000)); // 8 from the first
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();
    let d = RuleDeck::new(vec![rule().layer(1).space().greater_than(12).named("S")]);
    let seq = Engine::sequential().check(&layout, &d);
    assert_eq!(seq.violations.len(), 1);
    assert_eq!(seq.violations[0].measured, 64);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &d);
    assert_eq!(seq.violations, par.violations);
}

#[test]
fn shared_cell_under_two_parents() {
    // The same leaf under two different parents: memoized once, all
    // four instances reported.
    let mut lib = Library::new("dag");
    let mut leaf = Structure::new("LEAF");
    leaf.elements.push(rect_el(1, 0, 0, 8, 40));
    lib.structures.push(leaf);
    for (name, dx) in [("P1", 0), ("P2", 5000)] {
        let mut p = Structure::new(name);
        p.elements.push(Element::sref("LEAF", Point::new(dx, 0)));
        p.elements
            .push(Element::sref("LEAF", Point::new(dx + 100, 0)));
        lib.structures.push(p);
    }
    let mut top = Structure::new("TOP");
    top.elements.push(Element::sref("P1", Point::new(0, 0)));
    top.elements.push(Element::sref("P2", Point::new(0, 10000)));
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();
    let d = RuleDeck::new(vec![rule().layer(1).width().greater_than(10).named("W")]);
    let r = Engine::sequential().check(&layout, &d);
    assert_eq!(r.violations.len(), 4);
    assert_eq!(r.stats.checks_computed, 1);
    assert_eq!(r.stats.checks_reused, 3);
}
