//! Host-executor equivalence tests.
//!
//! The work-stealing host executor (`infra::host`) changes *where* the
//! hot host phases run — scene flattening, row partitioning, row
//! checking, edge packing, canonicalization fan out across worker
//! threads — but must never change *what* is reported. Every test here
//! pits multi-threaded runs against the single-threaded baseline
//! (`host_threads = 1`, which takes the literal pre-executor code
//! paths) and demands byte-identical canonical violation sets, across
//! modes, planner settings, and injected device faults.

use odrc::{rule, Engine, EngineOptions, Mode, RuleDeck, Violation};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::{Device, FaultPlan};
use proptest::prelude::*;

/// Thread counts under test: the serial baseline, a minimal fan-out,
/// and an oversubscribed pool (more workers than this host has cores).
const THREADS: [usize; 3] = [1, 2, 8];

/// A deck touching every parallelized phase: spacing (partition, pack,
/// row checks), width/area (intra fan-out), and enclosure (gather).
fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ])
}

fn engine(mode: Mode, planner: bool, host_threads: usize) -> Engine {
    let base = match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => Engine::parallel_on(Device::new(3)),
    };
    base.with_options(EngineOptions {
        planner,
        retry_backoff_ms: 0,
        host_threads: Some(host_threads),
        ..EngineOptions::default()
    })
}

fn check(
    layout: &odrc_db::Layout,
    mode: Mode,
    planner: bool,
    host_threads: usize,
) -> odrc::CheckReport {
    engine(mode, planner, host_threads).check(layout, &deck())
}

/// Running the exact same configuration repeatedly must reproduce the
/// exact same violations — work stealing shifts tasks between workers
/// from run to run, but the ordered merge erases every trace of it.
#[test]
fn repeated_runs_are_deterministic() {
    let layout = generate_layout(&DesignSpec::tiny(77));
    for (mode, threads) in [(Mode::Sequential, 8), (Mode::Parallel, 8)] {
        let first = check(&layout, mode, true, threads);
        for _ in 0..4 {
            let again = check(&layout, mode, true, threads);
            assert_eq!(
                again.violations, first.violations,
                "mode {mode:?} with {threads} host threads is not deterministic"
            );
            if mode == Mode::Sequential {
                // No device pool in this mode, so the full stats line
                // is reproducible too (parallel-mode upload elision
                // depends on cross-stream timing).
                assert_eq!(again.stats.checks_computed, first.stats.checks_computed);
                assert_eq!(again.stats.checks_reused, first.stats.checks_reused);
                assert_eq!(again.stats.candidate_pairs, first.stats.candidate_pairs);
                assert_eq!(again.stats.host_tasks, first.stats.host_tasks);
            }
        }
    }
}

/// `host_threads = 1` never fans out; larger pools do.
#[test]
fn task_accounting_tracks_thread_count() {
    let layout = generate_layout(&DesignSpec::tiny(78));
    let serial = check(&layout, Mode::Sequential, true, 1);
    assert_eq!(
        serial.stats.host_tasks, 0,
        "the serial executor must stay on the pre-executor code paths"
    );
    assert_eq!(serial.stats.host_steals, 0);
    let fanned = check(&layout, Mode::Sequential, true, 2);
    assert!(
        fanned.stats.host_tasks > 0,
        "a two-thread pool must route host phases through the executor"
    );
    assert_eq!(fanned.violations, serial.violations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// On generated designs, every host-thread count reports violations
    /// byte-identical to the single-threaded run, in both modes, with
    /// the planner on and off.
    #[test]
    fn prop_host_threads_match_serial(design_seed in 0u64..1_000) {
        let layout = generate_layout(&DesignSpec::tiny(design_seed));
        let baseline = check(&layout, Mode::Sequential, false, 1).violations;
        for mode in [Mode::Sequential, Mode::Parallel] {
            for planner in [false, true] {
                for threads in THREADS {
                    let got = check(&layout, mode, planner, threads).violations;
                    prop_assert_eq!(
                        &got, &baseline,
                        "mode {:?} planner {} host_threads {} diverged on design seed {}",
                        mode, planner, threads, design_seed
                    );
                }
            }
        }
    }

    /// Under a seeded fault schedule, multi-threaded runs still report
    /// exactly the fault-free baseline, and degradation is reported iff
    /// faults actually fired.
    #[test]
    fn prop_host_threads_survive_fault_injection(
        design_seed in 0u64..100,
        fault_seed in 0u64..200,
    ) {
        let layout = generate_layout(&DesignSpec::tiny(design_seed));
        let baseline: Vec<Violation> =
            check(&layout, Mode::Sequential, false, 1).violations;
        for threads in THREADS {
            let device = Device::new(3);
            device.set_fault_plan(Some(FaultPlan::from_seed(fault_seed, 6)));
            let report = Engine::parallel_on(device.clone())
                .with_options(EngineOptions {
                    planner: true,
                    retry_backoff_ms: 0,
                    host_threads: Some(threads),
                    ..EngineOptions::default()
                })
                .check(&layout, &deck());
            prop_assert_eq!(
                &report.violations, &baseline,
                "host_threads {} fault seed {} changed the results on design {}",
                threads, fault_seed, design_seed
            );
            prop_assert_eq!(
                report.stats.degraded(),
                device.faults_injected() > 0,
                "host_threads {}: degradation must be reported iff faults fired",
                threads
            );
        }
    }
}
