//! Engine-level integration tests: mode equivalence, ablation
//! equivalence, and detection of the generator's injected violations.

use odrc::{rule, Engine, EngineOptions, RuleDeck, ViolationKind};
use odrc_layoutgen::{generate, generate_layout, tech, DesignSpec};
use odrc_xpu::Device;

/// The standard rule deck over the generated technology: the paper's
/// four rule families (width, spacing, area, enclosure) across the
/// BEOL layers.
fn full_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M3)
            .width()
            .greater_than(tech::M3_WIDTH)
            .named("M3.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M1)
            .greater_than(tech::V1_M1_ENCLOSURE)
            .named("V1.M1.EN.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M2)
            .greater_than(tech::V2_M2_ENCLOSURE)
            .named("V2.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M3)
            .greater_than(tech::V2_M3_ENCLOSURE)
            .named("V2.M3.EN.1"),
        rule().polygons().is_rectilinear(),
    ])
}

#[test]
fn clean_design_has_no_violations() {
    let mut spec = DesignSpec::tiny(100);
    spec.violation_rate = 0.0;
    let layout = generate_layout(&spec);
    let report = Engine::sequential().check(&layout, &full_deck());
    assert_eq!(
        report.violations,
        vec![],
        "clean design must be violation-free"
    );
}

#[test]
fn injected_violations_are_found() {
    let mut spec = DesignSpec::tiny(101);
    spec.violation_rate = 0.25;
    let design = generate(&spec);
    let layout = odrc_db::Layout::from_library(&design.library).unwrap();
    let report = Engine::sequential().check(&layout, &full_deck());

    let count = |k: ViolationKind| report.violations.iter().filter(|v| v.kind == k).count();
    let s = design.stats;
    assert!(
        s.width + s.space + s.area + s.enclosure > 0,
        "nothing injected"
    );
    if s.width > 0 {
        assert!(
            count(ViolationKind::Width) >= s.width,
            "width: found {} < injected {}",
            count(ViolationKind::Width),
            s.width
        );
    }
    if s.space > 0 {
        assert!(count(ViolationKind::Space) >= s.space);
    }
    if s.area > 0 {
        assert!(count(ViolationKind::Area) >= s.area);
    }
    if s.enclosure > 0 {
        assert!(count(ViolationKind::Enclosure) >= s.enclosure);
    }
}

#[test]
fn sequential_and_parallel_agree() {
    for seed in [1u64, 2, 3] {
        let layout = generate_layout(&DesignSpec::tiny(seed));
        let deck = full_deck();
        let seq = Engine::sequential().check(&layout, &deck);
        let par = Engine::parallel_on(Device::new(3)).check(&layout, &deck);
        assert_eq!(
            seq.violations, par.violations,
            "seed {seed}: sequential and parallel modes disagree"
        );
        assert!(
            !seq.violations.is_empty(),
            "seed {seed}: expected some violations"
        );
    }
}

#[test]
fn parallel_uses_both_executors() {
    // Force the sweepline executor by lowering the threshold to zero,
    // and the brute executor by raising it; results must not change.
    let layout = generate_layout(&DesignSpec::tiny(7));
    let deck = full_deck();
    let base = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    for threshold in [0usize, usize::MAX] {
        let opts = EngineOptions {
            sweep_threshold: threshold,
            ..EngineOptions::default()
        };
        let r = Engine::parallel_on(Device::new(2))
            .with_options(opts)
            .check(&layout, &deck);
        assert_eq!(base.violations, r.violations, "threshold {threshold}");
    }
}

#[test]
fn ablations_do_not_change_results() {
    let layout = generate_layout(&DesignSpec::tiny(9));
    let deck = full_deck();
    let base = Engine::sequential().check(&layout, &deck);
    for (pruning, partition) in [(false, true), (true, false), (false, false)] {
        let opts = EngineOptions {
            pruning,
            partition,
            ..EngineOptions::default()
        };
        let r = Engine::sequential()
            .with_options(opts)
            .check(&layout, &deck);
        assert_eq!(
            base.violations, r.violations,
            "pruning={pruning} partition={partition}"
        );
    }
}

#[test]
fn pruning_reuses_checks() {
    let layout = generate_layout(&DesignSpec::tiny(10));
    let deck = full_deck();
    let with = Engine::sequential().check(&layout, &deck);
    let without = Engine::sequential()
        .with_options(EngineOptions {
            pruning: false,
            ..EngineOptions::default()
        })
        .check(&layout, &deck);
    assert!(
        with.stats.checks_reused > 0,
        "hierarchy should enable reuse"
    );
    assert_eq!(without.stats.checks_reused, 0);
    assert!(
        without.stats.checks_computed > with.stats.checks_computed,
        "pruning must reduce executed checks: {} vs {}",
        without.stats.checks_computed,
        with.stats.checks_computed
    );
}

#[test]
fn partition_produces_rows() {
    let layout = generate_layout(&DesignSpec::tiny(11));
    let deck = RuleDeck::new(vec![rule()
        .layer(tech::M2)
        .space()
        .greater_than(tech::M2_SPACE)
        .named("M2.S.1")]);
    let report = Engine::sequential().check(&layout, &deck);
    // M2 stays within row bands: expect one partition row per placement
    // row.
    assert!(report.stats.rows >= 4, "rows = {}", report.stats.rows);
    let single = Engine::sequential()
        .with_options(EngineOptions {
            partition: false,
            ..EngineOptions::default()
        })
        .check(&layout, &deck);
    assert_eq!(single.stats.rows, 1);
}

#[test]
fn profile_has_paper_phases() {
    let layout = generate_layout(&DesignSpec::tiny(12));
    let deck = RuleDeck::new(vec![rule()
        .layer(tech::M2)
        .space()
        .greater_than(tech::M2_SPACE)
        .named("M2.S.1")]);
    let report = Engine::sequential().check(&layout, &deck);
    for phase in ["partition", "sweepline", "edge-check"] {
        assert!(
            report.profile.phase(phase).is_some(),
            "missing phase {phase}"
        );
    }
}

#[test]
fn ensures_rule_flags_unnamed_polygons() {
    let layout = generate_layout(&DesignSpec::tiny(13));
    // Vias are unnamed; wires are named.
    let deck = RuleDeck::new(vec![
        rule()
            .layer(tech::M2)
            .polygons()
            .ensures("named", |p| p.name.is_some()),
        rule()
            .layer(tech::V1)
            .polygons()
            .ensures("named", |p| p.name.is_some()),
    ]);
    let report = Engine::sequential().check(&layout, &deck);
    let m2_unnamed = report
        .violations
        .iter()
        .filter(|v| v.rule.contains(&format!("L{}", tech::M2)))
        .count();
    let v1_unnamed = report
        .violations
        .iter()
        .filter(|v| v.rule.contains(&format!("L{}", tech::V1)))
        .count();
    assert_eq!(m2_unnamed, 0, "all wires are named");
    assert!(v1_unnamed > 0, "vias are unnamed");
}

#[test]
fn conditional_spacing_by_projection() {
    use odrc_db::Layout;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::Point;

    // Two pairs of bars on layer 1, both 30 apart:
    //  - a long-run pair (projection 500),
    //  - a short-run pair (projection 40).
    let mut lib = Library::new("cond");
    let mut top = Structure::new("TOP");
    let bar = |x0: i32, y0: i32, w: i32, h: i32| {
        Element::boundary(
            1,
            vec![
                Point::new(x0, y0),
                Point::new(x0, y0 + h),
                Point::new(x0 + w, y0 + h),
                Point::new(x0 + w, y0),
            ],
        )
    };
    top.elements.push(bar(0, 0, 20, 500));
    top.elements.push(bar(50, 0, 20, 500)); // long pair, gap 30
    top.elements.push(bar(1000, 0, 20, 40));
    top.elements.push(bar(1050, 0, 20, 40)); // short pair, gap 30
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();

    // Unconditional 40-spacing flags both pairs.
    let plain = RuleDeck::new(vec![rule().layer(1).space().greater_than(40)]);
    let r = Engine::sequential().check(&layout, &plain);
    assert_eq!(r.violations.len(), 2);

    // Conditional: 40-spacing only for runs of at least 100 — flags
    // only the long pair.
    let cond = RuleDeck::new(vec![rule()
        .layer(1)
        .space()
        .when_projection_at_least(100)
        .greater_than(40)]);
    let r = Engine::sequential().check(&layout, &cond);
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].location.lo().x, 20);

    // All engines agree on the conditional rule.
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &cond);
    assert_eq!(r.violations, par.violations);
}

#[test]
fn conditional_spacing_engines_agree_on_designs() {
    let layout = generate_layout(&DesignSpec::tiny(33));
    let deck = RuleDeck::new(vec![
        rule()
            .layer(tech::M2)
            .space()
            .when_projection_at_least(200)
            .greater_than(40),
        rule()
            .layer(tech::M3)
            .space()
            .when_projection_at_least(100)
            .greater_than(48),
    ]);
    let seq = Engine::sequential().check(&layout, &deck);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    assert_eq!(seq.violations, par.violations);
}

#[test]
fn overlap_area_rule_known_values() {
    use odrc_db::Layout;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::Point;

    // A 10x10 via fully on metal; a second via half off the metal.
    let mut lib = Library::new("ovl");
    let mut top = Structure::new("TOP");
    let rect_el = |layer: i16, x0: i32, y0: i32, x1: i32, y1: i32| {
        Element::boundary(
            layer,
            vec![
                Point::new(x0, y0),
                Point::new(x0, y1),
                Point::new(x1, y1),
                Point::new(x1, y0),
            ],
        )
    };
    top.elements.push(rect_el(2, 0, 0, 100, 20)); // metal
    top.elements.push(rect_el(1, 10, 5, 20, 15)); // via fully on metal
    top.elements.push(rect_el(1, 95, 5, 105, 15)); // via half off: overlap 50
    top.elements.push(rect_el(1, 200, 5, 210, 15)); // via entirely off: 0
    lib.structures.push(top);
    let layout = Layout::from_library(&lib).unwrap();

    let deck = RuleDeck::new(vec![rule().layer(1).overlapping(2).area_at_least(100)]);
    let report = Engine::sequential().check(&layout, &deck);
    assert_eq!(report.violations.len(), 2);
    let measured: Vec<i64> = report.violations.iter().map(|v| v.measured).collect();
    assert!(measured.contains(&50));
    assert!(measured.contains(&0));
    assert!(report
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::OverlapArea));

    // Parallel mode and baselines agree.
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    assert_eq!(report.violations, par.violations);
}

#[test]
fn overlap_area_on_generated_vias() {
    // Clean V1 vias (10x10) land fully on M2 wires: overlap == 100.
    let mut spec = DesignSpec::tiny(55);
    spec.violation_rate = 0.0;
    let layout = generate_layout(&spec);
    let deck = RuleDeck::new(vec![rule()
        .layer(tech::V1)
        .overlapping(tech::M2)
        .area_at_least(100)
        .named("V1.M2.OVL.1")]);
    let report = Engine::sequential().check(&layout, &deck);
    assert_eq!(
        report.violations,
        vec![],
        "clean vias fully overlap their wires"
    );

    // With injections, off-center vias lose overlap area.
    let mut spec = DesignSpec::tiny(55);
    spec.violation_rate = 0.4;
    let layout = generate_layout(&spec);
    let seq = Engine::sequential().check(&layout, &deck);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    assert_eq!(seq.violations, par.violations);
    assert!(!seq.violations.is_empty(), "offset vias must lose overlap");
}

#[test]
fn rtree_pair_index_agrees_with_sweepline() {
    let layout = generate_layout(&DesignSpec::tiny(77));
    let deck = full_deck();
    let sweep = Engine::sequential().check(&layout, &deck);
    let rtree = Engine::sequential()
        .with_options(EngineOptions {
            pair_index: odrc::PairIndex::RTree,
            ..EngineOptions::default()
        })
        .check(&layout, &deck);
    assert_eq!(sweep.violations, rtree.violations);
}

#[test]
fn report_filters_by_rule() {
    let layout = generate_layout(&DesignSpec::tiny(14));
    let deck = full_deck();
    let report = Engine::sequential().check(&layout, &deck);
    let m2s: Vec<_> = report.violations_of("M2.S.1").collect();
    assert!(m2s.iter().all(|v| v.kind == ViolationKind::Space));
}

/// The engine and everything a check server must move across threads
/// are `Send` (and the share-by-reference pieces `Sync`). A server
/// spawns one worker per job, hands each an `Engine`, and shares the
/// layout, deck, and options across jobs — this pins the thread-safety
/// contract at compile time.
#[test]
fn engine_types_are_thread_safe() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Engine>();
    assert_send::<odrc::CheckReport>();
    assert_send::<odrc::ResultCache>();
    assert_send_sync::<EngineOptions>();
    assert_send_sync::<RuleDeck>();
    assert_send_sync::<odrc_db::Layout>();
}

/// The progress hook fires exactly once per rule with `Completed`
/// (execution order may differ from deck order under the planner's
/// layer grouping), in both execution modes.
#[test]
fn progress_callback_reports_every_rule() {
    use std::sync::{Arc, Mutex};
    let layout = generate_layout(&DesignSpec::tiny(7));
    let deck = full_deck();
    let mut expected: Vec<String> = deck.rules().iter().map(|r| r.name.clone()).collect();
    expected.sort();
    for engine in [Engine::sequential(), Engine::parallel_on(Device::new(1))] {
        let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let engine = engine.with_progress(Arc::new(move |name, status| {
            sink.lock()
                .unwrap()
                .push((name.to_string(), status.to_string()));
        }));
        engine.check(&layout, &deck);
        let seen = seen.lock().unwrap();
        let mut names: Vec<String> = seen.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        assert_eq!(names, expected, "one completion event per rule");
        assert!(seen.iter().all(|(_, s)| s == "completed"));
    }
}

/// A shared gate installed via `EngineOptions` is drawn on (and fully
/// released by) an engine run, so a server-wide permit pool can span
/// concurrent jobs.
#[test]
fn shared_gate_is_used_and_released() {
    let gate = std::sync::Arc::new(odrc_infra::ThreadGate::new(3));
    let layout = generate_layout(&DesignSpec::tiny(9));
    let deck = full_deck();
    let options = EngineOptions {
        host_threads: Some(4),
        shared_gate: Some(std::sync::Arc::clone(&gate)),
        ..EngineOptions::default()
    };
    let baseline = Engine::sequential().check(&layout, &deck);
    let shared = Engine::sequential()
        .with_options(options)
        .check(&layout, &deck);
    assert_eq!(baseline.violations, shared.violations);
    assert_eq!(
        gate.available(),
        3,
        "all shared permits returned after the run"
    );
}
