//! The text deck format must drive the engine identically to the
//! programmatic DSL.

use odrc::{parse_deck, rule, Engine, RuleDeck};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};

#[test]
fn text_deck_equals_programmatic_deck() {
    let layout = generate_layout(&DesignSpec::tiny(88));
    let text = format!(
        "
        width layer={m1} min={m1w} name=M1.W.1
        space layer={m2} min={m2s} name=M2.S.1
        area  layer={m1} min={m1a} name=M1.A.1
        enclosure inner={v1} outer={m2} min={enc} name=V1.M2.EN.1
        overlap inner={v1} outer={m2} min_area=100 name=V1.M2.OVL.1
        ",
        m1 = tech::M1,
        m2 = tech::M2,
        v1 = tech::V1,
        m1w = tech::M1_WIDTH,
        m2s = tech::M2_SPACE,
        m1a = tech::M1_AREA,
        enc = tech::V1_M2_ENCLOSURE,
    );
    let parsed = parse_deck(&text).expect("valid deck");
    let programmatic = RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V1)
            .overlapping(tech::M2)
            .area_at_least(100)
            .named("V1.M2.OVL.1"),
    ]);
    let a = Engine::sequential().check(&layout, &parsed);
    let b = Engine::sequential().check(&layout, &programmatic);
    assert_eq!(a.violations, b.violations);
    assert!(!a.violations.is_empty());
}

#[test]
fn conditional_space_from_text() {
    let layout = generate_layout(&DesignSpec::tiny(89));
    let text = format!("space layer={} min=40 projection=200 name=COND", tech::M2);
    let parsed = parse_deck(&text).expect("valid deck");
    let programmatic = RuleDeck::new(vec![rule()
        .layer(tech::M2)
        .space()
        .when_projection_at_least(200)
        .greater_than(40)
        .named("COND")]);
    let a = Engine::sequential().check(&layout, &parsed);
    let b = Engine::sequential().check(&layout, &programmatic);
    assert_eq!(a.violations, b.violations);
}

#[test]
fn markers_roundtrip_report() {
    use odrc::markers::marker_library;
    let layout = generate_layout(&DesignSpec::tiny(90));
    let deck = parse_deck(&format!(
        "width layer={} min={} name=M1.W.1",
        tech::M1,
        tech::M1_WIDTH
    ))
    .expect("valid deck");
    let report = Engine::sequential().check(&layout, &deck);
    let markers = marker_library(&report.violations, 10_000);
    let bytes = odrc_gdsii::write(&markers).expect("serialize markers");
    let back = odrc_gdsii::read(&bytes).expect("parse markers");
    assert_eq!(back.structures[0].elements.len(), report.violations.len());
}
