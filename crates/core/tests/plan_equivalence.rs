//! Execution-planner equivalence and accounting tests.
//!
//! The planner changes *when* work happens — one scene per layer, one
//! upload per row set, all rules issued before any is collected — but
//! must never change *what* is reported. Every test here pits the
//! planned engine against the strict per-rule loop
//! (`EngineOptions { planner: false, .. }`) and demands byte-identical
//! canonical violation sets, in both modes, with and without injected
//! device faults.

use odrc::{rule, Engine, EngineOptions, Mode, RuleDeck, Violation};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::{Device, FaultPlan};
use proptest::prelude::*;

/// A deck with several rules per layer so the planner has sharing to
/// exploit: the two M1 spacing rules share one partitioned row set
/// (same layer, same distance), width + area share the M1 polygon
/// buffer, and the enclosure's outer scene is the M2 spacing scene.
fn shared_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ])
}

fn engine(mode: Mode, planner: bool) -> Engine {
    let base = match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => Engine::parallel_on(Device::new(3)),
    };
    base.with_options(EngineOptions {
        planner,
        retry_backoff_ms: 0,
        ..EngineOptions::default()
    })
}

fn check(layout: &odrc_db::Layout, mode: Mode, planner: bool) -> odrc::CheckReport {
    engine(mode, planner).check(layout, &shared_deck())
}

#[test]
fn sequential_scene_memo_builds_each_layer_once() {
    let layout = generate_layout(&DesignSpec::tiny(31));
    // Two spacing rules on M1 and the enclosure reading M2: with the
    // planner, each layer's scene is built exactly once per run.
    let deck = RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ]);
    let report = Engine::sequential().check(&layout, &deck);
    // Scene reads: M1 twice (the two spacing rules), M2 twice (space +
    // enclosure outer), V1 once (enclosure inner) — three builds, two
    // memo hits.
    assert_eq!(report.stats.scenes_built, 3, "one build per layer");
    assert_eq!(report.stats.scenes_reused, 2, "every re-read is a memo hit");

    // The per-rule loop rebuilds instead: one build per read.
    let off = engine(Mode::Sequential, false).check(&layout, &deck);
    assert_eq!(off.stats.scenes_built, 5);
    assert_eq!(off.stats.scenes_reused, 0);
    assert_eq!(off.violations, report.violations);
}

#[test]
fn planner_shares_row_uploads_across_rules() {
    let layout = generate_layout(&DesignSpec::tiny(32));
    let on = check(&layout, Mode::Parallel, true);
    let off = check(&layout, Mode::Parallel, false);
    assert_eq!(on.violations, off.violations);
    assert!(on.stats.scenes_reused > 0, "scene memo must hit");
    assert!(on.stats.uploads_elided > 0, "row buffers must be shared");
    assert!(
        on.stats.uploads_elided > off.stats.uploads_elided,
        "cross-rule sharing must elide uploads beyond the within-rule \
         emit-phase reuse ({} vs {})",
        on.stats.uploads_elided,
        off.stats.uploads_elided
    );
    assert!(
        on.stats.bytes_uploaded < off.stats.bytes_uploaded,
        "shared buffers must shrink the transferred volume ({} vs {})",
        on.stats.bytes_uploaded,
        off.stats.bytes_uploaded
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On generated designs, the planned engine and the per-rule loop
    /// report byte-identical canonical violations in both modes.
    #[test]
    fn prop_planner_matches_per_rule_loop(design_seed in 0u64..1_000) {
        let layout = generate_layout(&DesignSpec::tiny(design_seed));
        let baseline = check(&layout, Mode::Sequential, false).violations;
        for (mode, planner) in [
            (Mode::Sequential, true),
            (Mode::Parallel, false),
            (Mode::Parallel, true),
        ] {
            let got = check(&layout, mode, planner).violations;
            prop_assert_eq!(
                &got, &baseline,
                "mode {:?} planner {} diverged on design seed {}",
                mode, planner, design_seed
            );
        }
    }

    /// Under seeded fault schedules, the planned concurrent engine
    /// still reports exactly the fault-free baseline (faults land on
    /// different ordinals with the planner on, so the comparison is
    /// against the clean run, not the faulted per-rule run).
    #[test]
    fn prop_planner_survives_fault_injection(
        design_seed in 0u64..100,
        fault_seed in 0u64..200,
    ) {
        let layout = generate_layout(&DesignSpec::tiny(design_seed));
        let baseline: Vec<Violation> =
            check(&layout, Mode::Parallel, false).violations;
        for planner in [false, true] {
            let device = Device::new(3);
            device.set_fault_plan(Some(FaultPlan::from_seed(fault_seed, 6)));
            let report = Engine::parallel_on(device.clone())
                .with_options(EngineOptions {
                    planner,
                    retry_backoff_ms: 0,
                    ..EngineOptions::default()
                })
                .check(&layout, &shared_deck());
            prop_assert_eq!(
                &report.violations, &baseline,
                "planner {} fault seed {} changed the results on design {}",
                planner, fault_seed, design_seed
            );
            prop_assert_eq!(
                report.stats.degraded(),
                device.faults_injected() > 0,
                "planner {}: degradation must be reported iff faults fired",
                planner
            );
        }
    }
}
