//! Fault-injection integration tests: the engine must survive every
//! device failure the fault injector can produce, degrade gracefully
//! to the host, and report *identical* violations to a fault-free run.
//!
//! The property test at the bottom is the PR's acceptance gate: 100
//! seeded fault schedules across the paper's `uart` and `aes` layouts,
//! each compared byte-for-byte against the fault-free parallel run.

use odrc::{rule, Engine, EngineOptions, RuleDeck};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::{Device, Fault, FaultPlan};

/// A deck exercising every parallel code path: the row-pipelined space
/// kernels, the per-polygon intra kernels (width, area, rectilinear),
/// and the pair-based enclosure and overlap kernels.
fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V1)
            .overlapping(tech::M2)
            .area_at_least(100)
            .named("V1.M2.OVL.1"),
    ])
}

fn parallel_engine(device: Device) -> Engine {
    // Fast test turnaround: retries are exercised, but backoff stays
    // sub-millisecond.
    Engine::parallel_on(device).with_options(EngineOptions {
        retry_backoff_ms: 0,
        ..EngineOptions::default()
    })
}

/// Checks `layout` on a faulted device and asserts the degraded run
/// matches the fault-free `baseline` exactly.
fn check_with_plan(
    layout: &odrc_db::Layout,
    baseline: &[odrc::Violation],
    plan: FaultPlan,
    label: &str,
) -> odrc::EngineStats {
    let device = Device::new(3);
    device.set_fault_plan(Some(plan));
    let report = parallel_engine(device).check(layout, &deck());
    assert_eq!(
        report.violations, baseline,
        "{label}: degraded run must match the fault-free violation set"
    );
    report.stats
}

#[test]
fn fault_free_run_reports_no_degradation() {
    let layout = generate_layout(&DesignSpec::tiny(21));
    let report = parallel_engine(Device::new(3)).check(&layout, &deck());
    assert_eq!(report.stats.device_retries, 0);
    assert_eq!(report.stats.device_fallbacks, 0);
    assert!(!report.stats.degraded());
}

#[test]
fn engine_survives_injected_oom() {
    let layout = generate_layout(&DesignSpec::tiny(22));
    let baseline = parallel_engine(Device::new(3)).check(&layout, &deck());
    let plan = FaultPlan::new()
        .with(Fault::AllocOom { nth: 0 })
        .with(Fault::AllocOom { nth: 1 })
        .with(Fault::AllocOom { nth: 5 });
    let stats = check_with_plan(&layout, &baseline.violations, plan, "oom");
    assert!(
        stats.degraded(),
        "injected OOMs must be visible in the stats"
    );
}

#[test]
fn engine_survives_injected_kernel_panics() {
    let layout = generate_layout(&DesignSpec::tiny(23));
    let baseline = parallel_engine(Device::new(3)).check(&layout, &deck());
    let plan = FaultPlan::new()
        .with(Fault::KernelPanic {
            kernel: 0,
            thread: 0,
        })
        .with(Fault::KernelPanic {
            kernel: 2,
            thread: 1,
        })
        .with(Fault::KernelPanic {
            kernel: 3,
            thread: 0,
        });
    let stats = check_with_plan(&layout, &baseline.violations, plan, "kernel-panic");
    assert!(stats.degraded());
}

#[test]
fn engine_survives_injected_stream_stalls() {
    let layout = generate_layout(&DesignSpec::tiny(24));
    let baseline = parallel_engine(Device::new(3)).check(&layout, &deck());
    let plan = FaultPlan::new()
        .with(Fault::StreamStall { nth: 0 })
        .with(Fault::StreamStall { nth: 3 })
        .with(Fault::StreamStall { nth: 7 });
    let stats = check_with_plan(&layout, &baseline.violations, plan, "stream-stall");
    assert!(stats.degraded());
}

#[test]
fn engine_survives_injected_transfer_failures() {
    let layout = generate_layout(&DesignSpec::tiny(25));
    let baseline = parallel_engine(Device::new(3)).check(&layout, &deck());
    let plan = FaultPlan::new()
        .with(Fault::TransferFail { nth: 0 })
        .with(Fault::TransferFail { nth: 2 })
        .with(Fault::TransferFail { nth: 4 });
    let stats = check_with_plan(&layout, &baseline.violations, plan, "transfer-fail");
    assert!(stats.degraded());
}

#[test]
fn engine_survives_memory_budget_exhaustion() {
    // A budget too small for any real row forces every device
    // allocation down the OOM path; the engine must complete entirely
    // on the host with identical results.
    let layout = generate_layout(&DesignSpec::tiny(26));
    let baseline = parallel_engine(Device::new(3)).check(&layout, &deck());
    let device = Device::with_budget(3, 256);
    let report = parallel_engine(device).check(&layout, &deck());
    assert_eq!(report.violations, baseline.violations);
    assert!(
        report.stats.device_fallbacks > 0,
        "a starved device must fall back to the host"
    );
}

#[test]
fn sequential_mode_ignores_device_faults() {
    // The sequential engine never touches the device: a hostile plan
    // on its (unused) device changes nothing.
    let layout = generate_layout(&DesignSpec::tiny(27));
    let baseline = Engine::sequential().check(&layout, &deck());
    let engine = Engine::sequential();
    engine
        .device()
        .set_fault_plan(Some(FaultPlan::from_seed(99, 32)));
    let report = engine.check(&layout, &deck());
    assert_eq!(report.violations, baseline.violations);
    assert!(!report.stats.degraded());
}

/// The acceptance property: for 100 seeded fault schedules across the
/// paper's `uart` and `aes` designs, the degraded engine produces a
/// violation set byte-identical to the fault-free parallel run, and
/// the stats report retries/fallbacks exactly when faults actually
/// fired.
///
/// Every schedule is also replayed through the out-of-core sharded
/// path, where shard loads tick the device's [`Fault::AllocFail`]
/// schedule: a fired fault degrades that load to build-check-drop, and
/// the violation set must still match byte for byte. The sweep asserts
/// at least one schedule per design actually degraded a shard load, so
/// the `AllocFail` arm of [`FaultPlan::from_seed`] cannot go dormant.
#[test]
fn property_seeded_fault_schedules_preserve_results() {
    // `uart` is cheap, `aes` is the big design: split the 100 seeds to
    // keep debug-mode runtime reasonable while still hammering the
    // large layout.
    let designs = [("uart", 80u64..160), ("aes", 0u64..20)];
    for (name, seeds) in designs {
        let spec = DesignSpec::paper(name).expect("paper design");
        let layout = generate_layout(&spec);
        let deck = deck();
        let baseline = parallel_engine(Device::new(3)).check(&layout, &deck);
        assert!(
            !baseline.violations.is_empty(),
            "{name}: paper designs carry injected violations"
        );
        assert!(!baseline.stats.degraded());
        let mut seeds_fired = 0usize;
        let mut shards_degraded = 0usize;
        let total_seeds = seeds.clone().count();
        for seed in seeds {
            let device = Device::new(3);
            device.set_fault_plan(Some(FaultPlan::from_seed(seed, 6)));
            let report = parallel_engine(device.clone()).check(&layout, &deck);
            assert_eq!(
                report.violations, baseline.violations,
                "{name} seed {seed}: fault injection changed the results"
            );
            let fired = device.faults_injected() > 0;
            seeds_fired += usize::from(fired);
            assert_eq!(
                report.stats.degraded(),
                fired,
                "{name} seed {seed}: stats must report degradation iff faults fired \
                 (injected={}, retries={}, fallbacks={})",
                device.faults_injected(),
                report.stats.device_retries,
                report.stats.device_fallbacks
            );

            // The same schedule through the out-of-core sharded path:
            // cache-missing shard loads consume the AllocFail faults.
            let ooc_device = Device::new(3);
            ooc_device.set_fault_plan(Some(FaultPlan::from_seed(seed, 6)));
            let ooc = Engine::parallel_on(ooc_device)
                .with_options(EngineOptions {
                    retry_backoff_ms: 0,
                    out_of_core: true,
                    shard_rows: Some(2),
                    ..EngineOptions::default()
                })
                .check(&layout, &deck);
            assert_eq!(
                ooc.violations, baseline.violations,
                "{name} seed {seed}: out-of-core fault injection changed the results"
            );
            shards_degraded += ooc.stats.shards_degraded;
        }
        // The property must not hold vacuously: the seeded schedules
        // target small ordinal ranges precisely so most of them hit.
        assert!(
            seeds_fired * 2 > total_seeds,
            "{name}: only {seeds_fired}/{total_seeds} schedules fired any fault"
        );
        assert!(
            shards_degraded > 0,
            "{name}: no seeded AllocFail ever degraded a shard load"
        );
    }
}
