//! Kill/resume property tests.
//!
//! A cancelled run must be *restartable*, not merely survivable: the
//! checkpoint journal it leaves behind, fed back through `--resume`,
//! has to reproduce the uninterrupted violation set byte for byte.
//! These tests sweep seeded cancellation points (via
//! [`CancelToken::after_polls`], which trips the token at a
//! deterministic rule boundary) across engine modes, planner settings,
//! and injected device-fault schedules, and demand three properties of
//! every interrupted-then-resumed pair:
//!
//! 1. the interrupted run reports only whole-rule results (a subset of
//!    the baseline — no torn or partial rule output),
//! 2. the resume run restores exactly the rules the first run
//!    journaled ([`EngineStats::rules_resumed`]),
//! 3. the resumed violation set equals the uninterrupted baseline.

use odrc::{
    rule, rule_signature, CancelReason, CancelToken, CheckpointJournal, Engine, EngineOptions,
    Mode, RuleDeck, RuleStatus, RunKey, Violation,
};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::{Device, FaultPlan};
use std::path::{Path, PathBuf};

/// A deck exercising every checkpointable rule family — width, space
/// (plain and projection-gated), area, enclosure, rectilinearity —
/// plus an `ensures` rule, which has no stable signature and therefore
/// must be re-run (never restored) on resume.
fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule().polygons().is_rectilinear().named("RECT.1"),
        // Unsigned: flags every V1 polygon, deterministically.
        rule()
            .layer(tech::V1)
            .polygons()
            .ensures("flagged", |_| false),
    ])
}

fn engine(mode: Mode, planner: bool, fault_seed: Option<u64>) -> Engine {
    let base = match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => {
            let device = Device::new(3);
            if let Some(seed) = fault_seed {
                device.set_fault_plan(Some(FaultPlan::from_seed(seed, 6)));
            }
            Engine::parallel_on(device)
        }
    };
    base.with_options(EngineOptions {
        planner,
        retry_backoff_ms: 0,
        ..EngineOptions::default()
    })
}

/// A private scratch directory, cleared on entry so reruns of the test
/// binary never resume from a stale journal.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odrc-kill-resume-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// How many of the run's rules were both completed *and* signable —
/// exactly the set the checkpoint journal records.
fn journaled_count(report: &odrc::CheckReport, deck: &RuleDeck) -> usize {
    deck.rules()
        .iter()
        .zip(&report.rule_status)
        .filter(|(r, (_, s))| *s == RuleStatus::Completed && rule_signature(r).is_some())
        .count()
}

fn is_subset(part: &[Violation], whole: &[Violation]) -> bool {
    // Both sets are canonical (sorted, deduped), so a merge walk works.
    let mut it = whole.iter();
    part.iter().all(|v| it.any(|w| w == v))
}

/// Interrupt a run at poll budget `polls`, then resume it from the
/// journal it left in `dir`; returns both reports.
fn kill_then_resume(
    layout: &odrc_db::Layout,
    mode: Mode,
    planner: bool,
    fault_seed: Option<u64>,
    polls: usize,
    dir: &Path,
) -> (odrc::CheckReport, odrc::CheckReport) {
    let deck = deck();
    let key = RunKey::compute(layout, &deck);

    let mut journal = CheckpointJournal::open_dir(dir, key).expect("open fresh journal");
    assert!(journal.is_empty(), "fresh journal must start empty");
    let killed = engine(mode, planner, fault_seed)
        .with_cancel(CancelToken::after_polls(polls))
        .check_resumable(layout, &deck, None, Some(&mut journal));

    // Reopen from disk — the resume run must work from the persisted
    // bytes, not the in-memory journal the killed run appended to.
    drop(journal);
    let mut journal = CheckpointJournal::open_dir(dir, key).expect("reopen journal");
    assert_eq!(
        journal.len(),
        journaled_count(&killed, &deck),
        "journal holds exactly the signable rules the killed run completed"
    );
    let resumed =
        engine(mode, planner, fault_seed).check_resumable(layout, &deck, None, Some(&mut journal));
    (killed, resumed)
}

fn assert_kill_resume_matrix(
    layout: &odrc_db::Layout,
    configs: &[(Mode, bool, Option<u64>)],
    poll_budgets: &[usize],
) {
    let baseline = engine(Mode::Sequential, false, None).check(layout, &deck());
    assert!(
        !baseline.violations.is_empty(),
        "designs under test must actually violate something"
    );

    let mut saw_interrupted = false;
    let mut saw_complete = false;
    for &(mode, planner, fault_seed) in configs {
        for &polls in poll_budgets {
            let tag = format!(
                "{:?}-p{}-f{}-n{}",
                mode,
                planner,
                fault_seed.unwrap_or(0),
                polls
            );
            let dir = fresh_dir(&tag);
            let (killed, resumed) =
                kill_then_resume(layout, mode, planner, fault_seed, polls, &dir);

            match killed.interrupted {
                Some(reason) => {
                    saw_interrupted = true;
                    assert_eq!(reason, CancelReason::Interrupt, "{tag}");
                    assert!(killed.stats.rules_interrupted > 0, "{tag}");
                    assert!(
                        is_subset(&killed.violations, &baseline.violations),
                        "{tag}: interrupted run leaked partial-rule violations"
                    );
                }
                None => {
                    // Budget outlasted the run: it is simply a
                    // complete run that also wrote a journal.
                    saw_complete = true;
                    assert_eq!(killed.violations, baseline.violations, "{tag}");
                    assert_eq!(killed.stats.rules_interrupted, 0, "{tag}");
                }
            }

            assert_eq!(resumed.interrupted, None, "{tag}");
            assert_eq!(
                resumed.stats.rules_resumed,
                journaled_count(&killed, &deck()),
                "{tag}: resume must restore exactly the journaled rules"
            );
            assert_eq!(
                resumed.violations, baseline.violations,
                "{tag}: resumed run must be byte-identical to uninterrupted baseline"
            );

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    // The sweep itself must stay meaningful: at least one budget has to
    // kill mid-run and at least one has to outlast the run.
    assert!(saw_interrupted, "no poll budget actually interrupted a run");
    assert!(saw_complete, "no poll budget let a run finish");
}

/// The full matrix on uart: both modes, planner on/off, and seeded
/// device-fault schedules layered on top of the parallel configs — a
/// kill must compose with the device layer's retry/degrade machinery.
#[test]
fn uart_kill_resume_is_byte_identical() {
    let layout = generate_layout(&DesignSpec::paper("uart").expect("paper design"));
    assert_kill_resume_matrix(
        &layout,
        &[
            (Mode::Sequential, false, None),
            (Mode::Sequential, true, None),
            (Mode::Parallel, false, None),
            (Mode::Parallel, true, None),
            (Mode::Parallel, false, Some(7)),
            (Mode::Parallel, true, Some(99)),
        ],
        &[0, 1, 2, 3, 4, 5, 6, 7, 9, 64],
    );
}

/// One denser design through the planner path, to catch window/drain
/// interactions a small layout cannot reach.
#[test]
fn aes_kill_resume_is_byte_identical() {
    let layout = generate_layout(&DesignSpec::paper("aes").expect("paper design"));
    assert_kill_resume_matrix(&layout, &[(Mode::Parallel, true, Some(13))], &[1, 3, 5, 64]);
}

/// A journal written for one layout must be invisible to a resume
/// attempt against different content: rules are re-checked, not
/// wrongly restored.
#[test]
fn resume_ignores_journal_from_different_run() {
    let layout_a = generate_layout(&DesignSpec::tiny(11));
    let layout_b = generate_layout(&DesignSpec::tiny(12));
    let deck = deck();
    let dir = fresh_dir("wrong-run");

    let mut journal =
        CheckpointJournal::open_dir(&dir, RunKey::compute(&layout_a, &deck)).expect("open");
    let complete = engine(Mode::Sequential, false, None).check_resumable(
        &layout_a,
        &deck,
        None,
        Some(&mut journal),
    );
    assert_eq!(complete.stats.rules_completed, deck.rules().len());
    drop(journal);

    let mut journal =
        CheckpointJournal::open_dir(&dir, RunKey::compute(&layout_b, &deck)).expect("reopen");
    assert!(
        journal.is_empty(),
        "layout B must not see layout A's records"
    );
    let fresh = engine(Mode::Sequential, false, None).check_resumable(
        &layout_b,
        &deck,
        None,
        Some(&mut journal),
    );
    assert_eq!(fresh.stats.rules_resumed, 0);
    let baseline = engine(Mode::Sequential, false, None).check(&layout_b, &deck);
    assert_eq!(fresh.violations, baseline.violations);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming twice in a row is idempotent: a second resume restores the
/// same rules and reports the same violations.
#[test]
fn double_resume_is_idempotent() {
    let layout = generate_layout(&DesignSpec::paper("uart").expect("paper design"));
    let dir = fresh_dir("double");
    let (_killed, first) = kill_then_resume(&layout, Mode::Parallel, true, None, 2, &dir);

    let deck = deck();
    let mut journal =
        CheckpointJournal::open_dir(&dir, RunKey::compute(&layout, &deck)).expect("reopen");
    assert_eq!(
        journal.len(),
        journal_len_all_signable(&deck),
        "first resume completed the journal"
    );
    let second = engine(Mode::Parallel, true, None).check_resumable(
        &layout,
        &deck,
        None,
        Some(&mut journal),
    );
    assert_eq!(second.stats.rules_resumed, journal_len_all_signable(&deck));
    assert_eq!(second.violations, first.violations);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every signable rule in `deck` (the resumable universe).
fn journal_len_all_signable(deck: &RuleDeck) -> usize {
    deck.rules()
        .iter()
        .filter(|r| rule_signature(r).is_some())
        .count()
}
