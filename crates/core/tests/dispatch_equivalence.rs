//! Dispatch-layer equivalence tests.
//!
//! PR 9 rebuilt the launch path — persistent pooled workers instead of
//! per-launch scoped threads, fused batched enqueue instead of
//! launch-at-a-time, and recorded launch graphs replayed across rules.
//! None of that may change *what* the engine reports: every variant
//! below must produce byte-identical canonical violation sets against
//! the plain sequential baseline, across engine modes, planner on/off,
//! host thread counts, and 25 seeded fault schedules. Per-stream
//! fault-injection ordinals are part of the contract — a fused batch
//! ticks the same alloc/transfer/launch ordinals as its unfused
//! expansion (pinned in the xpu stream tests) — but run-level totals
//! are scheduling-dependent, so here only the reported result is
//! asserted.

use odrc::{rule, Engine, EngineOptions, Mode, RuleDeck};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::{Device, DispatchMode, FaultPlan};

/// Several rules per layer so the planner has row sets to share — the
/// two M1 spacing rules replay one launch graph, width/area share the
/// polygon buffer, and M2 gets its own graph.
fn shared_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M1)
            .space()
            .when_projection_at_least(tech::M1_WIDTH)
            .greater_than(tech::M1_SPACE)
            .named("M1.S.2"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ])
}

fn options(planner: bool, host_threads: usize, fusion: bool, launch_graph: bool) -> EngineOptions {
    EngineOptions {
        planner,
        host_threads: Some(host_threads),
        fusion,
        launch_graph,
        retry_backoff_ms: 0,
        ..EngineOptions::default()
    }
}

/// The full variant matrix: modes × planner × host threads {1,2,8} ×
/// {fusion, launch graph} on/off, all against the plain sequential
/// baseline.
#[test]
fn dispatch_variants_are_byte_identical() {
    for design_seed in [7u64, 23] {
        let layout = generate_layout(&DesignSpec::tiny(design_seed));
        let deck = shared_deck();
        let baseline = Engine::sequential().check(&layout, &deck).violations;
        for mode in [Mode::Sequential, Mode::Parallel] {
            for planner in [false, true] {
                for host_threads in [1usize, 2, 8] {
                    for (fusion, launch_graph) in
                        [(true, true), (false, true), (true, false), (false, false)]
                    {
                        let engine = match mode {
                            Mode::Sequential => Engine::sequential(),
                            Mode::Parallel => Engine::parallel_on(Device::new(3)),
                        };
                        let got = engine
                            .with_options(options(planner, host_threads, fusion, launch_graph))
                            .check(&layout, &deck)
                            .violations;
                        assert_eq!(
                            got, baseline,
                            "design {design_seed} mode {mode:?} planner {planner} \
                             host_threads {host_threads} fusion {fusion} \
                             launch_graph {launch_graph} diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Pooled (persistent worker) and scoped (thread-per-launch) dispatch
/// must agree — the pool is a scheduling change, not a semantic one.
#[test]
fn pooled_and_scoped_dispatch_agree() {
    let layout = generate_layout(&DesignSpec::tiny(13));
    let deck = shared_deck();
    for planner in [false, true] {
        let pooled = Engine::parallel_on(Device::new(3))
            .with_options(options(planner, 2, true, true))
            .check(&layout, &deck);
        let device = Device::new(3);
        device.set_dispatch_mode(DispatchMode::Scoped);
        let scoped = Engine::parallel_on(device)
            .with_options(options(planner, 2, true, true))
            .check(&layout, &deck);
        assert_eq!(
            pooled.violations, scoped.violations,
            "planner {planner}: dispatch mode changed the violation set"
        );
    }
}

/// Under 25 seeded fault schedules, every dispatch variant reports the
/// clean baseline, with degradation accounted iff faults actually
/// fired. (The *per-stream* guarantee that a fused batch ticks the
/// same fault ordinals as its unfused expansion is pinned by the xpu
/// stream tests; the *total* fired across a run is not comparable
/// between variants, because concurrent streams race for the
/// device-global ordinal counter — only the reported result is
/// contractual.)
#[test]
fn fault_seeds_agree_across_dispatch_variants() {
    let layout = generate_layout(&DesignSpec::tiny(11));
    let deck = shared_deck();
    let clean = Engine::sequential().check(&layout, &deck).violations;
    for fault_seed in 0u64..25 {
        for (fusion, dispatch, launch_graph) in [
            (false, DispatchMode::Pooled, true),
            (true, DispatchMode::Pooled, true),
            (false, DispatchMode::Scoped, true),
            (true, DispatchMode::Scoped, true),
            (true, DispatchMode::Pooled, false),
        ] {
            let device = Device::new(3);
            device.set_dispatch_mode(dispatch);
            device.set_fault_plan(Some(FaultPlan::from_seed(fault_seed, 6)));
            let report = Engine::parallel_on(device.clone())
                .with_options(options(true, 2, fusion, launch_graph))
                .check(&layout, &deck);
            assert_eq!(
                report.violations, clean,
                "seed {fault_seed} fusion {fusion} dispatch {dispatch:?} \
                 launch_graph {launch_graph} changed the results"
            );
            assert_eq!(
                report.stats.degraded(),
                device.faults_injected() > 0,
                "seed {fault_seed} fusion {fusion} dispatch {dispatch:?} \
                 launch_graph {launch_graph}: degradation must be \
                 reported iff faults fired"
            );
        }
    }
}

/// The new counters surface through `EngineStats`: fused launches in
/// any fused parallel run, and graph replays whenever two rules share a
/// row set with the planner and launch graphs on.
#[test]
fn dispatch_counters_are_reported() {
    let layout = generate_layout(&DesignSpec::tiny(5));
    let deck = shared_deck();
    let fused = Engine::parallel_on(Device::new(3))
        .with_options(options(true, 1, true, true))
        .check(&layout, &deck);
    assert!(
        fused.stats.launches_fused > 0,
        "fused parallel run must count fused launches"
    );
    assert!(
        fused.stats.graph_replays > 0,
        "the two M1 spacing rules share one row set, so the second \
         must replay the recorded graph"
    );

    let unfused = Engine::parallel_on(Device::new(3))
        .with_options(options(true, 1, false, true))
        .check(&layout, &deck);
    assert_eq!(unfused.stats.launches_fused, 0, "fusion off counts none");
    assert_eq!(unfused.violations, fused.violations);

    let no_graph = Engine::parallel_on(Device::new(3))
        .with_options(options(true, 1, true, false))
        .check(&layout, &deck);
    assert_eq!(no_graph.stats.graph_replays, 0, "replay gated off");
    assert_eq!(no_graph.violations, fused.violations);
}
