//! Out-of-core sharded checking properties.
//!
//! The sharded pipeline's contract is *byte-identity*: for ANY memory
//! budget, shard geometry, engine mode, and crash interleaving, the
//! canonical violation set must equal the unbudgeted in-core run's.
//! These tests sweep (budget × shard size × cancel points × modes) and
//! additionally pin down the accounting: shard units conserve exactly
//! across an interrupt/resume pair, a second resume re-checks nothing
//! (idempotence), a zero budget degrades every load without aborting,
//! and an unlimited budget never evicts.

use odrc::{
    rule, rule_signature, CancelToken, CheckpointJournal, Engine, EngineOptions, Mode, RuleDeck,
    RuleStatus, RunKey, Violation,
};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};
use odrc_xpu::Device;
use proptest::prelude::*;
use std::path::PathBuf;

/// Width/area intra rules (whole-rule units) alongside every sharded
/// family: plain and projection-gated spacing, enclosure, and overlap
/// area.
fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .when_projection_at_least(tech::M2_WIDTH)
            .greater_than(tech::M2_SPACE)
            .named("M2.S.2"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V1)
            .overlapping(tech::M2)
            .area_at_least(100)
            .named("V1.M2.OV.1"),
    ])
}

fn engine(mode: Mode, options: EngineOptions) -> Engine {
    match mode {
        Mode::Sequential => Engine::sequential(),
        Mode::Parallel => Engine::parallel_on(Device::new(2)),
    }
    .with_options(options)
}

fn out_of_core_options(budget: Option<u64>, shard_rows: usize) -> EngineOptions {
    EngineOptions {
        memory_budget: budget,
        shard_rows: Some(shard_rows),
        retry_backoff_ms: 0,
        ..EngineOptions::default()
    }
}

fn baseline(mode: Mode, layout: &odrc_db::Layout) -> Vec<Violation> {
    engine(
        mode,
        EngineOptions {
            retry_backoff_ms: 0,
            ..EngineOptions::default()
        },
    )
    .check(layout, &deck())
    .violations
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odrc-ooc-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shard count of each deck rule under this plan geometry, via a
/// single-rule out-of-core run (the plan is a pure function of layout,
/// rule, and `shard_rows`, so these counts are exact). Intra rules
/// count zero — they are whole-rule units.
fn per_rule_shards(layout: &odrc_db::Layout, deck: &RuleDeck, shard_rows: usize) -> Vec<usize> {
    deck.rules()
        .iter()
        .map(|r| {
            if r.is_intra_polygon() {
                0
            } else {
                engine(Mode::Sequential, out_of_core_options(None, shard_rows))
                    .check(layout, &RuleDeck::new(vec![r.clone()]))
                    .stats
                    .shards_checked
            }
        })
        .collect()
}

/// Byte-identity of a budgeted sharded run against the in-core run,
/// for any (budget, shard size, mode, pruning) combination — with the
/// shard units actually exercised.
fn equivalence_case(
    seed: u64,
    budget: Option<u64>,
    shard_rows: usize,
    mode: Mode,
    pruning: bool,
) -> Result<(), String> {
    let layout = generate_layout(&DesignSpec::tiny(seed));
    let base = baseline(mode, &layout);
    let mut options = out_of_core_options(budget, shard_rows);
    options.pruning = pruning;
    let report = engine(mode, options).check(&layout, &deck());
    if report.violations != base {
        return Err(format!(
            "sharded run diverged: {} vs {} violations (seed {seed}, budget {budget:?}, \
             shard_rows {shard_rows}, mode {mode:?}, pruning {pruning})",
            report.violations.len(),
            base.len()
        ));
    }
    if report.stats.shards_checked == 0 {
        return Err("sharded run checked no shards".into());
    }
    if budget.is_none() && report.stats.shards_evicted + report.stats.shards_degraded != 0 {
        return Err("unlimited budget must never evict or degrade".into());
    }
    Ok(())
}

/// Cancel at a seeded poll (a rule *or shard* boundary), resume from
/// the journal, and demand: byte-identical final set, exact unit
/// conservation, and double-resume idempotence (a third run restores
/// everything whole and checks nothing).
fn kill_resume_case(
    seed: u64,
    budget: Option<u64>,
    shard_rows: usize,
    mode: Mode,
    polls: usize,
    tag: &str,
) -> Result<(), String> {
    let layout = generate_layout(&DesignSpec::tiny(seed));
    let deck = deck();
    let base = baseline(mode, &layout);
    let run_key = RunKey::compute(&layout, &deck);
    let counts = per_rule_shards(&layout, &deck, shard_rows);
    let total_shards: usize = counts.iter().sum();

    // The uninterrupted out-of-core run agrees with the per-rule plan.
    let full = engine(mode, out_of_core_options(budget, shard_rows)).check(&layout, &deck);
    if full.violations != base {
        return Err("uninterrupted sharded run diverged from in-core baseline".into());
    }
    if full.stats.shards_checked != total_shards {
        return Err(format!(
            "full run checked {} shards, per-rule plans sum to {total_shards}",
            full.stats.shards_checked
        ));
    }

    let dir = fresh_dir(tag);
    // Run 1: cancelled at a deterministic poll boundary.
    let mut journal = CheckpointJournal::open_dir(&dir, run_key).map_err(|e| e.to_string())?;
    let interrupted = engine(mode, out_of_core_options(budget, shard_rows))
        .with_cancel(CancelToken::after_polls(polls))
        .check_resumable(&layout, &deck, None, Some(&mut journal));
    drop(journal);

    // Shard units the first run completed inside rules it *finished*
    // (their whole-rule records supersede the shard records on resume)
    // versus inside the rule it was cancelled out of (these must be
    // restored shard by shard).
    let finished_shards: usize = interrupted
        .rule_status
        .iter()
        .zip(&counts)
        .filter(|((_, s), _)| *s == RuleStatus::Completed)
        .map(|(_, n)| *n)
        .sum();
    let mid_rule_shards = interrupted.stats.shards_checked - finished_shards;

    // Run 2: resume. Every journaled unit restores; the rest re-runs.
    let mut journal = CheckpointJournal::open_dir(&dir, run_key).map_err(|e| e.to_string())?;
    let resumed = engine(mode, out_of_core_options(budget, shard_rows)).check_resumable(
        &layout,
        &deck,
        None,
        Some(&mut journal),
    );
    drop(journal);
    if resumed.interrupted.is_some() {
        return Err("resume run was itself interrupted".into());
    }
    if resumed.violations != base {
        return Err(format!(
            "resumed violations diverged (seed {seed}, polls {polls}, shard_rows {shard_rows}, \
             mode {mode:?}): {} vs {}",
            resumed.violations.len(),
            base.len()
        ));
    }
    let completed_rules = interrupted
        .rule_status
        .iter()
        .zip(deck.rules())
        .filter(|((_, s), r)| *s == RuleStatus::Completed && rule_signature(r).is_some())
        .count();
    if resumed.stats.rules_resumed != completed_rules {
        return Err(format!(
            "resume restored {} whole rules, first run completed {completed_rules}",
            resumed.stats.rules_resumed
        ));
    }
    if resumed.stats.shards_resumed != mid_rule_shards {
        return Err(format!(
            "resume restored {} shards, first run journaled {mid_rule_shards} mid-rule \
             (seed {seed}, polls {polls}, shard_rows {shard_rows}, mode {mode:?})",
            resumed.stats.shards_resumed
        ));
    }
    if resumed.stats.shards_checked != total_shards - finished_shards - mid_rule_shards {
        return Err(format!(
            "resume checked {} shards, expected total {total_shards} - finished \
             {finished_shards} - restored {mid_rule_shards}",
            resumed.stats.shards_checked
        ));
    }

    // Run 3: double resume — everything restores whole, nothing runs.
    let mut journal = CheckpointJournal::open_dir(&dir, run_key).map_err(|e| e.to_string())?;
    let again = engine(mode, out_of_core_options(budget, shard_rows)).check_resumable(
        &layout,
        &deck,
        None,
        Some(&mut journal),
    );
    drop(journal);
    if again.violations != base {
        return Err("double-resume violations diverged".into());
    }
    if again.stats.shards_checked != 0 || again.stats.shards_resumed != 0 {
        return Err(format!(
            "double resume must restore whole rules only; checked {} shards, resumed {}",
            again.stats.shards_checked, again.stats.shards_resumed
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn sharded_equals_in_core(
        seed in 0u64..12,
        budget_class in 0usize..3,
        shard_rows in 1usize..5,
        parallel in proptest::bool::ANY,
        pruning in proptest::bool::ANY,
    ) {
        let budget = [None, Some(16 << 10), Some(4 << 20)][budget_class];
        let mode = if parallel { Mode::Parallel } else { Mode::Sequential };
        if let Err(msg) = equivalence_case(seed, budget, shard_rows, mode, pruning) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn kill_resume_is_byte_identical(
        seed in 0u64..6,
        budget_class in 0usize..2,
        shard_rows in 1usize..4,
        parallel in proptest::bool::ANY,
        polls in 1usize..24,
    ) {
        let budget = [None, Some(16 << 10)][budget_class];
        let mode = if parallel { Mode::Parallel } else { Mode::Sequential };
        let tag = format!("kr-{seed}-{budget_class}-{shard_rows}-{parallel}-{polls}");
        if let Err(msg) = kill_resume_case(seed, budget, shard_rows, mode, polls, &tag) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// A zero budget can cache nothing: every shard load degrades to
/// build-check-drop, nothing evicts (nothing was resident), and the
/// result still matches the in-core run.
#[test]
fn zero_budget_degrades_every_load_and_stays_correct() {
    let layout = generate_layout(&DesignSpec::tiny(7));
    let base = baseline(Mode::Sequential, &layout);
    let report = engine(Mode::Sequential, out_of_core_options(Some(0), 2)).check(&layout, &deck());
    assert_eq!(report.violations, base);
    assert!(report.stats.shards_built > 0);
    assert_eq!(report.stats.shards_degraded, report.stats.shards_built);
    assert_eq!(report.stats.shards_evicted, 0);
}

/// A small (but non-zero) budget must evict under pressure and still
/// produce the in-core result.
#[test]
fn tight_budget_evicts_and_stays_correct() {
    let layout = generate_layout(&DesignSpec::tiny(3));
    let base = baseline(Mode::Sequential, &layout);
    let report =
        engine(Mode::Sequential, out_of_core_options(Some(24 << 10), 1)).check(&layout, &deck());
    assert_eq!(report.violations, base);
    assert!(
        report.stats.shards_evicted > 0,
        "expected evictions under a 24 KiB budget; built {} degraded {}",
        report.stats.shards_built,
        report.stats.shards_degraded
    );
}

/// Worker slices cover the shard space exactly: every worker journals
/// its own shards, the parent merges the worker journals, and the
/// merged restore is byte-identical to in-core with no shard re-run.
#[test]
fn worker_slices_merge_to_in_core_result() {
    let layout = generate_layout(&DesignSpec::tiny(11));
    let deck = deck();
    let base = baseline(Mode::Sequential, &layout);
    let run_key = RunKey::compute(&layout, &deck);
    let dir = fresh_dir("slices");
    let workers = 3usize;
    for w in 0..workers {
        let mut journal =
            CheckpointJournal::open_dir(&dir.join(format!("worker-{w}")), run_key).unwrap();
        let mut options = out_of_core_options(None, 2);
        options.shard_slice = Some((w, workers));
        let report = engine(Mode::Sequential, options).check_resumable(
            &layout,
            &deck,
            None,
            Some(&mut journal),
        );
        // A slice completes only the whole rules it owns; sharded
        // rules stay partial in every worker (their shards are in the
        // journal, not the report).
        assert!(report
            .rule_status
            .iter()
            .any(|(_, s)| *s == RuleStatus::Interrupted));
    }
    // Parent: merge the worker journals and restore everything.
    let mut merged = CheckpointJournal::open_dir(&dir, run_key).unwrap();
    for w in 0..workers {
        merged.absorb_dir(&dir.join(format!("worker-{w}"))).unwrap();
    }
    let report = engine(Mode::Sequential, out_of_core_options(None, 2)).check_resumable(
        &layout,
        &deck,
        None,
        Some(&mut merged),
    );
    drop(merged);
    assert_eq!(report.violations, base);
    assert!(
        report.stats.shards_resumed > 0,
        "sharded rules must restore from worker shards"
    );
    assert_eq!(
        report.stats.shards_checked, 0,
        "no shard should re-run after the merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
