//! # OpenDRC — an efficient design rule checking engine
//!
//! A from-scratch Rust reproduction of *"OpenDRC: An Efficient
//! Open-Source Design Rule Checking Engine with Hierarchical GPU
//! Acceleration"* (He et al., DAC 2023).
//!
//! The engine checks hierarchical mask layouts against a deck of design
//! rules:
//!
//! * layouts are kept **hierarchical**, augmented with layer-wise
//!   bounding volume hierarchies (`odrc-db`, §IV-A of the paper),
//! * an **adaptive row-based partition** splits the layout into
//!   independent regions for pruning and parallelism (`odrc-infra`,
//!   §IV-B),
//! * redundant checks are **pruned** by reusing results across cell
//!   instances (§IV-C),
//! * the **sequential mode** runs cell-level MBR sweeps plus edge-based
//!   checks on the CPU (§IV-D),
//! * the **parallel mode** launches edge-based check kernels on a
//!   device, row by row, choosing a brute-force or a two-phase
//!   sweepline executor per row (`odrc-xpu`, §IV-E).
//!
//! # Quickstart
//!
//! Mirroring the paper's Listing 1:
//!
//! ```
//! use odrc::{rules::rule, Engine, RuleDeck};
//!
//! // let db = odrc_gdsii::read_file("path-to-gdsii")?;
//! # let design = odrc_layoutgen::generate(&odrc_layoutgen::DesignSpec::tiny(42));
//! # let db = design.library;
//! let layout = odrc_db::Layout::from_library(&db)?;
//!
//! let mut deck = RuleDeck::default();
//! deck.add_rules([
//!     rule().polygons().is_rectilinear(),
//!     rule().layer(19).width().greater_than(18),
//!     rule().layer(20).polygons().ensures("has-name", |p| p.name.is_some()),
//! ]);
//!
//! let report = Engine::sequential().check(&layout, &deck);
//! println!("{} violations", report.violations.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod checkpoint;
pub mod checks;
pub mod deck_parser;
pub mod delta;
pub mod engine;
pub mod exec;
pub mod markers;
pub mod parallel;
pub mod plan;
pub mod rules;
pub mod scene;
pub mod sequential;
pub mod shard;
pub mod violation;

pub use cache::{rule_signature, CacheKeys, ResultCache, CACHE_FILE};
pub use checkpoint::{CheckpointJournal, RunKey, JOURNAL_FILE};
pub use deck_parser::{parse_deck, ParseDeckError, ParseDeckErrorKind};
pub use delta::{dirty_rects, DeltaReport};
pub use engine::{
    CheckReport, Engine, EngineOptions, EngineStats, Mode, PairIndex, ProgressFn, RuleStatus,
};
pub use odrc_infra::{install_signal_handlers, CancelReason, CancelToken};
pub use plan::ExecutionPlan;
pub use rules::{rule, Rule, RuleDeck, RuleKind};
pub use violation::{canonicalize, Violation, ViolationKind};
