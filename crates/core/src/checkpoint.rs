//! Checkpoint journal for interrupted runs.
//!
//! A long check that is cancelled (SIGINT, `--deadline`) should not
//! forfeit the rules it already finished. The engine appends each
//! completed rule's canonical violation set to an on-disk *journal*;
//! a later `--resume` run opens the journal, restores every completed
//! rule's results without re-checking, and re-runs only what is
//! missing. Because the journal stores *canonical* (sorted, deduped)
//! per-rule sets and the final report re-canonicalizes the union, an
//! interrupted-then-resumed run is byte-identical to an uninterrupted
//! one.
//!
//! Records are keyed by `(deck signature, layout content hash, rule
//! signature, shard)` — the same content-addressed discipline as the
//! result cache ([`crate::cache`]): edit the layout or the deck and
//! stale checkpoints simply stop matching. Rules without a stable
//! signature (user `ensures` predicates are host closures) are never
//! journaled.
//!
//! Since format v3 the key carries a *shard* coordinate so out-of-core
//! runs can checkpoint mid-rule: a sharded checker records each
//! `(rule, shard)` unit as it finishes, and a whole-rule record (the
//! sentinel shard id [`WHOLE_RULE_SHARD`]) supersedes them when the
//! rule completes. A v2 file is healed on open to whole-rule v3
//! records, so old checkpoints still resume at rule granularity.
//!
//! The file format is append-oriented so a kill at any byte offset is
//! survivable: the framing (magic header, per-record checksum, lenient
//! open that heals a torn or corrupt tail to the longest valid prefix)
//! is [`odrc_infra::RecordLog`] — the shared crash-safe record-log
//! idiom this journal pioneered, now also backing the serve layer's
//! durable job journal. This module owns only the record *payload*
//! encoding: run key, rule identity, and the canonical violation set.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use odrc_db::Layout;
use odrc_geometry::Rect;
use odrc_infra::RecordLog;

use crate::cache::{bad_data, kind_from_u8, kind_to_u8, rule_signature, ByteReader, Sig};
use crate::rules::RuleDeck;
use crate::violation::Violation;

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "odrc-journal.bin";

/// Format version 3: v1 carried hand-rolled framing with a trailing
/// checksum per record; v2 frames payloads through [`RecordLog`]; v3
/// inserts a `(shard id, shard count)` pair after the rule signature
/// so out-of-core runs checkpoint per `(rule, shard)`. A leftover v1
/// file fails the magic check and heals to an empty journal; a v2
/// file is converted in place to whole-rule v3 records on open.
const MAGIC: &[u8; 8] = b"ODRCJNL3";

/// The previous format's magic, recognised by [`CheckpointJournal::open_dir`]
/// for in-place conversion.
const V2_MAGIC: &[u8; 8] = b"ODRCJNL2";

/// Sentinel shard id of a whole-rule record. A record carrying this id
/// (with shard count 0) means the rule's *complete* canonical set was
/// journaled, superseding any per-shard records of the same rule.
pub const WHOLE_RULE_SHARD: u32 = u32::MAX;

/// Bytes per serialized violation: kind (1) + 4 coordinates (4×4) +
/// measured (8). Used to bound pre-allocation on load.
const ENTRY_BYTES: usize = 25;

/// Identity of one (layout, deck) run. Checkpoints recorded under a
/// different key are invisible to this run — resuming against an
/// edited layout or deck re-checks everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunKey {
    /// Ordered FNV over every rule's signature (with a marker for
    /// unsignable rules, so adding an `ensures` rule changes the key).
    pub deck_sig: u64,
    /// FNV over the layout's per-cell subtree content hashes.
    pub layout_hash: u64,
}

impl RunKey {
    /// Computes the run key for a layout/deck pair.
    pub fn compute(layout: &Layout, deck: &RuleDeck) -> RunKey {
        let mut d = Sig::new();
        for rule in deck.rules() {
            match rule_signature(rule) {
                Some(sig) => {
                    d.i64(1).i64(sig as i64);
                }
                None => {
                    // Unsignable rules still shape deck identity.
                    d.i64(0).bytes(rule.name.as_bytes());
                }
            }
        }
        let mut l = Sig::new();
        for h in layout.subtree_hashes() {
            l.i64(h as i64);
        }
        RunKey {
            deck_sig: d.0,
            layout_hash: l.0,
        }
    }
}

/// A journaled unit's payload: the rule name it was recorded under and
/// its canonical violations.
type JournalEntry = (String, Arc<Vec<Violation>>);

/// An append-oriented journal of completed rules for one run.
///
/// See the [module docs](self) for the format and recovery story.
#[derive(Debug)]
pub struct CheckpointJournal {
    log: RecordLog,
    run: RunKey,
    /// Completed rules of *this* run: rule signature → entry.
    entries: HashMap<u64, JournalEntry>,
    /// Completed `(rule, shard)` units of this run: (rule signature,
    /// shard count, shard id) → canonical shard-local violations. Only
    /// meaningful while the whole rule has not completed; a whole-rule
    /// record supersedes these on restore.
    shards: HashMap<(u64, u32, u32), JournalEntry>,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal in `dir` for the given run.
    ///
    /// Creates the directory if needed. An existing journal is parsed
    /// leniently ([`RecordLog`] drops and heals a torn or corrupt
    /// tail), so one bad tail never poisons future appends. Valid
    /// records from *other* runs are preserved on disk but not loaded.
    /// A v2-format file is converted in place: every v2 record becomes
    /// a whole-rule v3 record, so pre-v3 checkpoints keep resuming at
    /// rule granularity.
    pub fn open_dir(dir: &Path, run: RunKey) -> io::Result<CheckpointJournal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let (log, records) = match read_magic(&path)?.as_deref() {
            Some(v2) if v2 == V2_MAGIC => {
                let (mut log, old) = RecordLog::open(&path, V2_MAGIC)?;
                let upgraded: Vec<Vec<u8>> = old.iter().filter_map(|r| upgrade_v2(r)).collect();
                log.rewrite(MAGIC, upgraded.iter().map(Vec::as_slice))?;
                (log, upgraded)
            }
            _ => RecordLog::open(&path, MAGIC)?,
        };
        let mut entries = HashMap::new();
        let mut shards = HashMap::new();
        for rec in &records {
            // A record with an intact checksum but an undecodable
            // payload (a future format extension, say) is skipped, not
            // fatal — a checkpoint is an accelerator, never a veto.
            if let Ok(parsed) = parse_record(rec) {
                if parsed.key != run {
                    continue;
                }
                if parsed.shard_id == WHOLE_RULE_SHARD {
                    entries.insert(parsed.rule_sig, (parsed.name, Arc::new(parsed.violations)));
                } else {
                    shards.insert(
                        (parsed.rule_sig, parsed.shard_count, parsed.shard_id),
                        (parsed.name, Arc::new(parsed.violations)),
                    );
                }
            }
        }
        Ok(CheckpointJournal {
            log,
            run,
            entries,
            shards,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// The run key this journal was opened for.
    pub fn run_key(&self) -> RunKey {
        self.run
    }

    /// Number of completed rules restored or recorded for this run.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rule of this run has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journaled canonical violations of the rule with signature
    /// `rule_sig`, if that rule already completed under this run key.
    pub fn completed(&self, rule_sig: u64) -> Option<&Arc<Vec<Violation>>> {
        self.entries.get(&rule_sig).map(|(_, v)| v)
    }

    /// The journaled violations of one `(rule, shard)` unit, if that
    /// shard already completed under this run key *with the same shard
    /// count*. A run that re-plans to a different shard count sees
    /// nothing — shard ids are only meaningful within one plan.
    pub fn completed_shard(
        &self,
        rule_sig: u64,
        shard_count: u32,
        shard_id: u32,
    ) -> Option<&Arc<Vec<Violation>>> {
        self.shards
            .get(&(rule_sig, shard_count, shard_id))
            .map(|(_, v)| v)
    }

    /// How many shards of `rule_sig` (under `shard_count`-way
    /// sharding) have completed so far.
    pub fn shard_progress(&self, rule_sig: u64, shard_count: u32) -> usize {
        self.shards
            .keys()
            .filter(|(sig, count, _)| *sig == rule_sig && *count == shard_count)
            .count()
    }

    /// Names of the completed rules restored or recorded so far.
    pub fn completed_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.values().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Appends one completed rule's canonical violation set and
    /// flushes it to stable storage, so a kill immediately after still
    /// finds the record on resume.
    pub fn record(
        &mut self,
        rule_name: &str,
        rule_sig: u64,
        violations: &[Violation],
    ) -> io::Result<()> {
        let rec = self.encode(rule_name, rule_sig, WHOLE_RULE_SHARD, 0, violations);
        self.log.append(&rec)?;
        let restored = violations
            .iter()
            .map(|v| Violation {
                rule: rule_name.to_string(),
                ..v.clone()
            })
            .collect();
        self.entries
            .insert(rule_sig, (rule_name.to_string(), Arc::new(restored)));
        Ok(())
    }

    /// Appends one completed `(rule, shard)` unit's violations and
    /// flushes them, so a kill mid-rule loses at most the in-flight
    /// shard. `shard_id` must be a real shard (`< shard_count`), never
    /// the whole-rule sentinel.
    pub fn record_shard(
        &mut self,
        rule_name: &str,
        rule_sig: u64,
        shard_count: u32,
        shard_id: u32,
        violations: &[Violation],
    ) -> io::Result<()> {
        debug_assert!(shard_id < shard_count);
        let rec = self.encode(rule_name, rule_sig, shard_id, shard_count, violations);
        self.log.append(&rec)?;
        let restored = violations
            .iter()
            .map(|v| Violation {
                rule: rule_name.to_string(),
                ..v.clone()
            })
            .collect();
        self.shards.insert(
            (rule_sig, shard_count, shard_id),
            (rule_name.to_string(), Arc::new(restored)),
        );
        Ok(())
    }

    /// Merges another journal directory's records *for this run key*
    /// into this journal: every whole-rule and `(rule, shard)` record
    /// held by `dir` and missing here is re-recorded (and flushed).
    /// Records are absorbed in sorted key order, so the merged file is
    /// deterministic regardless of worker completion order. This is
    /// the parent side of the multi-process out-of-core mode: workers
    /// journal into private directories (one writer per file), and the
    /// parent absorbs them before its final restore pass.
    pub fn absorb_dir(&mut self, dir: &Path) -> io::Result<()> {
        let other = CheckpointJournal::open_dir(dir, self.run)?;
        let mut entries: Vec<_> = other.entries.iter().collect();
        entries.sort_by_key(|(sig, _)| **sig);
        for (sig, (name, vs)) in entries {
            if !self.entries.contains_key(sig) {
                self.record(name, *sig, vs)?;
            }
        }
        let mut shards: Vec<_> = other.shards.iter().collect();
        shards.sort_by_key(|(key, _)| **key);
        for (&(sig, count, id), (name, vs)) in shards {
            if !self.shards.contains_key(&(sig, count, id)) {
                self.record_shard(name, sig, count, id, vs)?;
            }
        }
        Ok(())
    }

    /// Serializes one record payload (v3 layout).
    fn encode(
        &self,
        rule_name: &str,
        rule_sig: u64,
        shard_id: u32,
        shard_count: u32,
        violations: &[Violation],
    ) -> Vec<u8> {
        let mut rec = Vec::with_capacity(44 + rule_name.len() + violations.len() * ENTRY_BYTES);
        rec.extend_from_slice(&self.run.deck_sig.to_le_bytes());
        rec.extend_from_slice(&self.run.layout_hash.to_le_bytes());
        rec.extend_from_slice(&rule_sig.to_le_bytes());
        rec.extend_from_slice(&shard_id.to_le_bytes());
        rec.extend_from_slice(&shard_count.to_le_bytes());
        rec.extend_from_slice(&(rule_name.len() as u32).to_le_bytes());
        rec.extend_from_slice(rule_name.as_bytes());
        rec.extend_from_slice(&(violations.len() as u32).to_le_bytes());
        for v in violations {
            rec.push(kind_to_u8(v.kind));
            for c in [
                v.location.lo().x,
                v.location.lo().y,
                v.location.hi().x,
                v.location.hi().y,
            ] {
                rec.extend_from_slice(&c.to_le_bytes());
            }
            rec.extend_from_slice(&v.measured.to_le_bytes());
        }
        rec
    }
}

/// The first 8 bytes of `path`, or `None` if the file is missing or
/// shorter than a magic.
fn read_magic(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match std::fs::File::open(path) {
        Ok(mut f) => {
            let mut magic = [0u8; 8];
            match io::Read::read_exact(&mut f, &mut magic) {
                Ok(()) => Ok(Some(magic.to_vec())),
                Err(_) => Ok(None),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Converts one v2 record payload to a whole-rule v3 payload by
/// splicing the `(shard id, shard count)` pair in after the rule
/// signature. Undecodable payloads convert to `None` and are dropped —
/// same leniency as the parse path.
fn upgrade_v2(payload: &[u8]) -> Option<Vec<u8>> {
    // v2 layout: deck u64 | layout u64 | rule_sig u64 | name_len u32 |
    // name | count u32 | entries. Validate the shape before splicing.
    let mut r = ByteReader {
        buf: payload,
        pos: 0,
    };
    for _ in 0..3 {
        r.u64().ok()?;
    }
    let name_len = r.u32().ok()? as usize;
    std::str::from_utf8(r.take(name_len).ok()?).ok()?;
    let count = r.u32().ok()? as usize;
    if r.remaining() != count.checked_mul(ENTRY_BYTES)? {
        return None;
    }
    let mut rec = Vec::with_capacity(payload.len() + 8);
    rec.extend_from_slice(&payload[..24]);
    rec.extend_from_slice(&WHOLE_RULE_SHARD.to_le_bytes());
    rec.extend_from_slice(&0u32.to_le_bytes());
    rec.extend_from_slice(&payload[24..]);
    Some(rec)
}

/// One decoded journal record.
struct ParsedRecord {
    key: RunKey,
    rule_sig: u64,
    shard_id: u32,
    shard_count: u32,
    name: String,
    violations: Vec<Violation>,
}

/// Decodes one record payload (framing and checksum already verified
/// by [`RecordLog`]). Trailing or missing bytes are a decode error —
/// the payload must be consumed exactly.
fn parse_record(payload: &[u8]) -> io::Result<ParsedRecord> {
    let mut r = ByteReader {
        buf: payload,
        pos: 0,
    };
    let key = RunKey {
        deck_sig: r.u64()?,
        layout_hash: r.u64()?,
    };
    let rule_sig = r.u64()?;
    let shard_id = r.u32()?;
    let shard_count = r.u32()?;
    if (shard_id == WHOLE_RULE_SHARD) != (shard_count == 0) {
        return Err(bad_data());
    }
    if shard_id != WHOLE_RULE_SHARD && shard_id >= shard_count {
        return Err(bad_data());
    }
    let name_len = r.u32()? as usize;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| bad_data())?
        .to_string();
    let count = r.u32()? as usize;
    // Never trust an untrusted length for pre-allocation: cap it by
    // what the remaining bytes could actually encode.
    let mut violations = Vec::with_capacity(count.min(r.remaining() / ENTRY_BYTES));
    for _ in 0..count {
        let kind = kind_from_u8(r.u8()?).ok_or_else(bad_data)?;
        let (x0, y0) = (r.i32()?, r.i32()?);
        let (x1, y1) = (r.i32()?, r.i32()?);
        let measured = r.i64()?;
        violations.push(Violation {
            rule: name.clone(),
            kind,
            location: Rect::from_coords(x0, y0, x1, y1),
            measured,
        });
    }
    if r.remaining() != 0 {
        return Err(bad_data());
    }
    Ok(ParsedRecord {
        key,
        rule_sig,
        shard_id,
        shard_count,
        name,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ViolationKind;
    use odrc_geometry::Rect;
    use std::path::PathBuf;

    fn run_key(a: u64, b: u64) -> RunKey {
        RunKey {
            deck_sig: a,
            layout_hash: b,
        }
    }

    fn violation(rule: &str, x: i32) -> Violation {
        Violation {
            rule: rule.to_string(),
            kind: ViolationKind::Space,
            location: Rect::from_coords(x, 0, x + 3, 3),
            measured: i64::from(x),
        }
    }

    #[test]
    fn roundtrip_restores_completed_rules() {
        let dir = tempdir("jnl-roundtrip");
        let key = run_key(11, 22);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            assert!(j.is_empty());
            j.record("M1.S", 101, &[violation("M1.S", 4), violation("M1.S", 9)])
                .expect("record");
            j.record("M2.W", 202, &[]).expect("record");
            assert_eq!(j.len(), 2);
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.completed(101).expect("M1.S journaled").as_slice(),
            &[violation("M1.S", 4), violation("M1.S", 9)]
        );
        assert!(j.completed(202).expect("M2.W journaled").is_empty());
        assert_eq!(j.completed(303), None);
        assert_eq!(j.completed_names(), ["M1.S", "M2.W"]);
        cleanup(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_prefix_survives() {
        let dir = tempdir("jnl-torn");
        let key = run_key(1, 2);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
            j.record("B", 2, &[violation("B", 2)]).expect("record");
        }
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).expect("read journal");
        // Tear the file mid-way through the last record.
        let torn = &bytes[..bytes.len() - 5];
        std::fs::write(&path, torn).expect("tear");
        let j = CheckpointJournal::open_dir(&dir, key).expect("lenient open");
        assert_eq!(j.len(), 1, "record B's torn tail must be dropped");
        assert!(j.completed(1).is_some());
        assert_eq!(j.completed(2), None);
        // The rewrite healed the file: reopening parses it fully.
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen healed");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn corrupt_record_is_rejected_by_checksum() {
        let dir = tempdir("jnl-corrupt");
        let key = run_key(7, 7);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = MAGIC.len() + 30;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let j = CheckpointJournal::open_dir(&dir, key).expect("lenient open");
        assert!(j.is_empty(), "flipped bit must invalidate the record");
        // Appending after healing works.
        cleanup(&dir);
    }

    #[test]
    fn wrong_run_key_is_invisible_but_preserved() {
        let dir = tempdir("jnl-runkey");
        let old = run_key(1, 1);
        {
            let mut j = CheckpointJournal::open_dir(&dir, old).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
        }
        // A run against an edited layout sees nothing...
        let j = CheckpointJournal::open_dir(&dir, run_key(1, 99)).expect("open new");
        assert!(j.is_empty());
        drop(j);
        // ...but the old run's record is still on disk.
        let j = CheckpointJournal::open_dir(&dir, old).expect("reopen old");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn garbage_file_heals_to_empty_journal() {
        let dir = tempdir("jnl-garbage");
        let path = dir.join(JOURNAL_FILE);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, b"not a journal at all").expect("write garbage");
        let key = run_key(3, 4);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            assert!(j.is_empty());
            j.record("A", 1, &[]).expect("record after heal");
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn rerecorded_rule_takes_latest() {
        let dir = tempdir("jnl-latest");
        let key = run_key(5, 6);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
            j.record("A", 1, &[violation("A", 2)]).expect("re-record");
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.completed(1).expect("A").as_slice(), &[violation("A", 2)]);
        cleanup(&dir);
    }

    #[test]
    fn run_key_tracks_deck_and_layout_content() {
        use crate::rules::rule;
        let design = odrc_layoutgen::generate(&odrc_layoutgen::DesignSpec::tiny(42));
        let layout = Layout::from_library(&design.library).expect("layout");
        let mut deck = RuleDeck::default();
        deck.add_rules([rule().layer(1).width().greater_than(10)]);
        let a = RunKey::compute(&layout, &deck);
        let b = RunKey::compute(&layout, &deck);
        assert_eq!(a, b, "run key is deterministic");
        let mut deck2 = RuleDeck::default();
        deck2.add_rules([rule().layer(1).width().greater_than(12)]);
        assert_ne!(
            a,
            RunKey::compute(&layout, &deck2),
            "editing the deck changes the key"
        );
        let mut deck3 = RuleDeck::default();
        deck3.add_rules([
            rule().layer(1).width().greater_than(10),
            rule().polygons().ensures("named", |p| p.name.is_some()),
        ]);
        assert_ne!(
            a,
            RunKey::compute(&layout, &deck3),
            "unsignable rules still shape deck identity"
        );
    }

    #[test]
    fn shard_records_roundtrip_and_track_shard_count() {
        let dir = tempdir("jnl-shards");
        let key = run_key(9, 9);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record_shard("M1.S", 101, 4, 0, &[violation("M1.S", 1)])
                .expect("record shard 0");
            j.record_shard("M1.S", 101, 4, 2, &[])
                .expect("record shard 2");
            assert_eq!(j.shard_progress(101, 4), 2);
            // Shard records do not make the rule "completed".
            assert_eq!(j.completed(101), None);
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(
            j.completed_shard(101, 4, 0).expect("shard 0").as_slice(),
            &[violation("M1.S", 1)]
        );
        assert!(j.completed_shard(101, 4, 2).expect("shard 2").is_empty());
        assert_eq!(j.completed_shard(101, 4, 1), None);
        // A different shard count is a different plan: invisible.
        assert_eq!(j.completed_shard(101, 8, 0), None);
        assert_eq!(j.shard_progress(101, 4), 2);
        assert_eq!(j.shard_progress(101, 8), 0);
        cleanup(&dir);
    }

    #[test]
    fn whole_rule_record_supersedes_shards() {
        let dir = tempdir("jnl-supersede");
        let key = run_key(10, 10);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record_shard("A", 1, 2, 0, &[violation("A", 1)])
                .expect("shard");
            j.record("A", 1, &[violation("A", 1), violation("A", 5)])
                .expect("whole");
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(
            j.completed(1).expect("whole rule").as_slice(),
            &[violation("A", 1), violation("A", 5)]
        );
        cleanup(&dir);
    }

    #[test]
    fn v2_journal_heals_to_whole_rule_v3_records() {
        let dir = tempdir("jnl-v2heal");
        let key = run_key(21, 22);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        // Hand-write a v2 file: magic + one framed v2 record.
        let mut payload = Vec::new();
        payload.extend_from_slice(&key.deck_sig.to_le_bytes());
        payload.extend_from_slice(&key.layout_hash.to_le_bytes());
        payload.extend_from_slice(&77u64.to_le_bytes());
        payload.extend_from_slice(&(3u32).to_le_bytes());
        payload.extend_from_slice(b"OLD");
        payload.extend_from_slice(&1u32.to_le_bytes());
        let v = violation("OLD", 4);
        payload.push(super::kind_to_u8(v.kind));
        for c in [
            v.location.lo().x,
            v.location.lo().y,
            v.location.hi().x,
            v.location.hi().y,
        ] {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        payload.extend_from_slice(&v.measured.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(V2_MAGIC);
        bytes.extend_from_slice(&odrc_infra::RecordLog::frame(&payload));
        std::fs::write(&path, &bytes).expect("write v2");

        let mut j = CheckpointJournal::open_dir(&dir, key).expect("open heals v2");
        assert_eq!(
            j.completed(77).expect("v2 record restored").as_slice(),
            &[violation("OLD", 4)]
        );
        // The file is now v3 on disk and accepts v3 appends.
        assert_eq!(&std::fs::read(&path).expect("read")[..8], MAGIC);
        j.record_shard("NEW", 88, 2, 1, &[]).expect("v3 append");
        drop(j);
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert!(j.completed(77).is_some());
        assert!(j.completed_shard(88, 2, 1).is_some());
        cleanup(&dir);
    }

    #[test]
    fn v2_heal_drops_undecodable_records() {
        let dir = tempdir("jnl-v2garbled");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        // A v2 file whose record has a valid frame checksum but an
        // undecodable payload: converted to nothing, not an error.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(V2_MAGIC);
        bytes.extend_from_slice(&odrc_infra::RecordLog::frame(b"short"));
        std::fs::write(&path, &bytes).expect("write");
        let j = CheckpointJournal::open_dir(&dir, run_key(1, 1)).expect("open");
        assert!(j.is_empty());
        cleanup(&dir);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cleanup(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }
}
