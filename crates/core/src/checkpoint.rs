//! Checkpoint journal for interrupted runs.
//!
//! A long check that is cancelled (SIGINT, `--deadline`) should not
//! forfeit the rules it already finished. The engine appends each
//! completed rule's canonical violation set to an on-disk *journal*;
//! a later `--resume` run opens the journal, restores every completed
//! rule's results without re-checking, and re-runs only what is
//! missing. Because the journal stores *canonical* (sorted, deduped)
//! per-rule sets and the final report re-canonicalizes the union, an
//! interrupted-then-resumed run is byte-identical to an uninterrupted
//! one.
//!
//! Records are keyed by `(deck signature, layout content hash, rule
//! signature)` — the same content-addressed discipline as the result
//! cache ([`crate::cache`]): edit the layout or the deck and stale
//! checkpoints simply stop matching. Rules without a stable signature
//! (user `ensures` predicates are host closures) are never journaled.
//!
//! The file format is append-oriented so a kill at any byte offset is
//! survivable: the framing (magic header, per-record checksum, lenient
//! open that heals a torn or corrupt tail to the longest valid prefix)
//! is [`odrc_infra::RecordLog`] — the shared crash-safe record-log
//! idiom this journal pioneered, now also backing the serve layer's
//! durable job journal. This module owns only the record *payload*
//! encoding: run key, rule identity, and the canonical violation set.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use odrc_db::Layout;
use odrc_geometry::Rect;
use odrc_infra::RecordLog;

use crate::cache::{bad_data, kind_from_u8, kind_to_u8, rule_signature, ByteReader, Sig};
use crate::rules::RuleDeck;
use crate::violation::Violation;

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "odrc-journal.bin";

/// Format version 2: v1 carried hand-rolled framing with a trailing
/// checksum per record; v2 frames payloads through [`RecordLog`]. A
/// leftover v1 file fails the magic check and heals to an empty
/// journal — the resumed run simply re-checks everything.
const MAGIC: &[u8; 8] = b"ODRCJNL2";

/// Bytes per serialized violation: kind (1) + 4 coordinates (4×4) +
/// measured (8). Used to bound pre-allocation on load.
const ENTRY_BYTES: usize = 25;

/// Identity of one (layout, deck) run. Checkpoints recorded under a
/// different key are invisible to this run — resuming against an
/// edited layout or deck re-checks everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunKey {
    /// Ordered FNV over every rule's signature (with a marker for
    /// unsignable rules, so adding an `ensures` rule changes the key).
    pub deck_sig: u64,
    /// FNV over the layout's per-cell subtree content hashes.
    pub layout_hash: u64,
}

impl RunKey {
    /// Computes the run key for a layout/deck pair.
    pub fn compute(layout: &Layout, deck: &RuleDeck) -> RunKey {
        let mut d = Sig::new();
        for rule in deck.rules() {
            match rule_signature(rule) {
                Some(sig) => {
                    d.i64(1).i64(sig as i64);
                }
                None => {
                    // Unsignable rules still shape deck identity.
                    d.i64(0).bytes(rule.name.as_bytes());
                }
            }
        }
        let mut l = Sig::new();
        for h in layout.subtree_hashes() {
            l.i64(h as i64);
        }
        RunKey {
            deck_sig: d.0,
            layout_hash: l.0,
        }
    }
}

/// An append-oriented journal of completed rules for one run.
///
/// See the [module docs](self) for the format and recovery story.
#[derive(Debug)]
pub struct CheckpointJournal {
    log: RecordLog,
    run: RunKey,
    /// Completed rules of *this* run: rule signature → (rule name,
    /// canonical violations).
    entries: HashMap<u64, (String, Arc<Vec<Violation>>)>,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal in `dir` for the given run.
    ///
    /// Creates the directory if needed. An existing journal is parsed
    /// leniently ([`RecordLog`] drops and heals a torn or corrupt
    /// tail), so one bad tail never poisons future appends. Valid
    /// records from *other* runs are preserved on disk but not loaded.
    pub fn open_dir(dir: &Path, run: RunKey) -> io::Result<CheckpointJournal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let (log, records) = RecordLog::open(&path, MAGIC)?;
        let mut entries = HashMap::new();
        for rec in &records {
            // A record with an intact checksum but an undecodable
            // payload (a future format extension, say) is skipped, not
            // fatal — a checkpoint is an accelerator, never a veto.
            if let Ok((key, rule_sig, name, violations)) = parse_record(rec) {
                if key == run {
                    entries.insert(rule_sig, (name, Arc::new(violations)));
                }
            }
        }
        Ok(CheckpointJournal { log, run, entries })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// The run key this journal was opened for.
    pub fn run_key(&self) -> RunKey {
        self.run
    }

    /// Number of completed rules restored or recorded for this run.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rule of this run has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journaled canonical violations of the rule with signature
    /// `rule_sig`, if that rule already completed under this run key.
    pub fn completed(&self, rule_sig: u64) -> Option<&Arc<Vec<Violation>>> {
        self.entries.get(&rule_sig).map(|(_, v)| v)
    }

    /// Names of the completed rules restored or recorded so far.
    pub fn completed_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.values().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Appends one completed rule's canonical violation set and
    /// flushes it to stable storage, so a kill immediately after still
    /// finds the record on resume.
    pub fn record(
        &mut self,
        rule_name: &str,
        rule_sig: u64,
        violations: &[Violation],
    ) -> io::Result<()> {
        let mut rec = Vec::with_capacity(36 + rule_name.len() + violations.len() * ENTRY_BYTES);
        rec.extend_from_slice(&self.run.deck_sig.to_le_bytes());
        rec.extend_from_slice(&self.run.layout_hash.to_le_bytes());
        rec.extend_from_slice(&rule_sig.to_le_bytes());
        rec.extend_from_slice(&(rule_name.len() as u32).to_le_bytes());
        rec.extend_from_slice(rule_name.as_bytes());
        rec.extend_from_slice(&(violations.len() as u32).to_le_bytes());
        for v in violations {
            rec.push(kind_to_u8(v.kind));
            for c in [
                v.location.lo().x,
                v.location.lo().y,
                v.location.hi().x,
                v.location.hi().y,
            ] {
                rec.extend_from_slice(&c.to_le_bytes());
            }
            rec.extend_from_slice(&v.measured.to_le_bytes());
        }
        self.log.append(&rec)?;
        let restored = violations
            .iter()
            .map(|v| Violation {
                rule: rule_name.to_string(),
                ..v.clone()
            })
            .collect();
        self.entries
            .insert(rule_sig, (rule_name.to_string(), Arc::new(restored)));
        Ok(())
    }
}

/// Decodes one record payload (framing and checksum already verified
/// by [`RecordLog`]). Trailing or missing bytes are a decode error —
/// the payload must be consumed exactly.
fn parse_record(payload: &[u8]) -> io::Result<(RunKey, u64, String, Vec<Violation>)> {
    let mut r = ByteReader {
        buf: payload,
        pos: 0,
    };
    let key = RunKey {
        deck_sig: r.u64()?,
        layout_hash: r.u64()?,
    };
    let rule_sig = r.u64()?;
    let name_len = r.u32()? as usize;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| bad_data())?
        .to_string();
    let count = r.u32()? as usize;
    // Never trust an untrusted length for pre-allocation: cap it by
    // what the remaining bytes could actually encode.
    let mut violations = Vec::with_capacity(count.min(r.remaining() / ENTRY_BYTES));
    for _ in 0..count {
        let kind = kind_from_u8(r.u8()?).ok_or_else(bad_data)?;
        let (x0, y0) = (r.i32()?, r.i32()?);
        let (x1, y1) = (r.i32()?, r.i32()?);
        let measured = r.i64()?;
        violations.push(Violation {
            rule: name.clone(),
            kind,
            location: Rect::from_coords(x0, y0, x1, y1),
            measured,
        });
    }
    if r.remaining() != 0 {
        return Err(bad_data());
    }
    Ok((key, rule_sig, name, violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ViolationKind;
    use odrc_geometry::Rect;
    use std::path::PathBuf;

    fn run_key(a: u64, b: u64) -> RunKey {
        RunKey {
            deck_sig: a,
            layout_hash: b,
        }
    }

    fn violation(rule: &str, x: i32) -> Violation {
        Violation {
            rule: rule.to_string(),
            kind: ViolationKind::Space,
            location: Rect::from_coords(x, 0, x + 3, 3),
            measured: i64::from(x),
        }
    }

    #[test]
    fn roundtrip_restores_completed_rules() {
        let dir = tempdir("jnl-roundtrip");
        let key = run_key(11, 22);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            assert!(j.is_empty());
            j.record("M1.S", 101, &[violation("M1.S", 4), violation("M1.S", 9)])
                .expect("record");
            j.record("M2.W", 202, &[]).expect("record");
            assert_eq!(j.len(), 2);
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.completed(101).expect("M1.S journaled").as_slice(),
            &[violation("M1.S", 4), violation("M1.S", 9)]
        );
        assert!(j.completed(202).expect("M2.W journaled").is_empty());
        assert_eq!(j.completed(303), None);
        assert_eq!(j.completed_names(), ["M1.S", "M2.W"]);
        cleanup(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_prefix_survives() {
        let dir = tempdir("jnl-torn");
        let key = run_key(1, 2);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
            j.record("B", 2, &[violation("B", 2)]).expect("record");
        }
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).expect("read journal");
        // Tear the file mid-way through the last record.
        let torn = &bytes[..bytes.len() - 5];
        std::fs::write(&path, torn).expect("tear");
        let j = CheckpointJournal::open_dir(&dir, key).expect("lenient open");
        assert_eq!(j.len(), 1, "record B's torn tail must be dropped");
        assert!(j.completed(1).is_some());
        assert_eq!(j.completed(2), None);
        // The rewrite healed the file: reopening parses it fully.
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen healed");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn corrupt_record_is_rejected_by_checksum() {
        let dir = tempdir("jnl-corrupt");
        let key = run_key(7, 7);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = MAGIC.len() + 30;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let j = CheckpointJournal::open_dir(&dir, key).expect("lenient open");
        assert!(j.is_empty(), "flipped bit must invalidate the record");
        // Appending after healing works.
        cleanup(&dir);
    }

    #[test]
    fn wrong_run_key_is_invisible_but_preserved() {
        let dir = tempdir("jnl-runkey");
        let old = run_key(1, 1);
        {
            let mut j = CheckpointJournal::open_dir(&dir, old).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
        }
        // A run against an edited layout sees nothing...
        let j = CheckpointJournal::open_dir(&dir, run_key(1, 99)).expect("open new");
        assert!(j.is_empty());
        drop(j);
        // ...but the old run's record is still on disk.
        let j = CheckpointJournal::open_dir(&dir, old).expect("reopen old");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn garbage_file_heals_to_empty_journal() {
        let dir = tempdir("jnl-garbage");
        let path = dir.join(JOURNAL_FILE);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, b"not a journal at all").expect("write garbage");
        let key = run_key(3, 4);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            assert!(j.is_empty());
            j.record("A", 1, &[]).expect("record after heal");
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.len(), 1);
        cleanup(&dir);
    }

    #[test]
    fn rerecorded_rule_takes_latest() {
        let dir = tempdir("jnl-latest");
        let key = run_key(5, 6);
        {
            let mut j = CheckpointJournal::open_dir(&dir, key).expect("open");
            j.record("A", 1, &[violation("A", 1)]).expect("record");
            j.record("A", 1, &[violation("A", 2)]).expect("re-record");
        }
        let j = CheckpointJournal::open_dir(&dir, key).expect("reopen");
        assert_eq!(j.completed(1).expect("A").as_slice(), &[violation("A", 2)]);
        cleanup(&dir);
    }

    #[test]
    fn run_key_tracks_deck_and_layout_content() {
        use crate::rules::rule;
        let design = odrc_layoutgen::generate(&odrc_layoutgen::DesignSpec::tiny(42));
        let layout = Layout::from_library(&design.library).expect("layout");
        let mut deck = RuleDeck::default();
        deck.add_rules([rule().layer(1).width().greater_than(10)]);
        let a = RunKey::compute(&layout, &deck);
        let b = RunKey::compute(&layout, &deck);
        assert_eq!(a, b, "run key is deterministic");
        let mut deck2 = RuleDeck::default();
        deck2.add_rules([rule().layer(1).width().greater_than(12)]);
        assert_ne!(
            a,
            RunKey::compute(&layout, &deck2),
            "editing the deck changes the key"
        );
        let mut deck3 = RuleDeck::default();
        deck3.add_rules([
            rule().layer(1).width().greater_than(10),
            rule().polygons().ensures("named", |p| p.name.is_some()),
        ]);
        assert_ne!(
            a,
            RunKey::compute(&layout, &deck3),
            "unsignable rules still shape deck identity"
        );
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("odrc-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cleanup(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }
}
