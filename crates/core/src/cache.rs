//! A persistent check-result cache: the §IV-C memo rekeyed by content.
//!
//! The in-run memo of the sequential pipeline keys per-cell results by
//! [`CellId`], which is only meaningful inside one loaded layout. To
//! make results survive edits and process restarts, this cache rekeys
//! them by `(rule signature, structural content hash)`:
//!
//! * the **rule signature** is a stable hash of the rule's name and
//!   parameters (rules wrapping user closures have no signature and are
//!   never cached);
//! * the **content hash** is the cell's structural hash from
//!   [`odrc_db`]: the subtree hash for results that cover a cell's
//!   flattened subtree (per-cell spacing), the local hash for results
//!   that depend only on the cell's own polygons (intra-polygon rules).
//!
//! An edit changes exactly the hashes of the edited cell and its
//! ancestor chain, so every other cell keeps its cached verdicts. The
//! cache serializes to a sidecar file with a hand-rolled little-endian
//! format (the workspace is built offline and carries no serde), so a
//! later process — or `odrc --cache` on the command line — starts warm.
//!
//! [`CellId`]: odrc_db::CellId

use std::collections::HashMap;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

use odrc_db::Layout;
use odrc_geometry::Rect;

use crate::checks::poly::LocalViolation;
use crate::rules::{Rule, RuleKind};
use crate::violation::ViolationKind;

/// File magic of the sidecar format (`save`/`load`). Bumped to `2`
/// when the trailing FNV-1a checksum was added; version-1 files fail
/// the magic check and load as a cold miss via [`ResultCache::load_or_cold`].
const MAGIC: &[u8; 8] = b"ODRCCAC2";

/// Serialized size of one [`LocalViolation`]: kind byte, four i32
/// coordinates, one i64 measurement. Used to bound pre-allocation
/// against what the file could actually hold.
const ENTRY_BYTES: usize = 1 + 4 * 4 + 8;

/// The sidecar file name a cache directory holds.
pub const CACHE_FILE: &str = "odrc-cache.bin";

/// How long [`ResultCache::save_merged`] waits for the sidecar lock
/// before giving up. Merge cycles take milliseconds; seconds of
/// contention means something is wrong, and the caller treats the save
/// like any other I/O failure (the cache is an accelerator, not a
/// correctness dependency).
const LOCK_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// The advisory lock file guarding merge-on-save cycles for `path`.
fn lock_file_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_owned();
    name.push(".lock");
    path.with_file_name(name)
}

/// Streaming 64-bit FNV-1a over a fixed little-endian encoding, used
/// for rule signatures (stable across processes, unlike the std
/// hasher).
pub(crate) struct Sig(pub(crate) u64);

impl Sig {
    pub(crate) fn new() -> Sig {
        Sig(0xcbf29ce484222325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Sig {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    pub(crate) fn i64(&mut self, v: i64) -> &mut Sig {
        self.bytes(&v.to_le_bytes())
    }
}

/// The stable signature of a rule, or `None` for rules that cannot be
/// cached (user predicates are host closures with no stable identity).
pub fn rule_signature(rule: &Rule) -> Option<u64> {
    let mut s = Sig::new();
    s.bytes(rule.name.as_bytes());
    match &rule.kind {
        RuleKind::Width { layer, min } => {
            s.i64(1).i64(i64::from(*layer)).i64(*min);
        }
        RuleKind::Space {
            layer,
            min,
            min_projection,
        } => {
            s.i64(2)
                .i64(i64::from(*layer))
                .i64(*min)
                .i64(*min_projection);
        }
        RuleKind::Area { layer, min } => {
            s.i64(3).i64(i64::from(*layer)).i64(*min);
        }
        RuleKind::Enclosure { inner, outer, min } => {
            s.i64(4)
                .i64(i64::from(*inner))
                .i64(i64::from(*outer))
                .i64(*min);
        }
        RuleKind::OverlapArea {
            inner,
            outer,
            min_area,
        } => {
            s.i64(5)
                .i64(i64::from(*inner))
                .i64(i64::from(*outer))
                .i64(*min_area);
        }
        RuleKind::Rectilinear { layer } => {
            s.i64(6).i64(layer.map(i64::from).unwrap_or(i64::MIN));
        }
        RuleKind::Ensures { .. } => return None,
    }
    Some(s.0)
}

pub(crate) fn kind_to_u8(kind: ViolationKind) -> u8 {
    match kind {
        ViolationKind::Width => 0,
        ViolationKind::Space => 1,
        ViolationKind::Area => 2,
        ViolationKind::Enclosure => 3,
        ViolationKind::OverlapArea => 4,
        ViolationKind::Rectilinear => 5,
        ViolationKind::Ensures => 6,
    }
}

pub(crate) fn kind_from_u8(v: u8) -> Option<ViolationKind> {
    Some(match v {
        0 => ViolationKind::Width,
        1 => ViolationKind::Space,
        2 => ViolationKind::Area,
        3 => ViolationKind::Enclosure,
        4 => ViolationKind::OverlapArea,
        5 => ViolationKind::Rectilinear,
        6 => ViolationKind::Ensures,
        _ => return None,
    })
}

/// Per-cell check results keyed by `(rule signature, content hash)`.
///
/// Cloning is shallow in the results themselves (entries are `Arc`s),
/// so a multi-tenant server can hand each job a snapshot of a shared
/// tier and fold the job's new entries back with
/// [`ResultCache::merge_from`].
#[derive(Debug, Default, Clone)]
pub struct ResultCache {
    map: HashMap<(u64, u64), Arc<Vec<LocalViolation>>>,
    hits: usize,
    misses: usize,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up the cached result for a rule/content pair, counting the
    /// hit or miss.
    pub fn get(&mut self, rule_sig: u64, content: u64) -> Option<Arc<Vec<LocalViolation>>> {
        match self.map.get(&(rule_sig, content)) {
            Some(arc) => {
                self.hits += 1;
                Some(Arc::clone(arc))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result.
    pub fn insert(&mut self, rule_sig: u64, content: u64, result: Arc<Vec<LocalViolation>>) {
        self.map.insert((rule_sig, content), result);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits since construction or load.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookup misses since construction or load.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Whether a `(rule signature, content hash)` entry is present,
    /// without touching the hit/miss counters.
    pub fn contains(&self, rule_sig: u64, content: u64) -> bool {
        self.map.contains_key(&(rule_sig, content))
    }

    /// Folds every entry of `other` into this cache. Entries under the
    /// same key are byte-identical by construction (the key *is* a
    /// content hash of everything the result depends on), so existing
    /// entries are kept and only missing keys are inserted; hit/miss
    /// counters are untouched. Returns how many entries were new.
    pub fn merge_from(&mut self, other: &ResultCache) -> usize {
        let mut added = 0;
        for (key, entries) in &other.map {
            self.map.entry(*key).or_insert_with(|| {
                added += 1;
                Arc::clone(entries)
            });
        }
        added
    }

    /// Serializes the cache to a sidecar file.
    ///
    /// Entries are written in sorted key order, so identical caches
    /// produce byte-identical files.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut keys: Vec<&(u64, u64)> = self.map.keys().collect();
        keys.sort();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for key in keys {
            let entries = &self.map[key];
            buf.extend_from_slice(&key.0.to_le_bytes());
            buf.extend_from_slice(&key.1.to_le_bytes());
            buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for v in entries.iter() {
                buf.push(kind_to_u8(v.kind));
                for c in [
                    v.location.lo().x,
                    v.location.lo().y,
                    v.location.hi().x,
                    v.location.hi().y,
                ] {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                buf.extend_from_slice(&v.measured.to_le_bytes());
            }
        }
        // Trailing whole-file checksum: a torn write or bit rot is
        // detected up front instead of surfacing as garbage results.
        let checksum = Sig::new().bytes(&buf).0;
        buf.extend_from_slice(&checksum.to_le_bytes());
        // Write-temp-then-rename: a kill mid-save leaves the previous
        // sidecar intact instead of a truncated file.
        odrc_infra::write_atomic(path, &buf)
    }

    /// Loads a cache from a sidecar file; a missing file yields an
    /// empty cache, a malformed one an [`io::ErrorKind::InvalidData`]
    /// error.
    pub fn load(path: &Path) -> io::Result<ResultCache> {
        let mut buf = Vec::new();
        match std::fs::File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ResultCache::new()),
            Err(e) => return Err(e),
        }
        // Verify the trailing checksum before parsing anything: a
        // flipped bit anywhere in the body is rejected here rather
        // than decoding into plausible-looking garbage.
        let Some(body_len) = buf.len().checked_sub(8) else {
            return Err(bad_data());
        };
        let stored = u64::from_le_bytes(buf[body_len..].try_into().expect("8 bytes"));
        if Sig::new().bytes(&buf[..body_len]).0 != stored {
            return Err(bad_data());
        }
        let mut r = ByteReader {
            buf: &buf[..body_len],
            pos: 0,
        };
        if r.take(8)? != MAGIC {
            return Err(bad_data());
        }
        let count = r.u64()?;
        let mut map = HashMap::new();
        for _ in 0..count {
            let sig = r.u64()?;
            let content = r.u64()?;
            let n = r.u32()?;
            // Never trust an untrusted length for pre-allocation: cap
            // it by what the remaining bytes could actually encode.
            let mut entries = Vec::with_capacity((n as usize).min(r.remaining() / ENTRY_BYTES));
            for _ in 0..n {
                let kind = kind_from_u8(r.u8()?).ok_or_else(bad_data)?;
                let (x0, y0) = (r.i32()?, r.i32()?);
                let (x1, y1) = (r.i32()?, r.i32()?);
                let measured = r.i64()?;
                entries.push(LocalViolation {
                    kind,
                    location: Rect::from_coords(x0, y0, x1, y1),
                    measured,
                });
            }
            map.insert((sig, content), Arc::new(entries));
        }
        if r.pos != r.buf.len() {
            return Err(bad_data());
        }
        Ok(ResultCache {
            map,
            hits: 0,
            misses: 0,
        })
    }

    /// Saves by *merging into* whatever sidecar is already on disk,
    /// under an advisory lock file (`<name>.lock`), so concurrent
    /// writers — two `odrc --cache` processes, or a check server's
    /// shared tier saving while a CLI run finishes — cannot interleave
    /// a load-modify-save cycle and silently drop each other's entries.
    ///
    /// The cycle under the lock is: load the current file (leniently —
    /// a corrupted sidecar contributes nothing), fold this cache's
    /// entries in, and [`write_atomic`](odrc_infra::write_atomic) the
    /// union back. Identical keys hold identical results (the key is a
    /// content hash), so merge order cannot change what any reader
    /// sees.
    ///
    /// # Errors
    ///
    /// Lock acquisition (`TimedOut` after a few seconds of contention)
    /// or filesystem errors from the final write.
    pub fn save_merged(&self, path: &Path) -> io::Result<()> {
        let lock_path = lock_file_path(path);
        let _lock = odrc_infra::FileLock::acquire(&lock_path, LOCK_TIMEOUT)?;
        let mut union = match ResultCache::load(path) {
            Ok(cache) => cache,
            // A damaged sidecar is already lost; overwrite it with our
            // (valid) entries rather than failing the save.
            Err(_) => ResultCache::new(),
        };
        union.merge_from(self);
        union.save(path)
    }

    /// Like [`ResultCache::load`], but *lenient*: a corrupted,
    /// truncated, or version-mismatched sidecar degrades to a cold
    /// (empty) cache with a warning on stderr instead of failing the
    /// run. A cache is a pure accelerator — losing it costs time, not
    /// correctness — so a damaged file must never abort a check.
    pub fn load_or_cold(path: &Path) -> ResultCache {
        match ResultCache::load(path) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!(
                    "warning: ignoring unusable result cache at {} ({e}); starting cold",
                    path.display()
                );
                ResultCache::new()
            }
        }
    }
}

pub(crate) fn bad_data() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "malformed odrc cache file")
}

/// A bounds-checked cursor over the loaded sidecar bytes.
pub(crate) struct ByteReader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(bad_data)?;
        let slice = self.buf.get(self.pos..end).ok_or_else(bad_data)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn i32(&mut self) -> io::Result<i32> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// The content keys of one layout: every cell's structural hashes,
/// computed once per check run. Hashing is linear in the layout's
/// geometry, so callers that check repeatedly (edit sessions) compute
/// the keys once per layout state and pass them to the `*_keyed` engine
/// entry points instead of re-hashing on every run.
#[derive(Debug, Clone)]
pub struct CacheKeys {
    /// Subtree hashes by cell index (key for flattened-subtree
    /// results).
    pub subtree: Vec<u64>,
    /// Local hashes by cell index (key for own-polygon results).
    pub local: Vec<u64>,
}

impl CacheKeys {
    /// Hashes every cell of the layout (subtree and local).
    pub fn compute(layout: &Layout) -> CacheKeys {
        CacheKeys {
            subtree: layout.subtree_hashes(),
            local: layout
                .cell_ids()
                .map(|c| layout.local_content_hash(c))
                .collect(),
        }
    }
}

/// A cache plus the current layout's content keys, threaded through the
/// run context.
pub(crate) struct CacheHandle<'a> {
    pub cache: &'a mut ResultCache,
    pub keys: &'a CacheKeys,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule;

    fn lv(x: i32, measured: i64) -> LocalViolation {
        LocalViolation {
            kind: ViolationKind::Space,
            location: Rect::from_coords(x, 0, x + 4, 4),
            measured,
        }
    }

    #[test]
    fn signatures_distinguish_rules() {
        let a = rule_signature(&rule().layer(1).space().greater_than(10)).unwrap();
        let b = rule_signature(&rule().layer(1).space().greater_than(12)).unwrap();
        let c = rule_signature(&rule().layer(2).space().greater_than(10)).unwrap();
        let w = rule_signature(&rule().layer(1).width().greater_than(10)).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, w);
        // Same rule built twice hashes identically.
        assert_eq!(
            a,
            rule_signature(&rule().layer(1).space().greater_than(10)).unwrap()
        );
        // User predicates are not cacheable.
        assert!(rule_signature(&rule().polygons().ensures("x", |_| true)).is_none());
    }

    #[test]
    fn get_insert_and_counters() {
        let mut cache = ResultCache::new();
        assert!(cache.get(1, 2).is_none());
        cache.insert(1, 2, Arc::new(vec![lv(0, 9)]));
        let hit = cache.get(1, 2).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        let mut cache = ResultCache::new();
        cache.insert(7, 9, Arc::new(vec![lv(0, 25), lv(10, 36)]));
        cache.insert(7, 11, Arc::new(Vec::new()));
        cache.insert(8, 9, Arc::new(vec![lv(-5, 1)]));
        cache.save(&path).unwrap();

        let mut loaded = ResultCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(*loaded.get(7, 9).unwrap(), vec![lv(0, 25), lv(10, 36)]);
        assert!(loaded.get(7, 11).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_from_keeps_existing_and_adds_missing() {
        let mut a = ResultCache::new();
        a.insert(1, 1, Arc::new(vec![lv(0, 5)]));
        let mut b = ResultCache::new();
        b.insert(1, 1, Arc::new(vec![lv(0, 5)]));
        b.insert(2, 2, Arc::new(vec![lv(8, 6)]));
        let added = a.merge_from(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
        assert!(a.contains(2, 2));
        // Counters are untouched by merging.
        assert_eq!(a.hits(), 0);
        assert_eq!(a.misses(), 0);
    }

    #[test]
    fn save_merged_unions_with_disk() {
        let dir = std::env::temp_dir().join(format!("odrc-cache-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merged.bin");
        let mut first = ResultCache::new();
        first.insert(1, 10, Arc::new(vec![lv(0, 1)]));
        first.save_merged(&path).unwrap();
        let mut second = ResultCache::new();
        second.insert(2, 20, Arc::new(vec![lv(4, 2)]));
        second.save_merged(&path).unwrap();
        let loaded = ResultCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(1, 10) && loaded.contains(2, 20));
        // No lock file left behind.
        assert!(!lock_file_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The regression the lock exists for: two threads hammering
    /// load-modify-save on one sidecar must never drop entries. Without
    /// the lock, interleaved cycles lose whole batches (both load state
    /// S, each saves S+own, last rename wins).
    #[test]
    fn concurrent_save_merged_drops_nothing() {
        let dir = std::env::temp_dir().join(format!("odrc-cache-hammer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hammer.bin");
        const ROUNDS: u64 = 12;
        std::thread::scope(|scope| {
            for writer in 0..2u64 {
                let path = path.clone();
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        let mut cache = ResultCache::new();
                        // Disjoint keys per (writer, round) batch.
                        let sig = writer * 1000 + round;
                        cache.insert(sig, round, Arc::new(vec![lv(round as i32, 1)]));
                        cache.save_merged(&path).unwrap();
                    }
                });
            }
        });
        let final_cache = ResultCache::load(&path).unwrap();
        assert_eq!(
            final_cache.len() as u64,
            2 * ROUNDS,
            "every writer's every batch must survive concurrent merge-on-save"
        );
        for writer in 0..2u64 {
            for round in 0..ROUNDS {
                assert!(final_cache.contains(writer * 1000 + round, round));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_is_empty() {
        let cache = ResultCache::load(Path::new("/nonexistent/odrc-cache-missing.bin")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a cache").unwrap();
        assert!(ResultCache::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Writes a small valid cache file and returns its bytes.
    fn saved_bytes(path: &Path) -> Vec<u8> {
        let mut cache = ResultCache::new();
        cache.insert(7, 9, Arc::new(vec![lv(0, 25), lv(10, 36)]));
        cache.insert(8, 9, Arc::new(vec![lv(-5, 1)]));
        cache.save(path).unwrap();
        std::fs::read(path).unwrap()
    }

    #[test]
    fn load_rejects_every_truncation() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.bin");
        let bytes = saved_bytes(&path);
        // Every proper prefix must be rejected (torn writes truncate at
        // arbitrary byte offsets), and none may panic.
        for len in 0..bytes.len() {
            std::fs::write(&path, &bytes[..len]).unwrap();
            assert!(
                ResultCache::load(&path).is_err(),
                "truncation to {len} bytes must be rejected"
            );
            assert!(ResultCache::load_or_cold(&path).is_empty());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_every_single_bit_flip() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bitflip.bin");
        let bytes = saved_bytes(&path);
        // Flip one bit per byte position; the checksum must catch all
        // of them (including flips inside the checksum itself).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                ResultCache::load(&path).is_err(),
                "bit flip at byte {i} must be rejected"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_old_format_version() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oldmagic.bin");
        let mut bytes = saved_bytes(&path);
        // A version-1 file has a different magic; even with a valid
        // checksum over its own bytes it must be rejected.
        bytes[..8].copy_from_slice(b"ODRCCAC1");
        let body_len = bytes.len() - 8;
        let checksum = Sig::new().bytes(&bytes[..body_len]).0;
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(ResultCache::load(&path).is_err());
        assert!(ResultCache::load_or_cold(&path).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn huge_declared_length_does_not_overallocate() {
        let dir = std::env::temp_dir().join("odrc-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hugelen.bin");
        // Hand-build a file declaring one key with u32::MAX entries but
        // no entry bytes; the bounded pre-allocation keeps this from
        // reserving gigabytes before the parse fails.
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let checksum = Sig::new().bytes(&body).0;
        body.extend_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        assert!(ResultCache::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
