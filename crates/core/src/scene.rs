//! Per-layer object scenes.
//!
//! Inter-polygon checks operate on *objects*: the direct placements
//! under the top cell plus the top cell's own polygons. A
//! [`LayerScene`] gathers, for one layer, each object's layer MBR (for
//! partitioning and pair pruning) and a per-cell cache of flattened
//! subtree polygons in cell-local coordinates — computed once per cell
//! definition no matter how many times the cell is placed, which is the
//! database half of the hierarchical reuse of §IV-C.

use std::collections::HashMap;

use odrc_db::{CellId, Layer, Layout};
use odrc_geometry::{Coord, Polygon, Rect, Transform};

/// What a scene object refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneSource {
    /// A placement of a cell under the top cell.
    Cell {
        /// The placed cell.
        cell: CellId,
        /// Its transform into top coordinates.
        transform: Transform,
    },
    /// A polygon drawn directly in the top cell.
    TopPolygon {
        /// Index into the scene's top-polygon list.
        index: usize,
    },
}

/// One object of the scene with its layer MBR in top coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneObject {
    /// Layer MBR in top coordinates.
    pub mbr: Rect,
    /// The referenced geometry.
    pub source: SceneSource,
}

/// All objects of one layer, with cached per-cell flat geometry.
#[derive(Debug)]
pub struct LayerScene {
    /// The layer this scene describes.
    pub layer: Layer,
    /// Objects in construction order (placements, then top polygons).
    pub objects: Vec<SceneObject>,
    /// Flattened subtree polygons per placed cell, local coordinates.
    local: HashMap<CellId, Vec<Polygon>>,
    /// The top cell's own polygons on this layer.
    top_polys: Vec<Polygon>,
}

/// The halo of a delta re-check: the dirty rects of an edit plus the
/// rule's interaction margin.
///
/// [`DirtyWindow::hits`] is the *one* overlap predicate of the delta
/// scheme: the delta checker drops an old violation exactly when it
/// hits the window, and keeps a re-discovered violation exactly when it
/// hits the window — using a single predicate on both sides is what
/// makes the splice exact.
#[derive(Debug, Clone, Copy)]
pub struct DirtyWindow<'a> {
    /// MBRs of the geometry that differs between the two layouts (both
    /// the old and the new extents).
    pub rects: &'a [Rect],
    /// The rule's interaction distance, clamped to coordinate range.
    pub margin: Coord,
}

impl DirtyWindow<'_> {
    /// Whether a violation location overlaps any inflated dirty rect.
    pub fn hits(&self, location: Rect) -> bool {
        self.rects
            .iter()
            .any(|d| d.inflate(self.margin).overlaps(location))
    }
}

impl LayerScene {
    /// Builds the scene for `layer`.
    pub fn build(layout: &Layout, layer: Layer) -> LayerScene {
        LayerScene::build_near(layout, layer, None)
    }

    /// Builds the scene for `layer`, restricted to the objects that can
    /// participate in a violation overlapping `window` (when given).
    ///
    /// The filter is a two-ring construction around the dirty rects:
    ///
    /// * **seeds** — objects whose layer MBR overlaps a dirty rect
    ///   inflated by twice the margin: every violation location
    ///   overlapping the window is within the margin of one
    ///   participant's edge, so that participant's MBR lands in this
    ///   ring;
    /// * **neighbours** — objects whose MBR overlaps a seed's MBR
    ///   inflated by the margin: the second participant of a pairwise
    ///   violation is within the margin of the first.
    ///
    /// Cells whose placements are all filtered out are never flattened,
    /// which is where a small edit on a large layout saves its work.
    pub fn build_near(
        layout: &Layout,
        layer: Layer,
        window: Option<DirtyWindow<'_>>,
    ) -> LayerScene {
        LayerScene::build_on(layout, layer, window, &odrc_infra::HostExecutor::new(1))
    }

    /// [`LayerScene::build_near`] with the per-cell subtree flattening
    /// fanned out on a host executor: the unique kept cells are
    /// collected in first-occurrence order, their flat polygon lists
    /// computed in parallel, and the scene assembled serially — the
    /// result is identical for any thread count.
    pub fn build_on(
        layout: &Layout,
        layer: Layer,
        window: Option<DirtyWindow<'_>>,
        host: &odrc_infra::HostExecutor,
    ) -> LayerScene {
        let protos = enumerate_protos(layout, layer);
        let keep: Vec<bool> = match window {
            None => vec![true; protos.len()],
            Some(w) => {
                let seed_margin = w.margin.saturating_mul(2).saturating_add(2);
                let seeded: Vec<Rect> = w.rects.iter().map(|d| d.inflate(seed_margin)).collect();
                let seeds: Vec<bool> = protos
                    .iter()
                    .map(|o| seeded.iter().any(|s| s.overlaps(o.mbr)))
                    .collect();
                let rings: Vec<Rect> = protos
                    .iter()
                    .zip(&seeds)
                    .filter(|(_, s)| **s)
                    .map(|(o, _)| o.mbr.inflate(w.margin.saturating_add(1)))
                    .collect();
                protos
                    .iter()
                    .zip(&seeds)
                    .map(|(o, s)| *s || rings.iter().any(|r| r.overlaps(o.mbr)))
                    .collect()
            }
        };
        assemble(layout, layer, protos, keep, host)
    }

    /// Builds the scene restricted to an explicit *member subset* of the
    /// layer's objects: `members` holds sorted indices into the pass-1
    /// proto order ([`layer_object_mbrs`] enumerates the same order).
    /// Only the member objects survive, only their cells are flattened,
    /// and only their top polygons are copied — this is the residency
    /// unit of the out-of-core [`ShardPool`](crate::shard::ShardPool).
    pub(crate) fn build_members_on(
        layout: &Layout,
        layer: Layer,
        members: &[usize],
        host: &odrc_infra::HostExecutor,
    ) -> LayerScene {
        let protos = enumerate_protos(layout, layer);
        let mut keep = vec![false; protos.len()];
        for &m in members {
            keep[m] = true;
        }
        assemble(layout, layer, protos, keep, host)
    }

    /// Builds the scene restricted to the objects overlapping one
    /// window rectangle — the outer side of an out-of-core enclosure
    /// shard, whose members all live in a contiguous row band. A single
    /// rect test per object keeps the filter linear in the layer
    /// population (the two-ring [`DirtyWindow`] filter is quadratic in
    /// dense scenes and only needed for scattered diff rects).
    pub(crate) fn build_window_on(
        layout: &Layout,
        layer: Layer,
        window: Rect,
        host: &odrc_infra::HostExecutor,
    ) -> LayerScene {
        let protos = enumerate_protos(layout, layer);
        let keep: Vec<bool> = protos.iter().map(|o| window.overlaps(o.mbr)).collect();
        assemble(layout, layer, protos, keep, host)
    }

    /// The flattened local polygons of a placed cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` was not placed in this scene.
    pub fn local_polygons(&self, cell: CellId) -> &[Polygon] {
        self.local
            .get(&cell)
            .expect("cell placed in this scene")
            .as_slice()
    }

    /// The unique placed cells of the scene.
    pub fn placed_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.local.keys().copied()
    }

    /// A top polygon by index.
    pub fn top_polygon(&self, index: usize) -> &Polygon {
        &self.top_polys[index]
    }

    /// All polygons of one object, in top coordinates.
    pub fn object_polygons(&self, obj: &SceneObject) -> Vec<Polygon> {
        let mut out = Vec::new();
        self.object_polygons_into(obj, &mut out);
        out
    }

    /// [`LayerScene::object_polygons`] appended into a caller-owned
    /// buffer — the allocation-free variant for hot loops that visit
    /// many objects (row packing, enclosure gathering).
    pub fn object_polygons_into(&self, obj: &SceneObject, out: &mut Vec<Polygon>) {
        match obj.source {
            SceneSource::Cell { cell, transform } => {
                let polys = self.local_polygons(cell);
                out.reserve(polys.len());
                out.extend(polys.iter().map(|p| transform.apply_polygon(p)));
            }
            SceneSource::TopPolygon { index } => out.push(self.top_polys[index].clone()),
        }
    }

    /// The polygons of one object whose top-coordinate MBR overlaps
    /// `window`. Transformation of a polygon happens only when its MBR
    /// passes the window filter, so border checks between two large
    /// placements touch only the border geometry.
    pub fn object_polygons_in(&self, obj: &SceneObject, window: Rect) -> Vec<Polygon> {
        let mut out = Vec::new();
        self.object_polygons_in_into(obj, window, &mut out);
        out
    }

    /// [`LayerScene::object_polygons_in`] appended into a caller-owned
    /// buffer — the allocation-free variant for the per-pair cross
    /// checks, which call this once per candidate pair in every row.
    pub fn object_polygons_in_into(&self, obj: &SceneObject, window: Rect, out: &mut Vec<Polygon>) {
        match obj.source {
            SceneSource::Cell { cell, transform } => out.extend(
                self.local_polygons(cell)
                    .iter()
                    .filter(|p| transform.apply_rect(p.mbr()).overlaps(window))
                    .map(|p| transform.apply_polygon(p)),
            ),
            SceneSource::TopPolygon { index } => {
                let p = &self.top_polys[index];
                if p.mbr().overlaps(window) {
                    out.push(p.clone());
                }
            }
        }
    }

    /// Total flat polygon count of the scene (hierarchy expanded).
    pub fn flat_polygon_count(&self) -> usize {
        self.objects
            .iter()
            .map(|o| match o.source {
                SceneSource::Cell { cell, .. } => self.local_polygons(cell).len(),
                SceneSource::TopPolygon { .. } => 1,
            })
            .sum()
    }

    /// Approximate resident size of the scene in bytes: object records
    /// plus every cached polygon's vertex storage (with a fixed
    /// per-polygon overhead for the `Vec` headers). This is the byte
    /// cost the out-of-core [`ShardPool`](crate::shard::ShardPool)
    /// charges against its budget — an accounting estimate, not an
    /// allocator measurement.
    pub(crate) fn approx_bytes(&self) -> u64 {
        const POLY_OVERHEAD: u64 = 48;
        let vertex = std::mem::size_of::<odrc_geometry::Point>() as u64;
        let mut bytes = (self.objects.len() * std::mem::size_of::<SceneObject>()) as u64;
        for polys in self.local.values() {
            for p in polys {
                bytes += POLY_OVERHEAD + p.vertices().len() as u64 * vertex;
            }
        }
        for p in &self.top_polys {
            bytes += POLY_OVERHEAD + p.vertices().len() as u64 * vertex;
        }
        bytes
    }
}

/// Pass 1 of a scene build: every object of `layer` (the direct
/// placements under the top cell, then the top cell's own polygons)
/// with its layer MBR in top coordinates — no flattening. This order is
/// the *proto order* every keep filter and shard member list indexes.
fn enumerate_protos(layout: &Layout, layer: Layer) -> Vec<SceneObject> {
    let mut protos: Vec<SceneObject> = Vec::new();
    for placement in layout.top_placements() {
        let cell = layout.cell(placement.cell);
        let Some(local_mbr) = cell.layer_mbr(layer) else {
            continue;
        };
        protos.push(SceneObject {
            mbr: placement.transform.apply_rect(local_mbr),
            source: SceneSource::Cell {
                cell: placement.cell,
                transform: placement.transform,
            },
        });
    }
    let top_cell = layout.cell(layout.top());
    for p in top_cell.polygons_on(layer) {
        protos.push(SceneObject {
            mbr: p.polygon.mbr(),
            source: SceneSource::TopPolygon { index: 0 }, // assigned in assemble
        });
    }
    protos
}

/// The object MBRs of `layer` in proto order — the shard planner's
/// cheap (flattening-free) view of the scene. Index `i` here is object
/// `i` of an unwindowed [`LayerScene::build_on`] and the member index
/// [`LayerScene::build_members_on`] selects by.
pub(crate) fn layer_object_mbrs(layout: &Layout, layer: Layer) -> Vec<Rect> {
    enumerate_protos(layout, layer)
        .into_iter()
        .map(|o| o.mbr)
        .collect()
}

/// Pass 2 of a scene build: flatten the kept objects. Top polygons
/// stream straight from the cell again (pass 1 enumerated them in the
/// same order), so only the kept ones are ever copied.
///
/// On a parallel executor the expensive step — flattening each unique
/// kept cell's subtree — fans out first; the assembly below then finds
/// every cell pre-flattened.
fn assemble(
    layout: &Layout,
    layer: Layer,
    protos: Vec<SceneObject>,
    keep: Vec<bool>,
    host: &odrc_infra::HostExecutor,
) -> LayerScene {
    let top_cell = layout.cell(layout.top());
    let mut local: HashMap<CellId, Vec<Polygon>> = HashMap::new();
    if !host.is_serial() {
        let mut uniq: Vec<CellId> = Vec::new();
        let mut seen: std::collections::HashSet<CellId> = std::collections::HashSet::new();
        for (proto, kept) in protos.iter().zip(&keep) {
            if let SceneSource::Cell { cell, .. } = proto.source {
                if *kept && seen.insert(cell) {
                    uniq.push(cell);
                }
            }
        }
        let uniq_ref = &uniq;
        let flats = host.run("scene", uniq.len(), |i| {
            let mut flat = Vec::new();
            layout.collect_layer_polygons(uniq_ref[i], Transform::IDENTITY, layer, &mut flat);
            flat.into_iter().map(|f| f.polygon).collect::<Vec<_>>()
        });
        local.extend(uniq.into_iter().zip(flats));
    }
    let mut objects = Vec::new();
    let mut top_polys = Vec::new();
    let mut top_iter = top_cell.polygons_on(layer);
    for (proto, kept) in protos.into_iter().zip(keep) {
        match proto.source {
            SceneSource::Cell { cell, .. } => {
                if !kept {
                    continue;
                }
                local.entry(cell).or_insert_with(|| {
                    let mut flat = Vec::new();
                    layout.collect_layer_polygons(cell, Transform::IDENTITY, layer, &mut flat);
                    flat.into_iter().map(|f| f.polygon).collect()
                });
                objects.push(proto);
            }
            SceneSource::TopPolygon { .. } => {
                let poly = top_iter.next().expect("pass 1 and 2 agree on top polygons");
                if !kept {
                    continue;
                }
                objects.push(SceneObject {
                    mbr: proto.mbr,
                    source: SceneSource::TopPolygon {
                        index: top_polys.len(),
                    },
                });
                top_polys.push(poly.polygon.clone());
            }
        }
    }
    LayerScene {
        layer,
        objects,
        local,
        top_polys,
    }
}

/// Enumerates, for every cell, the transforms of all its instantiations
/// in top coordinates (the top cell itself has the identity transform).
///
/// Hierarchical intra-polygon checks compute violations once per cell
/// and replay them through these transforms (§IV-C).
pub fn instance_transforms(layout: &Layout) -> HashMap<CellId, Vec<Transform>> {
    let mut map: HashMap<CellId, Vec<Transform>> = HashMap::new();
    fn rec(layout: &Layout, cell: CellId, t: Transform, map: &mut HashMap<CellId, Vec<Transform>>) {
        map.entry(cell).or_default().push(t);
        for r in layout.cell(cell).refs() {
            rec(layout, r.cell, r.transform.then(&t), map);
        }
    }
    rec(layout, layout.top(), Transform::IDENTITY, &mut map);
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_gdsii::{Element, Library, Structure};
    use odrc_geometry::Point;

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    fn demo_layout() -> Layout {
        let mut lib = Library::new("t");
        let mut unit = Structure::new("UNIT");
        unit.elements.push(Element::boundary(
            1,
            vec![p(0, 0), p(0, 10), p(10, 10), p(10, 0)],
        ));
        unit.elements.push(Element::boundary(
            2,
            vec![p(20, 0), p(20, 4), p(24, 4), p(24, 0)],
        ));
        lib.structures.push(unit);
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("UNIT", p(0, 0)));
        top.elements.push(Element::sref("UNIT", p(100, 0)));
        top.elements.push(Element::boundary(
            1,
            vec![p(0, 50), p(0, 54), p(40, 54), p(40, 50)],
        ));
        lib.structures.push(top);
        Layout::from_library(&lib).unwrap()
    }

    #[test]
    fn scene_objects_cover_placements_and_top_polys() {
        let layout = demo_layout();
        let scene = LayerScene::build(&layout, 1);
        assert_eq!(scene.objects.len(), 3); // two placements + one top poly
        assert_eq!(scene.flat_polygon_count(), 3);
        let scene2 = LayerScene::build(&layout, 2);
        assert_eq!(scene2.objects.len(), 2); // placements only
        let scene9 = LayerScene::build(&layout, 9);
        assert!(scene9.objects.is_empty());
    }

    #[test]
    fn local_cache_shared_between_instances() {
        let layout = demo_layout();
        let scene = LayerScene::build(&layout, 1);
        assert_eq!(scene.placed_cells().count(), 1); // UNIT cached once
        let unit = layout.cell_by_name("UNIT").unwrap();
        assert_eq!(scene.local_polygons(unit).len(), 1);
    }

    #[test]
    fn object_polygons_transformed() {
        let layout = demo_layout();
        let scene = LayerScene::build(&layout, 1);
        let second = &scene.objects[1];
        let polys = scene.object_polygons(second);
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].mbr(), Rect::from_coords(100, 0, 110, 10));
    }

    #[test]
    fn windowed_polygons_filter() {
        let layout = demo_layout();
        let scene = LayerScene::build(&layout, 1);
        let obj = &scene.objects[0];
        assert_eq!(
            scene
                .object_polygons_in(obj, Rect::from_coords(-5, -5, 2, 2))
                .len(),
            1
        );
        assert!(scene
            .object_polygons_in(obj, Rect::from_coords(50, 50, 60, 60))
            .is_empty());
        // Top polygon object.
        let top_obj = &scene.objects[2];
        assert_eq!(
            scene
                .object_polygons_in(top_obj, Rect::from_coords(0, 50, 5, 52))
                .len(),
            1
        );
    }

    #[test]
    fn parallel_build_matches_serial() {
        let layout = demo_layout();
        for layer in [1, 2] {
            let serial = LayerScene::build(&layout, layer);
            for threads in [2, 8] {
                let host = odrc_infra::HostExecutor::new(threads);
                let par = LayerScene::build_on(&layout, layer, None, &host);
                assert_eq!(par.objects, serial.objects);
                assert_eq!(par.flat_polygon_count(), serial.flat_polygon_count());
                for obj in &serial.objects {
                    assert_eq!(par.object_polygons(obj), serial.object_polygons(obj));
                }
            }
        }
    }

    #[test]
    fn into_variants_append() {
        let layout = demo_layout();
        let scene = LayerScene::build(&layout, 1);
        let mut buf = Vec::new();
        for obj in &scene.objects {
            scene.object_polygons_into(obj, &mut buf);
        }
        assert_eq!(buf.len(), scene.flat_polygon_count());
        let window = Rect::from_coords(-5, -5, 2, 2);
        let before = buf.len();
        scene.object_polygons_in_into(&scene.objects[0], window, &mut buf);
        assert_eq!(buf.len() - before, 1); // appended, not cleared
    }

    #[test]
    fn instance_transforms_counts() {
        let layout = demo_layout();
        let map = instance_transforms(&layout);
        let unit = layout.cell_by_name("UNIT").unwrap();
        assert_eq!(map[&unit].len(), 2);
        assert_eq!(map[&layout.top()].len(), 1);
        assert_eq!(map[&layout.top()][0], Transform::IDENTITY);
    }
}
