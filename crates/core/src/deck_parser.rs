//! A plain-text rule deck format for the command-line checker.
//!
//! The paper's engine is configured through its C++ API (Listing 1);
//! for standalone use this module adds a minimal deck file format, one
//! rule per line:
//!
//! ```text
//! # ASAP7-like BEOL deck
//! width     layer=19 min=18            name=M1.W.1
//! space     layer=20 min=20
//! space     layer=20 min=40 projection=100   # conditional
//! area      layer=19 min=1400
//! enclosure inner=30 outer=19 min=4
//! overlap   inner=30 outer=20 min_area=100
//! rectilinear
//! rectilinear layer=19
//! ```
//!
//! Lines are `kind key=value ...`; `#` starts a comment; `name=` is
//! optional everywhere. User predicates (`ensures`) are code, not
//! configuration, and are not expressible in files.

use std::fmt;

use crate::rules::{rule, Rule, RuleDeck};

/// Error parsing a deck file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeckError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseDeckErrorKind,
}

/// The failure cases of the deck parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDeckErrorKind {
    /// The line's first token is not a rule kind.
    UnknownRuleKind(String),
    /// A required `key=` is missing.
    MissingKey(&'static str),
    /// A `key=value` token does not parse.
    BadValue {
        /// The key.
        key: String,
        /// The offending value text.
        value: String,
    },
    /// A token is not of `key=value` form or the key is not recognized.
    UnknownKey(String),
    /// Two rules resolved to the same name (explicit `name=` or the
    /// derived default). Rule names key per-rule reporting and the
    /// checkpoint journal's resume bookkeeping, so a deck must name
    /// each rule uniquely.
    DuplicateRuleName(String),
}

impl fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseDeckErrorKind::UnknownRuleKind(k) => write!(f, "unknown rule kind '{k}'"),
            ParseDeckErrorKind::MissingKey(k) => write!(f, "missing required key '{k}'"),
            ParseDeckErrorKind::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for key '{key}'")
            }
            ParseDeckErrorKind::UnknownKey(t) => write!(f, "unrecognized token '{t}'"),
            ParseDeckErrorKind::DuplicateRuleName(n) => {
                write!(
                    f,
                    "duplicate rule name '{n}' (rule names must be unique; \
                     use name= to disambiguate)"
                )
            }
        }
    }
}

impl std::error::Error for ParseDeckError {}

struct LineArgs<'a> {
    line_no: usize,
    pairs: Vec<(&'a str, &'a str)>,
    name: Option<&'a str>,
}

impl<'a> LineArgs<'a> {
    fn parse(line_no: usize, tokens: &[&'a str]) -> Result<Self, ParseDeckError> {
        let mut pairs = Vec::new();
        let mut name = None;
        for t in tokens {
            let Some((key, value)) = t.split_once('=') else {
                return Err(ParseDeckError {
                    line: line_no,
                    kind: ParseDeckErrorKind::UnknownKey((*t).to_owned()),
                });
            };
            if key == "name" {
                name = Some(value);
            } else {
                pairs.push((key, value));
            }
        }
        Ok(LineArgs {
            line_no,
            pairs,
            name,
        })
    }

    fn get<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ParseDeckError> {
        let (_, value) = self
            .pairs
            .iter()
            .find(|(k, _)| *k == key)
            .ok_or(ParseDeckError {
                line: self.line_no,
                kind: ParseDeckErrorKind::MissingKey(key),
            })?;
        value.parse().map_err(|_| ParseDeckError {
            line: self.line_no,
            kind: ParseDeckErrorKind::BadValue {
                key: key.to_owned(),
                value: (*value).to_owned(),
            },
        })
    }

    fn get_opt<T: std::str::FromStr>(
        &self,
        key: &'static str,
    ) -> Result<Option<T>, ParseDeckError> {
        match self.pairs.iter().find(|(k, _)| *k == key) {
            None => Ok(None),
            Some((_, value)) => value.parse().map(Some).map_err(|_| ParseDeckError {
                line: self.line_no,
                kind: ParseDeckErrorKind::BadValue {
                    key: key.to_owned(),
                    value: (*value).to_owned(),
                },
            }),
        }
    }

    fn check_known(&self, allowed: &[&str]) -> Result<(), ParseDeckError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(k) {
                return Err(ParseDeckError {
                    line: self.line_no,
                    kind: ParseDeckErrorKind::UnknownKey((*k).to_owned()),
                });
            }
        }
        Ok(())
    }
}

/// Parses a deck file.
///
/// # Errors
///
/// Returns [`ParseDeckError`] with the 1-based line number of the first
/// malformed line.
///
/// # Examples
///
/// ```
/// let deck = odrc::parse_deck("
///     width layer=19 min=18 name=M1.W.1
///     space layer=20 min=20
/// ")?;
/// assert_eq!(deck.rules().len(), 2);
/// assert_eq!(deck.rules()[0].name, "M1.W.1");
/// # Ok::<(), odrc::ParseDeckError>(())
/// ```
pub fn parse_deck(text: &str) -> Result<RuleDeck, ParseDeckError> {
    let mut rules: Vec<Rule> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let (kind, rest) = tokens.split_first().expect("non-empty line");
        let args = LineArgs::parse(line_no, rest)?;
        let mut r = match *kind {
            "width" => {
                args.check_known(&["layer", "min"])?;
                rule()
                    .layer(args.get("layer")?)
                    .width()
                    .greater_than(args.get("min")?)
            }
            "space" => {
                args.check_known(&["layer", "min", "projection"])?;
                let sel = rule().layer(args.get("layer")?).space();
                let sel = match args.get_opt::<i64>("projection")? {
                    Some(p) => sel.when_projection_at_least(p),
                    None => sel,
                };
                sel.greater_than(args.get("min")?)
            }
            "area" => {
                args.check_known(&["layer", "min"])?;
                rule()
                    .layer(args.get("layer")?)
                    .area()
                    .greater_than(args.get("min")?)
            }
            "enclosure" => {
                args.check_known(&["inner", "outer", "min"])?;
                rule()
                    .layer(args.get("inner")?)
                    .enclosed_by(args.get("outer")?)
                    .greater_than(args.get("min")?)
            }
            "overlap" => {
                args.check_known(&["inner", "outer", "min_area"])?;
                rule()
                    .layer(args.get("inner")?)
                    .overlapping(args.get("outer")?)
                    .area_at_least(args.get("min_area")?)
            }
            "rectilinear" => {
                args.check_known(&["layer"])?;
                match args.get_opt::<i16>("layer")? {
                    Some(l) => rule().layer(l).polygons().is_rectilinear(),
                    None => rule().polygons().is_rectilinear(),
                }
            }
            other => {
                return Err(ParseDeckError {
                    line: line_no,
                    kind: ParseDeckErrorKind::UnknownRuleKind(other.to_owned()),
                })
            }
        };
        if let Some(name) = args.name {
            r = r.named(name);
        }
        if rules.iter().any(|prev| prev.name == r.name) {
            return Err(ParseDeckError {
                line: line_no,
                kind: ParseDeckErrorKind::DuplicateRuleName(r.name),
            });
        }
        rules.push(r);
    }
    Ok(RuleDeck::new(rules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    #[test]
    fn full_deck_parses() {
        let deck = parse_deck(
            "# comment-only line
             width layer=19 min=18 name=M1.W.1
             space layer=20 min=20
             space layer=20 min=40 projection=100 name=M2.S.P
             area layer=19 min=1400
             enclosure inner=30 outer=19 min=4
             overlap inner=30 outer=20 min_area=100
             rectilinear
             rectilinear layer=19  # trailing comment
            ",
        )
        .unwrap();
        assert_eq!(deck.rules().len(), 8);
        assert_eq!(deck.rules()[0].name, "M1.W.1");
        assert!(matches!(
            deck.rules()[2].kind,
            RuleKind::Space {
                min: 40,
                min_projection: 100,
                ..
            }
        ));
        assert!(matches!(
            deck.rules()[5].kind,
            RuleKind::OverlapArea { min_area: 100, .. }
        ));
    }

    #[test]
    fn empty_text_is_empty_deck() {
        assert!(parse_deck("").unwrap().rules().is_empty());
        assert!(parse_deck("\n  # nothing\n").unwrap().rules().is_empty());
    }

    #[test]
    fn unknown_kind_reports_line() {
        let err = parse_deck("width layer=1 min=2\nshrink layer=1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseDeckErrorKind::UnknownRuleKind(_)));
    }

    #[test]
    fn missing_key_reported() {
        let err = parse_deck("width layer=1").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, ParseDeckErrorKind::MissingKey("min"));
    }

    #[test]
    fn bad_value_reported() {
        let err = parse_deck("width layer=abc min=5").unwrap_err();
        assert!(matches!(err.kind, ParseDeckErrorKind::BadValue { .. }));
    }

    #[test]
    fn unknown_key_reported() {
        let err = parse_deck("width layer=1 min=5 bogus=2").unwrap_err();
        assert!(matches!(err.kind, ParseDeckErrorKind::UnknownKey(_)));
        let err = parse_deck("width layer=1 min=5 naked").unwrap_err();
        assert!(matches!(err.kind, ParseDeckErrorKind::UnknownKey(_)));
    }

    #[test]
    fn display_is_actionable() {
        let err = parse_deck("space layer=1").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"));
        assert!(text.contains("min"));
    }

    #[test]
    fn duplicate_explicit_names_rejected() {
        let err = parse_deck(
            "width layer=19 min=18 name=M1.W.1\n\
             space layer=20 min=20 name=M1.W.1\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2, "the second occurrence is the offender");
        assert_eq!(
            err.kind,
            ParseDeckErrorKind::DuplicateRuleName("M1.W.1".to_owned())
        );
        let text = err.to_string();
        assert!(text.contains("duplicate rule name 'M1.W.1'"), "{text}");
    }

    #[test]
    fn duplicate_default_names_rejected() {
        // Two unnamed space rules on the same layer derive the same
        // default name — ambiguous for reporting and resume.
        let err = parse_deck(
            "space layer=20 min=20\n\
             space layer=20 min=30\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseDeckErrorKind::DuplicateRuleName(_)));
        // Disambiguating with name= fixes it.
        let deck = parse_deck(
            "space layer=20 min=20\n\
             space layer=20 min=30 name=L20.S.2\n",
        )
        .unwrap();
        assert_eq!(deck.rules().len(), 2);
    }

    /// One malformed line per selector kind, each prefixed by a valid
    /// line so the reported line number is meaningful.
    #[test]
    fn every_selector_rejects_malformed_lines_with_line_numbers() {
        let cases: &[(&str, ParseDeckErrorKind)] = &[
            ("width layer=1", ParseDeckErrorKind::MissingKey("min")),
            (
                "space layer=1 min=oops",
                ParseDeckErrorKind::BadValue {
                    key: "min".to_owned(),
                    value: "oops".to_owned(),
                },
            ),
            ("area min=100", ParseDeckErrorKind::MissingKey("layer")),
            (
                "enclosure inner=30 min=4",
                ParseDeckErrorKind::MissingKey("outer"),
            ),
            (
                "overlap inner=30 outer=20 min=5",
                ParseDeckErrorKind::UnknownKey("min".to_owned()),
            ),
            (
                "rectilinear layer=1 min=2",
                ParseDeckErrorKind::UnknownKey("min".to_owned()),
            ),
        ];
        for (bad, kind) in cases {
            let text = format!("width layer=1 min=2\n{bad}\n");
            let err = parse_deck(&text).unwrap_err();
            assert_eq!(err.line, 2, "line number for {bad:?}");
            assert_eq!(&err.kind, kind, "error kind for {bad:?}");
        }
    }
}
