//! The rule definition DSL (§V-B of the paper, Listing 1).
//!
//! Rules are described with chained *selectors* (which objects) and
//! *predicates* (what must hold), mirroring the paper's interface:
//!
//! ```cpp
//! // C++ original (Listing 1)
//! db.layer(19).width().greater_than(18)
//! db.polygons().is_rectilinear()
//! db.layer(20).polygons().ensures([](auto& p){ ... })
//! ```
//!
//! ```
//! use odrc::rules::{rule, RuleDeck};
//!
//! let deck = RuleDeck::new(vec![
//!     rule().layer(19).width().greater_than(18),
//!     rule().layer(19).space().greater_than(18),
//!     rule().layer(30).enclosed_by(19).greater_than(4),
//!     rule().layer(19).area().greater_than(1400),
//!     rule().polygons().is_rectilinear(),
//!     rule().layer(20).polygons().ensures("named", |p| p.name.is_some()),
//! ]);
//! assert_eq!(deck.rules().len(), 6);
//! ```

use std::fmt;
use std::sync::Arc;

use odrc_db::{Layer, LayerPolygon};
use odrc_geometry::Polygon;

/// Information about a polygon handed to user predicates.
#[derive(Debug, Clone, Copy)]
pub struct PolygonInfo<'a> {
    /// The layer the polygon is drawn on.
    pub layer: Layer,
    /// The polygon's name (GDSII property 1), if any.
    pub name: Option<&'a str>,
    /// The geometry, in cell-local coordinates.
    pub polygon: &'a Polygon,
}

impl<'a> PolygonInfo<'a> {
    /// Builds the info view over a database polygon.
    pub fn of(p: &'a LayerPolygon) -> Self {
        PolygonInfo {
            layer: p.layer,
            name: p.name.as_deref(),
            polygon: &p.polygon,
        }
    }
}

/// A user predicate over polygons.
pub type EnsureFn = Arc<dyn Fn(PolygonInfo<'_>) -> bool + Send + Sync>;

/// The executable form of a rule.
#[derive(Clone)]
pub enum RuleKind {
    /// Minimum interior distance between facing edges of one polygon.
    Width {
        /// Checked layer.
        layer: Layer,
        /// Minimum width in dbu (violation when strictly below).
        min: i64,
    },
    /// Minimum exterior distance between facing edges.
    Space {
        /// Checked layer.
        layer: Layer,
        /// Minimum spacing in dbu.
        min: i64,
        /// Conditional-rule threshold: the spacing applies only to
        /// edge pairs whose projection overlap is at least this long
        /// (`0` = unconditional; §II "different spacing constraints
        /// given different projection lengths").
        min_projection: i64,
    },
    /// Minimum polygon area.
    Area {
        /// Checked layer.
        layer: Layer,
        /// Minimum area in dbu².
        min: i64,
    },
    /// Minimum margin by which `outer` must enclose shapes of `inner`.
    Enclosure {
        /// The enclosed layer (e.g. a via layer).
        inner: Layer,
        /// The enclosing layer (e.g. a metal layer).
        outer: Layer,
        /// Minimum margin in dbu.
        min: i64,
    },
    /// Minimum area of the boolean AND between a shape of `inner` and
    /// the geometry of `outer` ("minimum overlapping area constraints",
    /// §II) — e.g. a via must land on enough metal.
    OverlapArea {
        /// The layer whose shapes are measured (e.g. a via layer).
        inner: Layer,
        /// The layer overlapped against (e.g. a metal layer).
        outer: Layer,
        /// Minimum shared area in dbu².
        min_area: i64,
    },
    /// All selected polygons must be rectilinear.
    Rectilinear {
        /// Restrict to one layer; `None` checks every layer.
        layer: Option<Layer>,
    },
    /// A user-supplied predicate must hold for every selected polygon.
    Ensures {
        /// Restrict to one layer; `None` checks every layer.
        layer: Option<Layer>,
        /// Human-readable label for reports.
        label: String,
        /// The predicate; `true` means the polygon conforms.
        predicate: EnsureFn,
    },
}

impl fmt::Debug for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleKind::Width { layer, min } => write!(f, "Width(layer {layer} >= {min})"),
            RuleKind::Space {
                layer,
                min,
                min_projection,
            } => {
                if *min_projection > 0 {
                    write!(
                        f,
                        "Space(layer {layer} >= {min} when projection >= {min_projection})"
                    )
                } else {
                    write!(f, "Space(layer {layer} >= {min})")
                }
            }
            RuleKind::Area { layer, min } => write!(f, "Area(layer {layer} >= {min})"),
            RuleKind::Enclosure { inner, outer, min } => {
                write!(f, "Enclosure({inner} in {outer} >= {min})")
            }
            RuleKind::OverlapArea {
                inner,
                outer,
                min_area,
            } => write!(f, "OverlapArea({inner} and {outer} >= {min_area})"),
            RuleKind::Rectilinear { layer } => write!(f, "Rectilinear({layer:?})"),
            RuleKind::Ensures { layer, label, .. } => write!(f, "Ensures({layer:?}, {label})"),
        }
    }
}

/// A named design rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Report name (defaults to a `LAYER.KIND.1` style name).
    pub name: String,
    /// The executable rule.
    pub kind: RuleKind,
}

impl Rule {
    /// Renames the rule (paper-style names like `"M2.S.1"`).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Rule {
        self.name = name.into();
        self
    }

    /// The layers this rule reads. Used to decide which layers the
    /// partitioner must consider.
    pub fn layers(&self) -> Vec<Layer> {
        match self.kind {
            RuleKind::Width { layer, .. }
            | RuleKind::Space { layer, .. }
            | RuleKind::Area { layer, .. } => vec![layer],
            RuleKind::Enclosure { inner, outer, .. }
            | RuleKind::OverlapArea { inner, outer, .. } => vec![inner, outer],
            RuleKind::Rectilinear { layer } | RuleKind::Ensures { layer, .. } => {
                layer.map(|l| vec![l]).unwrap_or_default()
            }
        }
    }

    /// Returns `true` for rules whose result depends on one polygon at
    /// a time (width, area, rectilinear, ensures) — the "intra-polygon"
    /// checks of §IV-C, which memoize aggressively.
    pub fn is_intra_polygon(&self) -> bool {
        matches!(
            self.kind,
            RuleKind::Width { .. }
                | RuleKind::Area { .. }
                | RuleKind::Rectilinear { .. }
                | RuleKind::Ensures { .. }
        )
    }

    /// The interaction distance of the rule: how far apart two objects
    /// can be and still violate it together. Zero for per-polygon rules.
    pub fn interaction_distance(&self) -> i64 {
        match self.kind {
            RuleKind::Space { min, .. } => min,
            RuleKind::Enclosure { min, .. } => min,
            _ => 0,
        }
    }
}

/// An ordered list of rules.
#[derive(Debug, Clone, Default)]
pub struct RuleDeck {
    rules: Vec<Rule>,
}

impl RuleDeck {
    /// Builds a deck from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleDeck { rules }
    }

    /// Adds more rules (the paper's `add_rules`).
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
    }

    /// The rules in order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

impl FromIterator<Rule> for RuleDeck {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleDeck {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for RuleDeck {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

/// Starts a rule definition chain (the `db.` prefix of Listing 1).
pub fn rule() -> Selector {
    Selector
}

/// Entry point of the selector chain.
#[derive(Debug, Clone, Copy)]
pub struct Selector;

impl Selector {
    /// Selects objects on one layer.
    pub fn layer(self, layer: Layer) -> LayerSelector {
        LayerSelector { layer }
    }

    /// Selects polygons on every layer.
    pub fn polygons(self) -> PolygonSelector {
        PolygonSelector { layer: None }
    }
}

/// Selector scoped to one layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerSelector {
    layer: Layer,
}

impl LayerSelector {
    /// Selects the widths of this layer's polygons.
    pub fn width(self) -> MetricSelector {
        MetricSelector {
            build: MetricKind::Width(self.layer),
        }
    }

    /// Selects the spacings between this layer's polygon edges.
    pub fn space(self) -> SpaceSelector {
        SpaceSelector {
            layer: self.layer,
            min_projection: 0,
        }
    }

    /// Selects the areas of this layer's polygons.
    pub fn area(self) -> MetricSelector {
        MetricSelector {
            build: MetricKind::Area(self.layer),
        }
    }

    /// Selects the enclosure margins of this layer's shapes within
    /// `outer`.
    pub fn enclosed_by(self, outer: Layer) -> MetricSelector {
        MetricSelector {
            build: MetricKind::Enclosure {
                inner: self.layer,
                outer,
            },
        }
    }

    /// Selects the overlap areas of this layer's shapes with `outer`.
    pub fn overlapping(self, outer: Layer) -> OverlapSelector {
        OverlapSelector {
            inner: self.layer,
            outer,
        }
    }

    /// Selects this layer's polygons for shape predicates.
    pub fn polygons(self) -> PolygonSelector {
        PolygonSelector {
            layer: Some(self.layer),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum MetricKind {
    Width(Layer),
    Area(Layer),
    Enclosure { inner: Layer, outer: Layer },
}

/// A selected spacing metric, supporting conditional (projection-based)
/// variants before the closing predicate.
#[derive(Debug, Clone, Copy)]
pub struct SpaceSelector {
    layer: Layer,
    min_projection: i64,
}

impl SpaceSelector {
    /// Restricts the rule to edge pairs whose parallel projection
    /// overlap is at least `length` — the conditional spacing form.
    ///
    /// ```
    /// use odrc::rules::rule;
    /// let r = rule().layer(20).space().when_projection_at_least(100).greater_than(40);
    /// assert_eq!(r.interaction_distance(), 40);
    /// ```
    #[must_use]
    pub fn when_projection_at_least(mut self, length: i64) -> SpaceSelector {
        self.min_projection = length;
        self
    }

    /// Requires the spacing to be at least `min`, finishing the rule.
    pub fn greater_than(self, min: i64) -> Rule {
        let name = if self.min_projection > 0 {
            format!("L{}.S.P{}", self.layer, self.min_projection)
        } else {
            format!("L{}.S.1", self.layer)
        };
        Rule {
            name,
            kind: RuleKind::Space {
                layer: self.layer,
                min,
                min_projection: self.min_projection,
            },
        }
    }

    /// Alias of [`SpaceSelector::greater_than`].
    pub fn at_least(self, min: i64) -> Rule {
        self.greater_than(min)
    }
}

/// A selected scalar metric awaiting its predicate.
#[derive(Debug, Clone, Copy)]
pub struct MetricSelector {
    build: MetricKind,
}

impl MetricSelector {
    /// Requires the metric to be at least `min` (violation when
    /// strictly below), finishing the rule. Named after the paper's
    /// `greater_than` predicate.
    pub fn greater_than(self, min: i64) -> Rule {
        let (name, kind) = match self.build {
            MetricKind::Width(layer) => (format!("L{layer}.W.1"), RuleKind::Width { layer, min }),
            MetricKind::Area(layer) => (format!("L{layer}.A.1"), RuleKind::Area { layer, min }),
            MetricKind::Enclosure { inner, outer } => (
                format!("L{inner}.L{outer}.EN.1"),
                RuleKind::Enclosure { inner, outer, min },
            ),
        };
        Rule { name, kind }
    }

    /// Alias of [`MetricSelector::greater_than`] reading as "at least".
    pub fn at_least(self, min: i64) -> Rule {
        self.greater_than(min)
    }
}

/// A selected inner-outer overlap awaiting its area predicate.
#[derive(Debug, Clone, Copy)]
pub struct OverlapSelector {
    inner: Layer,
    outer: Layer,
}

impl OverlapSelector {
    /// Requires every inner shape to share at least `min_area` dbu²
    /// with the outer layer, finishing the rule.
    ///
    /// ```
    /// use odrc::rules::rule;
    /// let r = rule().layer(30).overlapping(20).area_at_least(100);
    /// assert_eq!(r.layers(), vec![30, 20]);
    /// ```
    pub fn area_at_least(self, min_area: i64) -> Rule {
        Rule {
            name: format!("L{}.L{}.OVL.1", self.inner, self.outer),
            kind: RuleKind::OverlapArea {
                inner: self.inner,
                outer: self.outer,
                min_area,
            },
        }
    }
}

/// Selected polygons awaiting a shape predicate.
#[derive(Debug, Clone, Copy)]
pub struct PolygonSelector {
    layer: Option<Layer>,
}

impl PolygonSelector {
    /// Requires axis-aligned shapes.
    pub fn is_rectilinear(self) -> Rule {
        Rule {
            name: match self.layer {
                Some(l) => format!("L{l}.RECT.1"),
                None => "RECT.1".to_owned(),
            },
            kind: RuleKind::Rectilinear { layer: self.layer },
        }
    }

    /// Requires a user predicate to hold for every selected polygon
    /// (the paper's `ensures`, which "takes a callable as a parameter
    /// that enables user-defined predicates").
    pub fn ensures(
        self,
        label: impl Into<String>,
        predicate: impl Fn(PolygonInfo<'_>) -> bool + Send + Sync + 'static,
    ) -> Rule {
        let label = label.into();
        Rule {
            name: match self.layer {
                Some(l) => format!("L{l}.USER.{label}"),
                None => format!("USER.{label}"),
            },
            kind: RuleKind::Ensures {
                layer: self.layer,
                label,
                predicate: Arc::new(predicate),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_rules_build() {
        let deck = RuleDeck::new(vec![
            rule().polygons().is_rectilinear(),
            rule().layer(19).width().greater_than(18),
            rule().layer(20).polygons().ensures("nonempty-name", |p| {
                p.name.map(|n| !n.is_empty()).unwrap_or(false)
            }),
        ]);
        assert_eq!(deck.rules().len(), 3);
        assert!(matches!(
            deck.rules()[1].kind,
            RuleKind::Width { layer: 19, min: 18 }
        ));
    }

    #[test]
    fn default_names_follow_paper_style() {
        assert_eq!(rule().layer(20).space().greater_than(20).name, "L20.S.1");
        assert_eq!(
            rule().layer(30).enclosed_by(19).greater_than(4).name,
            "L30.L19.EN.1"
        );
        assert_eq!(
            rule()
                .layer(19)
                .width()
                .greater_than(18)
                .named("M1.W.1")
                .name,
            "M1.W.1"
        );
    }

    #[test]
    fn rule_layers_and_classification() {
        let w = rule().layer(19).width().greater_than(18);
        assert!(w.is_intra_polygon());
        assert_eq!(w.layers(), vec![19]);
        assert_eq!(w.interaction_distance(), 0);

        let s = rule().layer(20).space().at_least(20);
        assert!(!s.is_intra_polygon());
        assert_eq!(s.interaction_distance(), 20);

        let e = rule().layer(30).enclosed_by(19).greater_than(4);
        assert!(!e.is_intra_polygon());
        assert_eq!(e.layers(), vec![30, 19]);

        let r = rule().polygons().is_rectilinear();
        assert!(r.layers().is_empty());
    }

    #[test]
    fn deck_collects_and_extends() {
        let mut deck: RuleDeck = vec![rule().layer(1).width().at_least(5)]
            .into_iter()
            .collect();
        deck.extend([rule().layer(1).space().at_least(5)]);
        deck.add_rules([rule().layer(1).area().at_least(100)]);
        assert_eq!(deck.rules().len(), 3);
    }

    #[test]
    fn debug_formats() {
        let e = rule().layer(30).enclosed_by(19).greater_than(4);
        assert!(format!("{:?}", e.kind).contains("Enclosure"));
        let u = rule().polygons().ensures("x", |_| true);
        assert!(format!("{:?}", u.kind).contains("Ensures"));
    }
}
