//! The `odrc` command-line checker.
//!
//! ```text
//! odrc <layout.gds> --rules <deck.rules> [--parallel] [--max-print N]
//! ```
//!
//! Reads a GDSII layout and a plain-text rule deck (see
//! [`odrc::parse_deck`] for the format), runs the checks, prints the
//! violations and the phase breakdown, and exits non-zero when
//! violations were found.

use std::process::ExitCode;

use odrc::{parse_deck, Engine};
use odrc_db::Layout;

struct Args {
    layout: String,
    rules: String,
    parallel: bool,
    max_print: usize,
    report: Option<String>,
    markers: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: odrc <layout.gds> --rules <deck.rules> [--parallel] [--max-print N] [--report out.csv] [--markers out.gds]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut layout = None;
    let mut rules = None;
    let mut parallel = false;
    let mut max_print = 20usize;
    let mut report = None;
    let mut markers = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--rules" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                rules = Some(argv[i + 1].clone());
                i += 2;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--report" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                report = Some(argv[i + 1].clone());
                i += 2;
            }
            "--markers" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                markers = Some(argv[i + 1].clone());
                i += 2;
            }
            "--max-print" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                max_print = argv[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            other if layout.is_none() && !other.starts_with('-') => {
                layout = Some(other.to_owned());
                i += 1;
            }
            _ => usage(),
        }
    }
    let (Some(layout), Some(rules)) = (layout, rules) else {
        usage()
    };
    Args {
        layout,
        rules,
        parallel,
        max_print,
        report,
        markers,
    }
}

/// Writes the violations as CSV: rule, kind, x0, y0, x1, y1, measured.
fn write_report(path: &str, violations: &[odrc::Violation]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "rule,kind,x0,y0,x1,y1,measured")?;
    for v in violations {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            v.rule,
            v.kind,
            v.location.lo().x,
            v.location.lo().y,
            v.location.hi().x,
            v.location.hi().y,
            v.measured
        )?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    let deck_text = std::fs::read_to_string(&args.rules)?;
    let deck = parse_deck(&deck_text)?;
    eprintln!("loaded {} rules from {}", deck.rules().len(), args.rules);

    let lib = odrc_gdsii::read_file(&args.layout)?;
    let layout = Layout::from_library(&lib)?;
    eprintln!("loaded '{}':\n{}", lib.name, layout.stats());

    let engine = if args.parallel {
        Engine::parallel()
    } else {
        Engine::sequential()
    };
    let report = engine.check(&layout, &deck);

    for rule in deck.rules() {
        let n = report.violations_of(&rule.name).count();
        println!("{:<20} {:>8}", rule.name, n);
    }
    println!("{:<20} {:>8}", "total", report.violations.len());
    for v in report.violations.iter().take(args.max_print) {
        println!("  {v}");
    }
    if report.violations.len() > args.max_print {
        println!("  ... and {} more", report.violations.len() - args.max_print);
    }
    if let Some(path) = &args.report {
        write_report(path, &report.violations)?;
        eprintln!("wrote {} violations to {path}", report.violations.len());
    }
    if let Some(path) = &args.markers {
        // Markers on a layer beyond the BEOL stack, KLayout-style.
        let lib = odrc::markers::marker_library(&report.violations, 10_000);
        odrc_gdsii::write_file(&lib, path)?;
        eprintln!("wrote marker GDSII to {path}");
    }
    eprintln!("\n{}", report.profile);
    eprintln!(
        "checks computed: {}, reused: {}, rows: {}",
        report.stats.checks_computed, report.stats.checks_reused, report.stats.rows
    );
    Ok(report.violations.len())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
