//! The parallel (device) mode (§IV-E of the paper).
//!
//! "After layout partitioning, OpenDRC performs parallel design rule
//! checks in a row-by-row manner, as cells belonging to different rows
//! will not produce any violation. Before checking, OpenDRC packs the
//! edges of relevant polygons into a flattened array, which is
//! transferred from the host memory to the device memory. Depending on
//! the complexity of each polygon or polygon pair, OpenDRC selects
//! either a brute-force executor or a sweepline executor."
//!
//! Small rows run the **brute-force executor**: one kernel, one thread
//! per edge, plain `for` loops over the remaining edges. Large rows run
//! the **sweepline executor**: edges are sorted by track; a first
//! kernel determines each edge's check range and counts its violations,
//! an exclusive scan sizes the output, and a second kernel emits the
//! records — the two-kernel-launch structure the paper chose "for
//! efficient kernel code optimization (viz. for loops versus while
//! loops)".
//!
//! Host-side packing of the next row overlaps with device work through
//! the asynchronous stream (§V-C).
//!
//! # Graceful degradation
//!
//! Every device interaction goes through the fallible `try_*` APIs.
//! When an operation fails (OOM against the device budget, a kernel
//! panic, a stalled or poisoned stream), the engine salvages the rows
//! that already completed, retries each failed row on a fresh stream
//! with a capped backoff ([`EngineOptions::max_device_retries`]), and
//! finally recomputes stubborn rows on the host with the same check
//! logic — so the final violation set is identical to a fault-free
//! device run. Retries and fallbacks are tallied in
//! [`EngineStats::device_retries`] / [`EngineStats::device_fallbacks`].
//!
//! [`EngineOptions::max_device_retries`]: crate::EngineOptions::max_device_retries
//! [`EngineStats::device_retries`]: crate::EngineStats::device_retries
//! [`EngineStats::device_fallbacks`]: crate::EngineStats::device_fallbacks

use std::time::Duration;

use odrc_db::Layer;
use odrc_geometry::{Edge, Point, Rect};
use odrc_xpu::{
    scan::exclusive_scan, Device, DeviceBuffer, LaunchConfig, Pending, Stream, ThreadCtx, XpuResult,
};

use crate::checks::edge::{space_pair_spec, SpaceSpec};
use crate::checks::enclosure_margin;
use crate::rules::{Rule, RuleKind};
use crate::scene::{DirtyWindow, LayerScene};
use crate::sequential::{partition_scene, RunContext};
use crate::violation::{Violation, ViolationKind};

/// A packed edge: `[x0, y0, x1, y1]`, the device-side representation.
type PackedEdge = [i32; 4];

fn unpack(e: PackedEdge) -> Edge {
    Edge::new(Point::new(e[0], e[1]), Point::new(e[2], e[3]))
}

fn pack(e: Edge) -> PackedEdge {
    [e.from.x, e.from.y, e.to.x, e.to.y]
}

/// For each sorted edge, the index of the first edge with a different
/// track. Collinear (equal-track) edges can never form a facing pair,
/// so kernels start each edge's scan at its run end — without this,
/// layouts with many edges on one track (e.g. all cell-bar bottoms of a
/// row) degrade to quadratic scans over the run.
fn track_run_ends(edges: &[PackedEdge]) -> Vec<u32> {
    let n = edges.len();
    let mut run_end = vec![n as u32; n];
    let mut i = n;
    let mut cur_end = n as u32;
    let mut cur_track = None;
    while i > 0 {
        i -= 1;
        let t = unpack(edges[i]).track();
        if cur_track != Some(t) {
            cur_end = (i + 1) as u32;
            cur_track = Some(t);
        }
        run_end[i] = cur_end;
    }
    run_end
}

/// A violation record produced by device kernels: edge indices into the
/// row's packed array plus the squared distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairRecord {
    a: u32,
    b: u32,
    d2: i64,
}

/// Per-edge brute-force hits: `(other edge index, measured)` lists.
type BruteHits = Vec<Vec<(u32, i64)>>;

/// One row's worth of packed edges plus its in-flight device results.
struct RowJob {
    edges: Vec<PackedEdge>,
    /// Same-track run table for the sweepline executor.
    run_ends: Option<Vec<u32>>,
    brute: Option<Pending<BruteHits>>,
    counts: Option<Pending<Vec<usize>>>,
}

struct RowEmit {
    edges: Vec<PackedEdge>,
    records: Pending<Vec<PairRecord>>,
}

/// The brute-force executor's kernel body: one thread per edge, plain
/// `for` loops over the remaining edges.
fn brute_kernel(
    edges: DeviceBuffer<PackedEdge>,
    spec: SpaceSpec,
) -> impl Fn(ThreadCtx, &mut Vec<(u32, i64)>) + Send + Sync + 'static {
    move |tctx, slot| {
        let edges = edges.read();
        let i = tctx.global_id();
        let ei = unpack(edges[i]);
        for (j, &pe) in edges.iter().enumerate().skip(i + 1) {
            if let Some(d2) = space_pair_spec(ei, unpack(pe), spec) {
                slot.push((j as u32, d2));
            }
        }
    }
}

/// The sweepline executor's first kernel: per-edge check range and
/// violation count (while loops over the sorted tracks).
fn count_kernel(
    edges: DeviceBuffer<PackedEdge>,
    runs: DeviceBuffer<u32>,
    spec: SpaceSpec,
    min: i64,
) -> impl Fn(ThreadCtx, &mut usize) + Send + Sync + 'static {
    move |tctx, slot| {
        let edges = edges.read();
        let runs = runs.read();
        let i = tctx.global_id();
        let ei = unpack(edges[i]);
        let mut count = 0usize;
        let mut j = runs[i] as usize;
        while j < edges.len() {
            let ej = unpack(edges[j]);
            if i64::from(ej.track()) - i64::from(ei.track()) > min {
                break;
            }
            if space_pair_spec(ei, ej, spec).is_some() {
                count += 1;
            }
            j += 1;
        }
        *slot = count;
    }
}

/// The sweepline executor's second kernel: emit each edge's violations
/// into its scan-determined output range.
fn emit_kernel(
    edges: DeviceBuffer<PackedEdge>,
    runs: DeviceBuffer<u32>,
    spec: SpaceSpec,
    min: i64,
) -> impl Fn(ThreadCtx, &mut [PairRecord]) + Send + Sync + 'static {
    move |tctx, slice| {
        let edges = edges.read();
        let runs = runs.read();
        let i = tctx.global_id();
        let ei = unpack(edges[i]);
        let mut k = 0usize;
        let mut j = runs[i] as usize;
        while j < edges.len() {
            let ej = unpack(edges[j]);
            if i64::from(ej.track()) - i64::from(ei.track()) > min {
                break;
            }
            if let Some(d2) = space_pair_spec(ei, ej, spec) {
                slice[k] = PairRecord {
                    a: i as u32,
                    b: j as u32,
                    d2,
                };
                k += 1;
            }
            j += 1;
        }
    }
}

/// Runs a same-layer spacing rule on the device, row by row.
pub(crate) fn check_space_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    layer: Layer,
    spec: SpaceSpec,
    out: &mut Vec<Violation>,
) {
    let layout = ctx.layout;
    let scene = ctx
        .profiler
        .time("scene", || LayerScene::build(layout, layer));
    check_space_scene_parallel(ctx, stream, rule_name, &scene, spec, out);
}

/// Device-mode spacing over an already-built (possibly windowed) scene.
pub(crate) fn check_space_scene_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    scene: &LayerScene,
    spec: SpaceSpec,
    out: &mut Vec<Violation>,
) {
    let min = spec.min;
    let (_, partition) = partition_scene(scene, min, ctx.options.partition, ctx.profiler);
    ctx.stats.rows += partition.len();
    let threshold = ctx.options.sweep_threshold;

    // Rows whose device pipeline failed at any point; they re-run on
    // fresh streams (then on the host) after the healthy rows resolve.
    let mut failed: Vec<Vec<PackedEdge>> = Vec::new();

    // Phase 1: pack each row and enqueue its first device phase. The
    // stream runs asynchronously, so packing row i+1 overlaps with the
    // device processing of row i (§V-C).
    let mut jobs: Vec<RowJob> = Vec::new();
    for row in &partition {
        let edges = ctx.profiler.time("pack", || {
            let mut edges: Vec<PackedEdge> = Vec::new();
            for &m in &row.members {
                for poly in scene.object_polygons(&scene.objects[m]) {
                    edges.extend(poly.edges().map(pack));
                }
            }
            // The sweepline executor requires track-sorted edges; the
            // brute executor does not care, so sorting unconditionally
            // keeps one packing path. Large rows sort on the device.
            odrc_xpu::sort::parallel_sort_by_key(stream.device(), &mut edges, |&e| {
                (unpack(e).track(), e)
            });
            edges
        });
        if edges.is_empty() {
            continue;
        }
        match enqueue_row_phase1(stream, &edges, threshold, spec, min) {
            Ok(job) => jobs.push(job),
            Err(_) => failed.push(edges),
        }
    }

    // Phase 2: for sweepline rows, scan the counts on the device and
    // enqueue the emit kernel; brute rows resolve directly.
    let device = stream.device().clone();
    let mut emits: Vec<RowEmit> = Vec::new();
    let mut hits: Vec<Violation> = Vec::new();
    for job in jobs {
        let RowJob {
            edges,
            run_ends,
            brute,
            counts,
        } = job;
        if let Some(pending) = brute {
            match ctx.profiler.time("kernel-wait", || pending.result()) {
                Ok(per_edge) => ctx.profiler.time("convert", || {
                    for (i, pairs) in per_edge.iter().enumerate() {
                        for &(j, d2) in pairs {
                            hits.push(make_violation(rule_name, &edges, i as u32, j, d2));
                        }
                    }
                }),
                Err(_) => failed.push(edges),
            }
        } else if let Some(pending) = counts {
            let counts = match ctx.profiler.time("kernel-wait", || pending.result()) {
                Ok(counts) => counts,
                Err(_) => {
                    failed.push(edges);
                    continue;
                }
            };
            let offsets = ctx
                .profiler
                .time("scan", || exclusive_scan(&device, &counts));
            let run_ends = run_ends.expect("sweep rows carry run ends");
            match enqueue_row_emit(stream, &edges, run_ends, offsets, spec, min) {
                Ok(records) => emits.push(RowEmit { edges, records }),
                Err(_) => failed.push(edges),
            }
        }
    }

    // Phase 3: collect emit results.
    for emit in emits {
        match ctx.profiler.time("kernel-wait", || emit.records.result()) {
            Ok(records) => ctx.profiler.time("convert", || {
                for r in records {
                    hits.push(make_violation(rule_name, &emit.edges, r.a, r.b, r.d2));
                }
            }),
            Err(_) => failed.push(emit.edges),
        }
    }

    // Recovery: retry each failed row on a fresh stream, then fall back
    // to the host. Completed rows above are salvaged as-is.
    for edges in failed {
        let records = recover_on_device(
            ctx,
            &device,
            |fresh| row_device_records(fresh, &edges, threshold, spec, min),
            || row_host_records(&edges, threshold, spec, min),
        );
        for (a, b, d2) in records {
            hits.push(make_violation(rule_name, &edges, a, b, d2));
        }
    }

    ctx.stats.checks_computed += hits.len();
    out.extend(hits);
}

/// Enqueues one row's first device phase (brute kernel, or sweepline
/// count kernel) on the shared stream.
fn enqueue_row_phase1(
    stream: &Stream,
    edges: &[PackedEdge],
    threshold: usize,
    spec: SpaceSpec,
    min: i64,
) -> XpuResult<RowJob> {
    let n = edges.len();
    let dev_edges = stream.try_upload(edges.to_vec())?;
    if n <= threshold {
        // Brute-force executor: one launch, plain for loops.
        let out_buf = stream.try_alloc::<Vec<(u32, i64)>>(n)?;
        stream.try_launch_map(
            LaunchConfig::for_threads(n),
            &out_buf,
            brute_kernel(dev_edges, spec),
        )?;
        Ok(RowJob {
            edges: edges.to_vec(),
            run_ends: None,
            brute: Some(stream.try_download(&out_buf)?),
            counts: None,
        })
    } else {
        // Sweepline executor, kernel 1: per-edge check range and
        // violation count.
        let run_ends = track_run_ends(edges);
        let dev_runs = stream.try_upload(run_ends.clone())?;
        let counts_buf = stream.try_alloc::<usize>(n)?;
        stream.try_launch_map(
            LaunchConfig::for_threads(n),
            &counts_buf,
            count_kernel(dev_edges, dev_runs, spec, min),
        )?;
        Ok(RowJob {
            edges: edges.to_vec(),
            run_ends: Some(run_ends),
            brute: None,
            counts: Some(stream.try_download(&counts_buf)?),
        })
    }
}

/// Enqueues a sweepline row's emit kernel on the shared stream.
fn enqueue_row_emit(
    stream: &Stream,
    edges: &[PackedEdge],
    run_ends: Vec<u32>,
    offsets: Vec<usize>,
    spec: SpaceSpec,
    min: i64,
) -> XpuResult<Pending<Vec<PairRecord>>> {
    let n = edges.len();
    let total = *offsets.last().expect("scan returns n+1 entries");
    let dev_edges = stream.try_upload(edges.to_vec())?;
    let dev_runs = stream.try_upload(run_ends)?;
    let out_buf = stream.try_alloc::<PairRecord>(total)?;
    // Kernel 2: emit each edge's violations into its range.
    stream.try_launch_scatter(
        LaunchConfig::for_threads(n),
        &out_buf,
        offsets,
        emit_kernel(dev_edges, dev_runs, spec, min),
    )?;
    stream.try_download(&out_buf)
}

/// One complete synchronous device attempt at a row, on the given
/// (fresh) stream. Runs the same executors as the pipelined path.
fn row_device_records(
    stream: &Stream,
    edges: &[PackedEdge],
    threshold: usize,
    spec: SpaceSpec,
    min: i64,
) -> XpuResult<Vec<(u32, u32, i64)>> {
    let n = edges.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let dev_edges = stream.try_upload(edges.to_vec())?;
    if n <= threshold {
        let out_buf = stream.try_alloc::<Vec<(u32, i64)>>(n)?;
        stream.try_launch_map(
            LaunchConfig::for_threads(n),
            &out_buf,
            brute_kernel(dev_edges, spec),
        )?;
        let per_edge = stream.try_download(&out_buf)?.result()?;
        let mut recs = Vec::new();
        for (i, pairs) in per_edge.iter().enumerate() {
            for &(j, d2) in pairs {
                recs.push((i as u32, j, d2));
            }
        }
        Ok(recs)
    } else {
        let run_ends = track_run_ends(edges);
        let dev_runs = stream.try_upload(run_ends)?;
        let counts_buf = stream.try_alloc::<usize>(n)?;
        stream.try_launch_map(
            LaunchConfig::for_threads(n),
            &counts_buf,
            count_kernel(dev_edges.clone(), dev_runs.clone(), spec, min),
        )?;
        let counts = stream.try_download(&counts_buf)?.result()?;
        let offsets = exclusive_scan(stream.device(), &counts);
        let total = *offsets.last().expect("scan returns n+1 entries");
        let out_buf = stream.try_alloc::<PairRecord>(total)?;
        stream.try_launch_scatter(
            LaunchConfig::for_threads(n),
            &out_buf,
            offsets,
            emit_kernel(dev_edges, dev_runs, spec, min),
        )?;
        let records = stream.try_download(&out_buf)?.result()?;
        Ok(records.into_iter().map(|r| (r.a, r.b, r.d2)).collect())
    }
}

/// The host (CPU) fallback for one row: the same executor choice and
/// check predicates as the device kernels, run inline — guaranteeing an
/// identical record set.
fn row_host_records(
    edges: &[PackedEdge],
    threshold: usize,
    spec: SpaceSpec,
    min: i64,
) -> Vec<(u32, u32, i64)> {
    let n = edges.len();
    let mut recs = Vec::new();
    if n <= threshold {
        for i in 0..n {
            let ei = unpack(edges[i]);
            for (j, &pe) in edges.iter().enumerate().skip(i + 1) {
                if let Some(d2) = space_pair_spec(ei, unpack(pe), spec) {
                    recs.push((i as u32, j as u32, d2));
                }
            }
        }
    } else {
        let runs = track_run_ends(edges);
        for i in 0..n {
            let ei = unpack(edges[i]);
            let mut j = runs[i] as usize;
            while j < n {
                let ej = unpack(edges[j]);
                if i64::from(ej.track()) - i64::from(ei.track()) > min {
                    break;
                }
                if let Some(d2) = space_pair_spec(ei, ej, spec) {
                    recs.push((i as u32, j as u32, d2));
                }
                j += 1;
            }
        }
    }
    recs
}

/// Retries `attempt` on fresh streams with a capped backoff, tallying
/// [`EngineStats::device_retries`]; after
/// [`EngineOptions::max_device_retries`] failures, runs the host
/// `fallback` and tallies [`EngineStats::device_fallbacks`].
///
/// Fresh streams are the recovery unit because stream errors are sticky
/// (see `odrc_xpu::stream`); the device itself survives kernel panics.
///
/// [`EngineOptions::max_device_retries`]: crate::EngineOptions::max_device_retries
/// [`EngineStats::device_retries`]: crate::EngineStats::device_retries
/// [`EngineStats::device_fallbacks`]: crate::EngineStats::device_fallbacks
fn recover_on_device<T>(
    ctx: &mut RunContext<'_>,
    device: &Device,
    mut attempt: impl FnMut(&Stream) -> XpuResult<T>,
    fallback: impl FnOnce() -> T,
) -> T {
    let max_retries = ctx.options.max_device_retries;
    for retry in 0..max_retries {
        ctx.stats.device_retries += 1;
        if retry > 0 {
            // Capped exponential backoff: transient contention clears,
            // and one-shot injected faults are consumed by the failing
            // attempt, so a bounded retry loop converges.
            let ms = ctx.options.retry_backoff_ms << (retry - 1).min(4);
            std::thread::sleep(Duration::from_millis(ms.min(50)));
        }
        let fresh = device.stream();
        if let Ok(value) = attempt(&fresh) {
            return value;
        }
    }
    ctx.stats.device_fallbacks += 1;
    fallback()
}

fn make_violation(rule: &str, edges: &[PackedEdge], a: u32, b: u32, d2: i64) -> Violation {
    let ea = unpack(edges[a as usize]);
    let eb = unpack(edges[b as usize]);
    Violation {
        rule: rule.to_owned(),
        kind: ViolationKind::Space,
        location: ea.mbr().hull(eb.mbr()),
        measured: d2,
    }
}

/// Runs an intra-polygon width or area rule with its per-polygon work
/// executed by a device kernel; memoization and instantiation stay on
/// the host, so the result set matches the sequential mode exactly.
pub(crate) fn check_intra_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule: &Rule,
    out: &mut Vec<Violation>,
) {
    use crate::checks::poly::LocalViolation;

    let (layer, is_width, min) = match rule.kind {
        RuleKind::Width { layer, min } => (layer, true, min),
        RuleKind::Area { layer, min } => (layer, false, min),
        _ => {
            // Rectilinear / user predicates run on the host in both
            // modes (user closures are host code).
            return crate::sequential::check_intra_rule(ctx, rule, out);
        }
    };

    // Pack the unique polygons of the layer (one entry per definition,
    // not per instance — the memoized work unit of §IV-C).
    let targets: Vec<(odrc_db::CellId, usize)> = ctx.layout.layer_polygons(layer).to_vec();
    if targets.is_empty() {
        return;
    }
    let polys: Vec<odrc_geometry::Polygon> = targets
        .iter()
        .map(|&(c, pi)| ctx.layout.cell(c).polygons()[pi].polygon.clone())
        .collect();
    let n = polys.len();

    // The whole-rule kernel body, shared by the device attempt and the
    // host fallback.
    let local_check = move |poly: &odrc_geometry::Polygon, slot: &mut Vec<LocalViolation>| {
        if is_width {
            crate::checks::poly::width_violations(poly, min, slot);
        } else {
            let area = poly.area();
            if area < min {
                slot.push(LocalViolation {
                    kind: ViolationKind::Area,
                    location: poly.mbr(),
                    measured: area,
                });
            }
        }
    };

    let device_attempt = |s: &Stream| -> XpuResult<Vec<Vec<LocalViolation>>> {
        let dev_polys = s.try_upload(polys.clone())?;
        let out_buf = s.try_alloc::<Vec<LocalViolation>>(n)?;
        let kernel_polys = dev_polys.clone();
        s.try_launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
            local_check(&kernel_polys.read()[tctx.global_id()], slot);
        })?;
        s.try_download(&out_buf)?.result()
    };

    let per_poly = match ctx.profiler.time("kernel-wait", || device_attempt(stream)) {
        Ok(per_poly) => per_poly,
        Err(_) => {
            let device = stream.device().clone();
            recover_on_device(ctx, &device, device_attempt, || {
                polys
                    .iter()
                    .map(|poly| {
                        let mut slot = Vec::new();
                        local_check(poly, &mut slot);
                        slot
                    })
                    .collect()
            })
        }
    };
    ctx.stats.checks_computed += n;

    // Host side: replay each cell's local violations through all its
    // instances.
    let instances = ctx.instances().clone();
    ctx.profiler.time("convert", || {
        for (idx, (cell, _)) in targets.iter().enumerate() {
            let Some(transforms) = instances.get(cell) else {
                continue;
            };
            ctx.stats.checks_reused += transforms.len().saturating_sub(1);
            for t in transforms {
                for v in &per_poly[idx] {
                    let vi = v.instantiate(t);
                    out.push(Violation {
                        rule: rule.name.clone(),
                        kind: vi.kind,
                        location: vi.location,
                        measured: vi.measured,
                    });
                }
            }
        }
    });
}

/// Runs an enclosure rule with per-via margin computation on the
/// device. Candidate gathering (the hierarchical layer query) stays on
/// the host.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_enclosure_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    // Host: flat inner shapes plus their outer candidates, gathered by
    // the same hierarchical bipartite sweep as the sequential mode.
    let work: Vec<(odrc_geometry::Polygon, Vec<odrc_geometry::Polygon>)> =
        crate::sequential::enclosure_work(ctx, inner, outer, min, window);
    if work.is_empty() {
        return;
    }
    let n = work.len();
    ctx.stats.checks_computed += n;
    let rects: Vec<Rect> = work.iter().map(|(p, _)| p.mbr()).collect();

    let device_attempt = |s: &Stream| -> XpuResult<Vec<i64>> {
        let dev_work = s.try_upload(work.clone())?;
        let margins = s.try_alloc::<i64>(n)?;
        let kernel_work = dev_work.clone();
        s.try_launch_map(LaunchConfig::for_threads(n), &margins, move |tctx, slot| {
            let work = kernel_work.read();
            let (poly, candidates) = &work[tctx.global_id()];
            let refs: Vec<&odrc_geometry::Polygon> = candidates.iter().collect();
            *slot = enclosure_margin(poly.mbr(), &refs, min);
        })?;
        s.try_download(&margins)?.result()
    };

    let margins = match ctx.profiler.time("kernel-wait", || device_attempt(stream)) {
        Ok(margins) => margins,
        Err(_) => {
            let device = stream.device().clone();
            recover_on_device(ctx, &device, device_attempt, || {
                work.iter()
                    .map(|(poly, candidates)| {
                        let refs: Vec<&odrc_geometry::Polygon> = candidates.iter().collect();
                        enclosure_margin(poly.mbr(), &refs, min)
                    })
                    .collect()
            })
        }
    };
    ctx.profiler.time("convert", || {
        for (rect, margin) in rects.into_iter().zip(margins) {
            if margin < min {
                out.push(Violation {
                    rule: rule_name.to_owned(),
                    kind: ViolationKind::Enclosure,
                    location: rect,
                    measured: margin,
                });
            }
        }
    });
}

/// Runs a minimum-overlap-area rule with the boolean work on the
/// device: one thread per inner shape intersects it with its outer
/// candidates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_overlap_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min_area: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    use odrc_infra::Region;
    let work: Vec<(odrc_geometry::Polygon, Vec<odrc_geometry::Polygon>)> =
        crate::sequential::enclosure_work(ctx, inner, outer, 0, window);
    if work.is_empty() {
        return;
    }
    let n = work.len();
    ctx.stats.checks_computed += n;
    let rects: Vec<Rect> = work.iter().map(|(p, _)| p.mbr()).collect();

    let shared_area =
        |poly: &odrc_geometry::Polygon, candidates: &[odrc_geometry::Polygon]| -> i64 {
            let inner_region = Region::from_polygons([poly]);
            let outer_region = Region::from_polygons(candidates.iter());
            inner_region.intersection(&outer_region).area()
        };

    let device_attempt = |s: &Stream| -> XpuResult<Vec<i64>> {
        let dev_work = s.try_upload(work.clone())?;
        let areas = s.try_alloc::<i64>(n)?;
        let kernel_work = dev_work.clone();
        s.try_launch_map(LaunchConfig::for_threads(n), &areas, move |tctx, slot| {
            let work = kernel_work.read();
            let (poly, candidates) = &work[tctx.global_id()];
            *slot = shared_area(poly, candidates);
        })?;
        s.try_download(&areas)?.result()
    };

    let areas = match ctx.profiler.time("kernel-wait", || device_attempt(stream)) {
        Ok(areas) => areas,
        Err(_) => {
            let device = stream.device().clone();
            recover_on_device(ctx, &device, device_attempt, || {
                work.iter()
                    .map(|(poly, candidates)| shared_area(poly, candidates))
                    .collect()
            })
        }
    };
    ctx.profiler.time("convert", || {
        for (rect, shared) in rects.into_iter().zip(areas) {
            if shared < min_area {
                out.push(Violation {
                    rule: rule_name.to_owned(),
                    kind: ViolationKind::OverlapArea,
                    location: rect,
                    measured: shared,
                });
            }
        }
    });
}

/// Device-accelerated helper used by tests and benches: all-pairs
/// spacing over a flat edge list (no hierarchy, no partition), brute
/// force. Returns canonical violations. Panics on device faults (it is
/// a bench/test harness, not an engine path).
pub fn flat_space_brute(
    device: &Device,
    edges: &[Edge],
    rule_name: &str,
    min: i64,
) -> Vec<Violation> {
    let stream = device.stream();
    let packed: Vec<PackedEdge> = edges.iter().map(|&e| pack(e)).collect();
    let n = packed.len();
    if n == 0 {
        return Vec::new();
    }
    let dev = stream.upload(packed.clone());
    let out_buf = stream.alloc::<Vec<(u32, i64)>>(n);
    stream.launch_map(
        LaunchConfig::for_threads(n),
        &out_buf,
        brute_kernel(dev, SpaceSpec::simple(min)),
    );
    let per_edge = stream.download(&out_buf).wait();
    let mut out = Vec::new();
    for (i, pairs) in per_edge.iter().enumerate() {
        for &(j, d2) in pairs {
            out.push(make_violation(rule_name, &packed, i as u32, j, d2));
        }
    }
    crate::violation::canonicalize(out)
}
