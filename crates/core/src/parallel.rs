//! The parallel (device) mode (§IV-E of the paper).
//!
//! "After layout partitioning, OpenDRC performs parallel design rule
//! checks in a row-by-row manner, as cells belonging to different rows
//! will not produce any violation. Before checking, OpenDRC packs the
//! edges of relevant polygons into a flattened array, which is
//! transferred from the host memory to the device memory. Depending on
//! the complexity of each polygon or polygon pair, OpenDRC selects
//! either a brute-force executor or a sweepline executor."
//!
//! Small rows run the **brute-force executor**: one kernel, one thread
//! per edge, plain `for` loops over the remaining edges. Large rows run
//! the **sweepline executor**: edges are sorted by track; a first
//! kernel determines each edge's check range and counts its violations,
//! an exclusive scan sizes the output, and a second kernel emits the
//! records — the two-kernel-launch structure the paper chose "for
//! efficient kernel code optimization (viz. for loops versus while
//! loops)".
//!
//! Every rule's device work is split into an **issue** half (host
//! gather, shared zero-copy uploads, kernel launches — all enqueued on
//! the rule's own stream, returning in-flight handles immediately) and
//! a **collect** half (result waits, the scan+emit second phase,
//! recovery). The engine issues the whole deck before collecting
//! anything, so uploads and kernels of independent rules overlap
//! across streams with one deferred synchronization per stream
//! (§V-C); the [planner](crate::plan) additionally keeps packed row
//! buffers device-resident so N rules on one layer upload once.
//!
//! # Graceful degradation
//!
//! Every device interaction goes through the fallible `try_*` APIs.
//! When an operation fails (OOM against the device budget, a kernel
//! panic, a stalled or poisoned stream), the engine salvages the rows
//! that already completed and defers the failed work units onto the
//! run's [`RecoveryUnit`] queue. After every rule has collected, the
//! queue is drained: each unit is retried on a fresh stream under a
//! capped backoff **deadline** ([`EngineOptions::max_device_retries`],
//! checked at drain time rather than slept inline, so healthy rules
//! keep draining), and stubborn units are recomputed on the host with
//! the same check logic — so the final violation set is identical to a
//! fault-free device run. Retries and fallbacks are tallied in
//! [`EngineStats::device_retries`] / [`EngineStats::device_fallbacks`].
//!
//! [`EngineOptions::max_device_retries`]: crate::EngineOptions::max_device_retries
//! [`EngineStats::device_retries`]: crate::EngineStats::device_retries
//! [`EngineStats::device_fallbacks`]: crate::EngineStats::device_fallbacks

use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use odrc_db::Layer;
use odrc_geometry::{Edge, Polygon, Rect};
use odrc_xpu::{
    scan::exclusive_scan, Device, DeviceBuffer, LaunchBatch, LaunchConfig, Pending, Stream,
    ThreadCtx, XpuResult,
};

use crate::checks::edge::{space_pair_spec, SpaceSpec};
use crate::checks::enclosure_margin;
use crate::checks::poly::LocalViolation;
use crate::plan::{
    build_runs, pack, span_lo, GraphNode, IntraData, LaunchGraph, PackedEdge, PlannedRow, RowSet,
    RunInfo,
};
use crate::rules::{Rule, RuleKind};
use crate::scene::{DirtyWindow, LayerScene};
use crate::sequential::RunContext;
use crate::violation::{Violation, ViolationKind};

pub(crate) use crate::plan::unpack;

/// A violation record produced by device kernels: edge indices into the
/// row's packed array plus the squared distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairRecord {
    a: u32,
    b: u32,
    d2: i64,
}

/// Per-edge brute-force hits: `(other edge index, measured)` lists.
type BruteHits = Vec<Vec<(u32, i64)>>;

/// One row's in-flight first device phase.
struct RowJob {
    row: Arc<PlannedRow>,
    /// Recorded launch geometry, reused by the emit phase.
    cfg: LaunchConfig,
    brute: Option<Pending<BruteHits>>,
    counts: Option<Pending<Vec<usize>>>,
}

struct RowEmit {
    row: Arc<PlannedRow>,
    records: Pending<Vec<PairRecord>>,
}

/// Span window of a packed edge along its own axis, as `(lo, hi)`.
#[inline]
fn edge_window(e: PackedEdge) -> (i64, i64) {
    if e[0] == e[2] {
        (i64::from(e[1].min(e[3])), i64::from(e[1].max(e[3])))
    } else {
        (i64::from(e[0].min(e[2])), i64::from(e[0].max(e[2])))
    }
}

/// Index of the run containing edge `i` in a [`build_runs`] table.
#[inline]
fn run_index(runs: &[RunInfo], i: usize) -> usize {
    runs.partition_point(|run| (run.end as usize) <= i)
}

/// The windowed candidate enumeration every spacing executor shares:
/// visits the partners `j > i` of edge `i` (which lives in run `r`)
/// that could possibly violate `spec`, calling `hit(j, d2)` for each
/// actual violation. Count, emit, brute and host fallback all walk
/// this exact sequence, so their outputs agree pair for pair.
///
/// Why the pruning is conservative (never drops a violation):
///
/// * a violating pair is [`ExteriorFacing`](crate::checks::edge) —
///   parallel, same orientation, *different* tracks — so same-run
///   pairs (collinear) and cross-orientation runs contribute nothing;
/// * the violation predicate requires `d2 = gx² + gy² < min²` where
///   `gx` is the track gap: once a run's track is `min` or more away,
///   that run and (tracks sort ascending) everything after it within
///   the orientation is out of reach;
/// * within a reachable run (sorted by span-low) a partner reaches the
///   query window `[lo_i, hi_i]` only if its span-low lies in
///   `[lo_i − min − run.max_len, hi_i + min]`: below the lower bound
///   even the run's longest edge falls short of `lo_i − min`, above
///   the upper bound the span gap is already ≥ `min`. The window is
///   found by binary search and scanned to the break.
fn for_each_hit(
    edges: &[PackedEdge],
    runs: &[RunInfo],
    i: usize,
    r: usize,
    spec: SpaceSpec,
    hit: &mut dyn FnMut(u32, i64),
) {
    let ei = unpack(edges[i]);
    let me = runs[r];
    let (lo_i, hi_i) = edge_window(edges[i]);
    let hi_bound = hi_i.saturating_add(spec.min);
    for run in &runs[r + 1..] {
        if run.orient != me.orient || i64::from(run.track) - i64::from(me.track) >= spec.min {
            break;
        }
        let lo_bound = lo_i.saturating_sub(spec.min).saturating_sub(run.max_len);
        let seg = &edges[run.start as usize..run.end as usize];
        let off = seg.partition_point(|&e| i64::from(span_lo(e)) < lo_bound);
        for (k, &pe) in seg.iter().enumerate().skip(off) {
            if i64::from(span_lo(pe)) > hi_bound {
                break;
            }
            if let Some(d2) = space_pair_spec(ei, unpack(pe), spec) {
                hit((run.start as usize + k) as u32, d2);
            }
        }
    }
}

/// The brute-force executor's kernel body: one tile launch, each chunk
/// walking its edges' candidate windows with plain `for` loops.
#[allow(clippy::type_complexity)]
fn brute_kernel(
    edges: DeviceBuffer<PackedEdge>,
    runs: DeviceBuffer<RunInfo>,
    spec: SpaceSpec,
) -> impl Fn(Range<usize>, &mut [Vec<(u32, i64)>]) + Send + Sync + 'static {
    move |range, tile| {
        let edges = edges.read();
        let runs = runs.read();
        let mut r = run_index(&runs, range.start);
        for (slot, i) in tile.iter_mut().zip(range) {
            while (runs[r].end as usize) <= i {
                r += 1;
            }
            for_each_hit(&edges, &runs, i, r, spec, &mut |j, d2| slot.push((j, d2)));
        }
    }
}

/// The sweepline executor's first kernel: per-edge check range and
/// violation count over the windowed enumeration.
fn count_kernel(
    edges: DeviceBuffer<PackedEdge>,
    runs: DeviceBuffer<RunInfo>,
    spec: SpaceSpec,
) -> impl Fn(Range<usize>, &mut [usize]) + Send + Sync + 'static {
    move |range, tile| {
        let edges = edges.read();
        let runs = runs.read();
        let mut r = run_index(&runs, range.start);
        for (slot, i) in tile.iter_mut().zip(range) {
            while (runs[r].end as usize) <= i {
                r += 1;
            }
            let mut count = 0usize;
            for_each_hit(&edges, &runs, i, r, spec, &mut |_, _| count += 1);
            *slot = count;
        }
    }
}

/// The sweepline executor's second kernel: emit each edge's violations
/// into its scan-determined output range. Walks the same enumeration
/// as [`count_kernel`], so every range is filled exactly.
fn emit_kernel(
    edges: DeviceBuffer<PackedEdge>,
    runs: DeviceBuffer<RunInfo>,
    spec: SpaceSpec,
) -> impl Fn(Range<usize>, &mut [&mut [PairRecord]]) + Send + Sync + 'static {
    move |range, tile| {
        let edges = edges.read();
        let runs = runs.read();
        let mut r = run_index(&runs, range.start);
        for (slot, i) in tile.iter_mut().zip(range) {
            while (runs[r].end as usize) <= i {
                r += 1;
            }
            let mut k = 0usize;
            for_each_hit(&edges, &runs, i, r, spec, &mut |j, d2| {
                slot[k] = PairRecord {
                    a: i as u32,
                    b: j,
                    d2,
                };
                k += 1;
            });
        }
    }
}

/// An issued rule: the device work is enqueued on `stream`; results
/// materialize at [`collect_rule`].
pub(crate) struct InFlightRule {
    stream: Stream,
    kind: InFlightKind,
}

enum InFlightKind {
    Space(SpaceIssue),
    Intra(IntraIssue),
    Pairs(PairsIssue),
    /// Host-only rules (rectilinear, user predicates) run synchronously
    /// at issue time; their result rides along.
    Host(Vec<Violation>),
}

struct SpaceIssue {
    rule_name: String,
    spec: SpaceSpec,
    jobs: Vec<RowJob>,
    failed: Vec<Arc<PlannedRow>>,
}

struct IntraIssue {
    rule_name: String,
    is_width: bool,
    min: i64,
    data: Arc<IntraData>,
    pending: Option<Pending<Vec<Vec<LocalViolation>>>>,
}

struct PairsIssue {
    rule_name: String,
    kind: ViolationKind,
    min: i64,
    work: Arc<Vec<(Polygon, Vec<Polygon>)>>,
    rects: Vec<Rect>,
    pending: Option<Pending<Vec<i64>>>,
}

/// Issues one rule's device pipeline on `stream` (taking ownership of
/// the stream) and returns without waiting for any device result.
pub(crate) fn issue_rule(ctx: &mut RunContext<'_>, stream: Stream, rule: &Rule) -> InFlightRule {
    let kind = match &rule.kind {
        RuleKind::Space {
            layer,
            min,
            min_projection,
        } => {
            let spec = SpaceSpec {
                min: *min,
                min_projection: *min_projection,
            };
            let rows = ctx.row_set(stream.device(), *layer, *min);
            let graph = ctx.launch_graph(*layer, *min, &rows);
            InFlightKind::Space(issue_space(ctx, &stream, &rule.name, &rows, &graph, spec))
        }
        RuleKind::Enclosure { inner, outer, min } => InFlightKind::Pairs(issue_pairs(
            ctx,
            &stream,
            &rule.name,
            ViolationKind::Enclosure,
            *inner,
            *outer,
            *min,
            None,
        )),
        RuleKind::OverlapArea {
            inner,
            outer,
            min_area,
        } => InFlightKind::Pairs(issue_pairs(
            ctx,
            &stream,
            &rule.name,
            ViolationKind::OverlapArea,
            *inner,
            *outer,
            *min_area,
            None,
        )),
        RuleKind::Width { layer, min } => {
            InFlightKind::Intra(issue_intra(ctx, &stream, &rule.name, *layer, true, *min))
        }
        RuleKind::Area { layer, min } => {
            InFlightKind::Intra(issue_intra(ctx, &stream, &rule.name, *layer, false, *min))
        }
        _ => {
            // Rectilinear / user predicates run on the host in both
            // modes (user closures are host code).
            let mut host = Vec::new();
            crate::sequential::check_intra_rule(ctx, rule, &mut host);
            InFlightKind::Host(host)
        }
    };
    InFlightRule { stream, kind }
}

/// Waits for an issued rule's device results, runs the second
/// (scan+emit) phase where needed, recovers failed work units, and
/// drains the rule's stream.
pub(crate) fn collect_rule(ctx: &mut RunContext<'_>, fl: InFlightRule, out: &mut Vec<Violation>) {
    let InFlightRule { stream, kind } = fl;
    match kind {
        InFlightKind::Space(issue) => collect_space(ctx, &stream, issue, out),
        InFlightKind::Intra(issue) => collect_intra(ctx, issue, out),
        InFlightKind::Pairs(issue) => collect_pairs(ctx, issue, out),
        InFlightKind::Host(host) => out.extend(host),
    }
    // Errors were already handled per work unit; drain the stream
    // without re-raising them.
    let _ = stream.try_synchronize();
}

/// Device-mode spacing over an already-built (possibly windowed)
/// scene, synchronously on the caller's stream — the delta checker's
/// entry point. Windowed row sets are rule-specific, so they bypass
/// the planner's cache.
pub(crate) fn check_space_scene_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    scene: &LayerScene,
    spec: SpaceSpec,
    out: &mut Vec<Violation>,
) {
    let rows = RowSet::build(ctx, stream.device(), scene, spec.min);
    let graph = LaunchGraph::record(&rows.rows, ctx.options.sweep_threshold);
    let issue = issue_space(ctx, stream, rule_name, &rows, &graph, spec);
    collect_space(ctx, stream, issue, out);
    let device = stream.device().clone();
    drain_recovery(ctx, &device, out);
}

/// Issue half of the spacing pipeline: walk the (recorded or replayed)
/// launch graph, acquiring each row's device-resident buffers and
/// enqueuing its first kernel phase. The whole phase goes through one
/// [`LaunchBatch`], so under fusion every row's uploads and kernels
/// ride a single stream dispatch (one worker wake per rule).
fn issue_space(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    rows: &RowSet,
    graph: &LaunchGraph,
    spec: SpaceSpec,
) -> SpaceIssue {
    ctx.stats.rows += rows.partition_rows;
    let mut jobs = Vec::with_capacity(graph.nodes.len());
    let mut failed = Vec::new();
    let mut batch = stream.batch(ctx.options.fusion);
    for node in &graph.nodes {
        match enqueue_row_phase1(ctx, &mut batch, node, spec) {
            Ok(job) => jobs.push(job),
            Err(_) => failed.push(Arc::clone(&node.row)),
        }
    }
    batch.commit();
    SpaceIssue {
        rule_name: rule_name.to_owned(),
        spec,
        jobs,
        failed,
    }
}

/// Collect half of the spacing pipeline: brute results, the
/// count→scan→emit second phase for sweepline rows, and recovery.
fn collect_space(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    issue: SpaceIssue,
    out: &mut Vec<Violation>,
) {
    let SpaceIssue {
        rule_name,
        spec,
        jobs,
        mut failed,
    } = issue;
    let threshold = ctx.options.sweep_threshold;
    let device = stream.device().clone();
    let mut emits: Vec<RowEmit> = Vec::new();
    let mut hits: Vec<Violation> = Vec::new();

    // Phase 2: for sweepline rows, scan the counts on the device and
    // enqueue the emit kernel; brute rows resolve directly.
    for job in jobs {
        let RowJob {
            row,
            cfg,
            brute,
            counts,
        } = job;
        if let Some(pending) = brute {
            match ctx.device_wait(|| pending.result()) {
                Ok(per_edge) => ctx.profiler.time("convert", || {
                    for (i, pairs) in per_edge.iter().enumerate() {
                        for &(j, d2) in pairs {
                            hits.push(make_violation(&rule_name, &row.edges.host, i as u32, j, d2));
                        }
                    }
                }),
                Err(_) => failed.push(row),
            }
        } else if let Some(pending) = counts {
            let counts = match ctx.device_wait(|| pending.result()) {
                Ok(counts) => counts,
                Err(_) => {
                    failed.push(row);
                    continue;
                }
            };
            let offsets = ctx
                .profiler
                .time("scan", || exclusive_scan(&device, &counts));
            match enqueue_row_emit(ctx, stream, &row, cfg, offsets, spec) {
                Ok(records) => emits.push(RowEmit { row, records }),
                Err(_) => failed.push(row),
            }
        }
    }

    // Phase 3: collect emit results.
    for emit in emits {
        match ctx.device_wait(|| emit.records.result()) {
            Ok(records) => ctx.profiler.time("convert", || {
                for r in records {
                    hits.push(make_violation(
                        &rule_name,
                        &emit.row.edges.host,
                        r.a,
                        r.b,
                        r.d2,
                    ));
                }
            }),
            Err(_) => failed.push(emit.row),
        }
    }

    // Recovery: defer each failed row onto the run's queue; the engine
    // drains it after every rule has collected (see [`drain_recovery`]),
    // so one faulty row never stalls the healthy rules behind an inline
    // backoff sleep. Completed rows above are salvaged as-is.
    for row in failed {
        ctx.recovery.push(RecoveryUnit::new(RecoveryWork::SpaceRow {
            rule_name: rule_name.clone(),
            edges: Arc::clone(&row.edges.host),
            threshold,
            spec,
        }));
    }

    ctx.stats.checks_computed += hits.len();
    out.extend(hits);
}

/// Enqueues one row's first device phase (brute kernel, or sweepline
/// count kernel) into the rule's launch batch, acquiring the shared
/// device-resident buffers through the same batch.
fn enqueue_row_phase1(
    ctx: &mut RunContext<'_>,
    batch: &mut LaunchBatch<'_>,
    node: &GraphNode,
    spec: SpaceSpec,
) -> XpuResult<RowJob> {
    let row = &node.row;
    let n = row.edges.host.len();
    let (dev_edges, elided) = row.edges.acquire_in(batch)?;
    ctx.note_upload(elided, row.edges.bytes());
    let (dev_runs, elided) = row.runs.acquire_in(batch)?;
    ctx.note_upload(elided, row.runs.bytes());
    if node.brute {
        // Brute-force executor: one tile launch, plain for loops.
        let out_buf = batch.try_alloc::<Vec<(u32, i64)>>(n)?;
        batch.try_launch_tiles(node.cfg, &out_buf, brute_kernel(dev_edges, dev_runs, spec))?;
        Ok(RowJob {
            row: Arc::clone(row),
            cfg: node.cfg,
            brute: Some(batch.try_download(&out_buf)?),
            counts: None,
        })
    } else {
        // Sweepline executor, kernel 1: per-edge check range and
        // violation count.
        let counts_buf = batch.try_alloc::<usize>(n)?;
        batch.try_launch_tiles(
            node.cfg,
            &counts_buf,
            count_kernel(dev_edges, dev_runs, spec),
        )?;
        Ok(RowJob {
            row: Arc::clone(row),
            cfg: node.cfg,
            brute: None,
            counts: Some(batch.try_download(&counts_buf)?),
        })
    }
}

/// Enqueues a sweepline row's emit kernel on the rule's stream (one
/// fused batch per row). The edges and run table are already
/// device-resident from phase 1, so this acquires (elides) rather
/// than re-uploading.
fn enqueue_row_emit(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    row: &PlannedRow,
    cfg: LaunchConfig,
    offsets: Vec<usize>,
    spec: SpaceSpec,
) -> XpuResult<Pending<Vec<PairRecord>>> {
    let total = *offsets.last().expect("scan returns n+1 entries");
    let mut batch = stream.batch(ctx.options.fusion);
    let (dev_edges, elided) = row.edges.acquire_in(&mut batch)?;
    ctx.note_upload(elided, row.edges.bytes());
    let (dev_runs, elided) = row.runs.acquire_in(&mut batch)?;
    ctx.note_upload(elided, row.runs.bytes());
    let out_buf = batch.try_alloc::<PairRecord>(total)?;
    // Kernel 2: emit each edge's violations into its range.
    batch.try_launch_scatter_tiles(
        cfg,
        &out_buf,
        offsets,
        emit_kernel(dev_edges, dev_runs, spec),
    )?;
    let pending = batch.try_download(&out_buf)?;
    batch.commit();
    Ok(pending)
}

/// One complete synchronous device attempt at a row, on the given
/// (fresh) stream. Runs the same executors as the pipelined path. The
/// run table is rebuilt here (the cached copy may be the failed one).
fn row_device_records(
    stream: &Stream,
    edges: &Arc<Vec<PackedEdge>>,
    threshold: usize,
    spec: SpaceSpec,
) -> XpuResult<Vec<(u32, u32, i64)>> {
    let n = edges.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let dev_edges = stream.try_upload_shared(Arc::clone(edges))?;
    let dev_runs = stream.try_upload_shared(Arc::new(build_runs(edges)))?;
    if n <= threshold {
        let out_buf = stream.try_alloc::<Vec<(u32, i64)>>(n)?;
        stream.try_launch_tiles(
            LaunchConfig::for_threads(n),
            &out_buf,
            brute_kernel(dev_edges, dev_runs, spec),
        )?;
        let per_edge = stream.try_download(&out_buf)?.result()?;
        let mut recs = Vec::new();
        for (i, pairs) in per_edge.iter().enumerate() {
            for &(j, d2) in pairs {
                recs.push((i as u32, j, d2));
            }
        }
        Ok(recs)
    } else {
        let counts_buf = stream.try_alloc::<usize>(n)?;
        stream.try_launch_tiles(
            LaunchConfig::for_threads(n),
            &counts_buf,
            count_kernel(dev_edges.clone(), dev_runs.clone(), spec),
        )?;
        let counts = stream.try_download(&counts_buf)?.result()?;
        let offsets = exclusive_scan(stream.device(), &counts);
        let total = *offsets.last().expect("scan returns n+1 entries");
        let out_buf = stream.try_alloc::<PairRecord>(total)?;
        stream.try_launch_scatter_tiles(
            LaunchConfig::for_threads(n),
            &out_buf,
            offsets,
            emit_kernel(dev_edges, dev_runs, spec),
        )?;
        let records = stream.try_download(&out_buf)?.result()?;
        Ok(records.into_iter().map(|r| (r.a, r.b, r.d2)).collect())
    }
}

/// The host (CPU) fallback for one row: the same windowed enumeration
/// as the device kernels, run inline — guaranteeing an identical
/// record set (the executor choice does not change the records, so no
/// threshold is needed here).
fn row_host_records(edges: &[PackedEdge], spec: SpaceSpec) -> Vec<(u32, u32, i64)> {
    let runs = build_runs(edges);
    let mut recs = Vec::new();
    let mut r = 0usize;
    for i in 0..edges.len() {
        while (runs[r].end as usize) <= i {
            r += 1;
        }
        for_each_hit(edges, &runs, i, r, spec, &mut |j, d2| {
            recs.push((i as u32, j, d2));
        });
    }
    recs
}

/// One failed device work unit, deferred for later recovery.
///
/// Collect halves push these onto [`RunContext::recovery`] instead of
/// retrying inline; [`drain_recovery`] processes the whole queue after
/// every rule has collected. Each unit carries everything needed for
/// both a fresh device attempt and the host fallback, so recovery
/// produces the same record set either way.
pub(crate) struct RecoveryUnit {
    /// Device attempts made so far.
    attempts: usize,
    /// Backoff deadline: the unit is not retried before this instant.
    not_before: std::time::Instant,
    work: RecoveryWork,
}

impl RecoveryUnit {
    fn new(work: RecoveryWork) -> Self {
        RecoveryUnit {
            attempts: 0,
            not_before: std::time::Instant::now(),
            work,
        }
    }
}

/// The rule-specific payload of a [`RecoveryUnit`].
enum RecoveryWork {
    /// One spacing row: packed edges plus the executor-choice inputs.
    SpaceRow {
        rule_name: String,
        edges: Arc<Vec<PackedEdge>>,
        threshold: usize,
        spec: SpaceSpec,
    },
    /// A whole intra-polygon rule (width/area): the shared layer data;
    /// instance replay happens at emit time.
    Intra {
        rule_name: String,
        is_width: bool,
        min: i64,
        data: Arc<IntraData>,
    },
    /// A whole enclosure/overlap rule: the gathered work list and the
    /// per-shape report rectangles.
    Pairs {
        rule_name: String,
        kind: ViolationKind,
        min: i64,
        work: Arc<Vec<(Polygon, Vec<Polygon>)>>,
        rects: Vec<Rect>,
    },
}

/// Whether the deferred recovery queue still holds work for `rule` —
/// the engine defers finalizing (and checkpointing) such rules until
/// the drain settles them.
pub(crate) fn recovery_pending_for(ctx: &RunContext<'_>, rule: &str) -> bool {
    ctx.recovery.iter().any(|u| u.work.rule_name() == rule)
}

impl RecoveryWork {
    /// Name of the rule this unit belongs to, for routing recovered
    /// violations back to their per-rule buffer.
    fn rule_name(&self) -> &str {
        match self {
            RecoveryWork::SpaceRow { rule_name, .. }
            | RecoveryWork::Intra { rule_name, .. }
            | RecoveryWork::Pairs { rule_name, .. } => rule_name,
        }
    }
}

/// A recovered unit's raw result, device attempt or host fallback —
/// identical either way by construction.
enum Recovered {
    Space(Vec<(u32, u32, i64)>),
    Intra(Vec<Vec<LocalViolation>>),
    Pairs(Vec<i64>),
}

/// One complete synchronous device attempt at a deferred unit, on a
/// fresh stream (stream errors are sticky, so every attempt gets its
/// own; the device itself survives kernel panics). Fresh uploads bypass
/// the shared cache — its resident copy may be the failed one.
fn recovery_attempt(work: &RecoveryWork, stream: &Stream) -> XpuResult<Recovered> {
    match work {
        RecoveryWork::SpaceRow {
            edges,
            threshold,
            spec,
            ..
        } => row_device_records(stream, edges, *threshold, *spec).map(Recovered::Space),
        RecoveryWork::Intra {
            is_width,
            min,
            data,
            ..
        } => {
            let n = data.polys.host.len();
            let check = intra_local_check(*is_width, *min);
            let dev_polys = stream.try_upload_shared(Arc::clone(&data.polys.host))?;
            let out_buf = stream.try_alloc::<Vec<LocalViolation>>(n)?;
            stream.try_launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
                check(&dev_polys.read()[tctx.global_id()], slot);
            })?;
            stream
                .try_download(&out_buf)?
                .result()
                .map(Recovered::Intra)
        }
        RecoveryWork::Pairs {
            kind, min, work, ..
        } => {
            let n = work.len();
            let measure = pairs_measure(*kind, *min);
            let dev_work = stream.try_upload_shared(Arc::clone(work))?;
            let measures = stream.try_alloc::<i64>(n)?;
            stream.try_launch_map(
                LaunchConfig::for_threads(n),
                &measures,
                move |tctx, slot| {
                    let w = dev_work.read();
                    let (poly, candidates) = &w[tctx.global_id()];
                    *slot = measure(poly, candidates);
                },
            )?;
            stream
                .try_download(&measures)?
                .result()
                .map(Recovered::Pairs)
        }
    }
}

/// The host (CPU) fallback for a deferred unit: the same executor
/// choice and check predicates as the device kernels, run inline.
fn recovery_fallback(work: &RecoveryWork) -> Recovered {
    match work {
        RecoveryWork::SpaceRow { edges, spec, .. } => {
            Recovered::Space(row_host_records(edges, *spec))
        }
        RecoveryWork::Intra {
            is_width,
            min,
            data,
            ..
        } => {
            let check = intra_local_check(*is_width, *min);
            Recovered::Intra(
                data.polys
                    .host
                    .iter()
                    .map(|poly| {
                        let mut slot = Vec::new();
                        check(poly, &mut slot);
                        slot
                    })
                    .collect(),
            )
        }
        RecoveryWork::Pairs {
            kind, min, work, ..
        } => {
            let measure = pairs_measure(*kind, *min);
            Recovered::Pairs(
                work.iter()
                    .map(|(poly, cands)| measure(poly, cands))
                    .collect(),
            )
        }
    }
}

/// Converts a recovered unit's records into violations, with the same
/// stats bookkeeping the fault-free collect path performs.
fn emit_recovered(
    ctx: &mut RunContext<'_>,
    work: &RecoveryWork,
    recovered: Recovered,
    out: &mut Vec<Violation>,
) {
    match (work, recovered) {
        (
            RecoveryWork::SpaceRow {
                rule_name, edges, ..
            },
            Recovered::Space(recs),
        ) => {
            ctx.stats.checks_computed += recs.len();
            for (a, b, d2) in recs {
                out.push(make_violation(rule_name, edges, a, b, d2));
            }
        }
        (
            RecoveryWork::Intra {
                rule_name, data, ..
            },
            Recovered::Intra(per_poly),
        ) => {
            emit_intra(ctx, rule_name, data, &per_poly, out);
        }
        (
            RecoveryWork::Pairs {
                rule_name,
                kind,
                min,
                rects,
                ..
            },
            Recovered::Pairs(measures),
        ) => {
            ctx.profiler.time("convert", || {
                for (rect, measured) in rects.iter().zip(measures) {
                    if measured < *min {
                        out.push(Violation {
                            rule: rule_name.clone(),
                            kind: *kind,
                            location: *rect,
                            measured,
                        });
                    }
                }
            });
        }
        _ => unreachable!("recovery payload matches its work variant"),
    }
}

/// Drains the run's deferred recovery queue: retries each unit on a
/// fresh stream under a capped exponential backoff **deadline**
/// (`retry_backoff_ms`, doubling per attempt, capped at 50 ms), tallying
/// [`EngineStats::device_retries`] per attempt; after
/// [`EngineOptions::max_device_retries`] failures a unit falls back to
/// the host and tallies [`EngineStats::device_fallbacks`].
///
/// Unlike the old inline retry loop, the backoff never blocks the
/// collect path: deadlines are checked here, after every rule has
/// collected, and the drain only sleeps when *all* remaining units are
/// backing off (there is nothing else left to do).
///
/// [`EngineOptions::max_device_retries`]: crate::EngineOptions::max_device_retries
/// [`EngineStats::device_retries`]: crate::EngineStats::device_retries
/// [`EngineStats::device_fallbacks`]: crate::EngineStats::device_fallbacks
pub(crate) fn drain_recovery(ctx: &mut RunContext<'_>, device: &Device, out: &mut Vec<Violation>) {
    let abandoned = drain_recovery_routed(ctx, device, None, &mut |_, mut v| out.append(&mut v));
    debug_assert!(abandoned.is_empty(), "uncancellable drain never abandons");
}

/// [`drain_recovery`] with two lifecycle hooks the engine's resilient
/// paths need:
///
/// * recovered violations are *routed* per rule (the `route` sink gets
///   `(rule name, violations)` batches) so they land in per-rule
///   buffers for checkpointing instead of one flat output, and
/// * an optional [`CancelToken`] is observed between units: once it
///   trips, the remaining queue is **abandoned** — no more device
///   attempts, no host fallbacks — and the affected rules' names are
///   returned (sorted, deduplicated) so the engine can mark them
///   interrupted rather than silently under-reporting.
///
/// [`CancelToken`]: odrc_infra::CancelToken
pub(crate) fn drain_recovery_routed(
    ctx: &mut RunContext<'_>,
    device: &Device,
    cancel: Option<&odrc_infra::CancelToken>,
    route: &mut dyn FnMut(&str, Vec<Violation>),
) -> Vec<String> {
    if ctx.recovery.is_empty() {
        return Vec::new();
    }
    let tripped = |c: Option<&odrc_infra::CancelToken>| c.is_some_and(|t| t.is_cancelled());
    let max_retries = ctx.options.max_device_retries;
    let mut queue = std::mem::take(&mut ctx.recovery);
    let mut deferred = Vec::new();
    while !queue.is_empty() && !tripped(cancel) {
        let now = std::time::Instant::now();
        let mut progressed = false;
        for mut unit in queue.drain(..) {
            if tripped(cancel) {
                deferred.push(unit);
                continue;
            }
            if unit.attempts >= max_retries {
                // Exhausted (or retries disabled): host fallback.
                ctx.stats.device_fallbacks += 1;
                let recovered = recovery_fallback(&unit.work);
                let mut scratch = Vec::new();
                emit_recovered(ctx, &unit.work, recovered, &mut scratch);
                route(unit.work.rule_name(), scratch);
                progressed = true;
                continue;
            }
            if unit.not_before > now {
                deferred.push(unit);
                continue;
            }
            unit.attempts += 1;
            ctx.stats.device_retries += 1;
            let fresh = device.stream();
            match recovery_attempt(&unit.work, &fresh) {
                Ok(recovered) => {
                    let mut scratch = Vec::new();
                    emit_recovered(ctx, &unit.work, recovered, &mut scratch);
                    route(unit.work.rule_name(), scratch);
                    progressed = true;
                }
                Err(_) => {
                    // Capped exponential backoff: transient contention
                    // clears, and one-shot injected faults are consumed
                    // by the failing attempt, so the loop converges.
                    let ms = (ctx.options.retry_backoff_ms << (unit.attempts - 1).min(4)).min(50);
                    unit.not_before = now + Duration::from_millis(ms);
                    deferred.push(unit);
                }
            }
        }
        std::mem::swap(&mut queue, &mut deferred);
        if !progressed && !queue.is_empty() && !tripped(cancel) {
            // Everything left is backing off; sleep only until the
            // earliest deadline (healthy work has already drained).
            let earliest = queue
                .iter()
                .map(|u| u.not_before)
                .min()
                .expect("queue is non-empty");
            let now = std::time::Instant::now();
            if earliest > now {
                std::thread::sleep(earliest - now);
            }
        }
    }
    let mut abandoned: Vec<String> = queue
        .drain(..)
        .map(|u| u.work.rule_name().to_string())
        .collect();
    abandoned.sort_unstable();
    abandoned.dedup();
    abandoned
}

fn make_violation(rule: &str, edges: &[PackedEdge], a: u32, b: u32, d2: i64) -> Violation {
    let ea = unpack(edges[a as usize]);
    let eb = unpack(edges[b as usize]);
    Violation {
        rule: rule.to_owned(),
        kind: ViolationKind::Space,
        location: ea.mbr().hull(eb.mbr()),
        measured: d2,
    }
}

/// Issue half of an intra-polygon width/area rule: acquire the layer's
/// shared polygon buffer and launch the per-polygon kernel. The
/// memoization and instantiation host work happens at collect.
fn issue_intra(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    layer: Layer,
    is_width: bool,
    min: i64,
) -> IntraIssue {
    let data = ctx.intra_data(layer);
    let n = data.polys.host.len();
    let pending = if n == 0 {
        None
    } else {
        // Issue-time failure: collect goes straight to recovery.
        enqueue_intra(ctx, stream, &data, is_width, min).ok()
    };
    IntraIssue {
        rule_name: rule_name.to_owned(),
        is_width,
        min,
        data,
        pending,
    }
}

fn enqueue_intra(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    data: &IntraData,
    is_width: bool,
    min: i64,
) -> XpuResult<Pending<Vec<Vec<LocalViolation>>>> {
    let n = data.polys.host.len();
    let mut batch = stream.batch(ctx.options.fusion);
    let (dev_polys, elided) = data.polys.acquire_in(&mut batch)?;
    ctx.note_upload(elided, data.polys.bytes());
    let out_buf = batch.try_alloc::<Vec<LocalViolation>>(n)?;
    let check = intra_local_check(is_width, min);
    batch.try_launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
        check(&dev_polys.read()[tctx.global_id()], slot);
    })?;
    let pending = batch.try_download(&out_buf)?;
    batch.commit();
    Ok(pending)
}

/// The whole-rule kernel body, shared by the device attempt and the
/// host fallback.
fn intra_local_check(
    is_width: bool,
    min: i64,
) -> impl Fn(&Polygon, &mut Vec<LocalViolation>) + Send + Sync + Clone + 'static {
    move |poly, slot| {
        if is_width {
            crate::checks::poly::width_violations(poly, min, slot);
        } else {
            let area = poly.area();
            if area < min {
                slot.push(LocalViolation {
                    kind: ViolationKind::Area,
                    location: poly.mbr(),
                    measured: area,
                });
            }
        }
    }
}

/// Collect half of an intra rule: wait for the per-polygon kernel,
/// recover on failure, then replay each cell's local violations
/// through all its instances on the host.
fn collect_intra(ctx: &mut RunContext<'_>, issue: IntraIssue, out: &mut Vec<Violation>) {
    let IntraIssue {
        rule_name,
        is_width,
        min,
        data,
        pending,
    } = issue;
    let n = data.polys.host.len();
    if n == 0 {
        return;
    }

    let waited = match pending {
        Some(pending) => ctx.device_wait(|| pending.result()),
        None => Err(odrc_xpu::XpuError::StreamTimeout { op: "issue" }),
    };
    let per_poly = match waited {
        Ok(per_poly) => per_poly,
        Err(_) => {
            // Defer the whole rule; [`drain_recovery`] re-attempts it
            // on a fresh stream and falls back to the host.
            ctx.recovery.push(RecoveryUnit::new(RecoveryWork::Intra {
                rule_name,
                is_width,
                min,
                data,
            }));
            return;
        }
    };
    emit_intra(ctx, &rule_name, &data, &per_poly, out);
}

/// Host side of an intra rule's collect: tallies the per-polygon
/// checks and replays each cell's local violations through all its
/// instances. Shared by the fault-free path and deferred recovery.
fn emit_intra(
    ctx: &mut RunContext<'_>,
    rule_name: &str,
    data: &IntraData,
    per_poly: &[Vec<LocalViolation>],
    out: &mut Vec<Violation>,
) {
    ctx.stats.checks_computed += data.polys.host.len();
    let instances = ctx.instances().clone();
    let targets = Arc::clone(&data.targets);
    ctx.profiler.time("convert", || {
        for (idx, (cell, _)) in targets.iter().enumerate() {
            let Some(transforms) = instances.get(cell) else {
                continue;
            };
            ctx.stats.checks_reused += transforms.len().saturating_sub(1);
            for t in transforms {
                for v in &per_poly[idx] {
                    let vi = v.instantiate(t);
                    out.push(Violation {
                        rule: rule_name.to_owned(),
                        kind: vi.kind,
                        location: vi.location,
                        measured: vi.measured,
                    });
                }
            }
        }
    });
}

/// Runs an intra-polygon width or area rule with its per-polygon work
/// executed by a device kernel, synchronously — used by tests that
/// drive a single rule.
pub(crate) fn check_intra_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule: &Rule,
    out: &mut Vec<Violation>,
) {
    let issue = match rule.kind {
        RuleKind::Width { layer, min } => issue_intra(ctx, stream, &rule.name, layer, true, min),
        RuleKind::Area { layer, min } => issue_intra(ctx, stream, &rule.name, layer, false, min),
        _ => return crate::sequential::check_intra_rule(ctx, rule, out),
    };
    collect_intra(ctx, issue, out);
    let device = stream.device().clone();
    drain_recovery(ctx, &device, out);
}

/// Issue half of an enclosure / overlap-area rule: gather the work
/// list on the host (through the memoized scenes), upload it without a
/// staging copy, and launch the per-shape kernel.
#[allow(clippy::too_many_arguments)]
fn issue_pairs(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    kind: ViolationKind,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
    // The enclosure margin-gather distance: the rule min for
    // enclosure, zero for overlap (any touching outer shape counts).
) -> PairsIssue {
    let gather = match kind {
        ViolationKind::Enclosure => min,
        _ => 0,
    };
    let work: Arc<Vec<(Polygon, Vec<Polygon>)>> = Arc::new(crate::sequential::enclosure_work(
        ctx, inner, outer, gather, window,
    ));
    let rects: Vec<Rect> = work.iter().map(|(p, _)| p.mbr()).collect();
    let pending = if work.is_empty() {
        None
    } else {
        // Issue-time failure: collect goes straight to recovery.
        enqueue_pairs(ctx, stream, kind, &work, min).ok()
    };
    PairsIssue {
        rule_name: rule_name.to_owned(),
        kind,
        min,
        work,
        rects,
        pending,
    }
}

/// The per-shape measurement kernel body: enclosure margin, or shared
/// (boolean AND) area.
fn pairs_measure(
    kind: ViolationKind,
    min: i64,
) -> impl Fn(&Polygon, &[Polygon]) -> i64 + Send + Sync + Clone + 'static {
    move |poly, candidates| match kind {
        ViolationKind::Enclosure => {
            let refs: Vec<&Polygon> = candidates.iter().collect();
            enclosure_margin(poly.mbr(), &refs, min)
        }
        _ => {
            use odrc_infra::Region;
            let inner_region = Region::from_polygons([poly]);
            let outer_region = Region::from_polygons(candidates.iter());
            inner_region.intersection(&outer_region).area()
        }
    }
}

fn enqueue_pairs(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    kind: ViolationKind,
    work: &Arc<Vec<(Polygon, Vec<Polygon>)>>,
    min: i64,
) -> XpuResult<Pending<Vec<i64>>> {
    let n = work.len();
    let bytes = (n * std::mem::size_of::<(Polygon, Vec<Polygon>)>()) as u64;
    let mut batch = stream.batch(ctx.options.fusion);
    let dev_work = batch.try_upload_shared(Arc::clone(work))?;
    ctx.note_upload(false, bytes);
    let measures = batch.try_alloc::<i64>(n)?;
    let measure = pairs_measure(kind, min);
    batch.try_launch_map(
        LaunchConfig::for_threads(n),
        &measures,
        move |tctx, slot| {
            let work = dev_work.read();
            let (poly, candidates) = &work[tctx.global_id()];
            *slot = measure(poly, candidates);
        },
    )?;
    let pending = batch.try_download(&measures)?;
    batch.commit();
    Ok(pending)
}

/// Collect half of an enclosure / overlap rule: wait for the measure
/// kernel, defer recovery on failure, threshold into violations.
fn collect_pairs(ctx: &mut RunContext<'_>, issue: PairsIssue, out: &mut Vec<Violation>) {
    let PairsIssue {
        rule_name,
        kind,
        min,
        work,
        rects,
        pending,
    } = issue;
    if work.is_empty() {
        return;
    }
    ctx.stats.checks_computed += work.len();

    let waited = match pending {
        Some(pending) => ctx.device_wait(|| pending.result()),
        None => Err(odrc_xpu::XpuError::StreamTimeout { op: "issue" }),
    };
    let measures = match waited {
        Ok(measures) => measures,
        Err(_) => {
            // Defer the whole rule; [`drain_recovery`] re-attempts it
            // on a fresh stream and falls back to the host. The checks
            // are already tallied above — recovery recomputes, it does
            // not re-count.
            ctx.recovery.push(RecoveryUnit::new(RecoveryWork::Pairs {
                rule_name,
                kind,
                min,
                work,
                rects,
            }));
            return;
        }
    };
    ctx.profiler.time("convert", || {
        for (rect, measured) in rects.into_iter().zip(measures) {
            if measured < min {
                out.push(Violation {
                    rule: rule_name.clone(),
                    kind,
                    location: rect,
                    measured,
                });
            }
        }
    });
}

/// Runs an enclosure rule with per-via margin computation on the
/// device, synchronously — the delta checker's entry point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_enclosure_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    let issue = issue_pairs(
        ctx,
        stream,
        rule_name,
        ViolationKind::Enclosure,
        inner,
        outer,
        min,
        window,
    );
    collect_pairs(ctx, issue, out);
    let device = stream.device().clone();
    drain_recovery(ctx, &device, out);
}

/// Runs a minimum-overlap-area rule with the boolean work on the
/// device, synchronously — the delta checker's entry point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_overlap_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min_area: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    let issue = issue_pairs(
        ctx,
        stream,
        rule_name,
        ViolationKind::OverlapArea,
        inner,
        outer,
        min_area,
        window,
    );
    collect_pairs(ctx, issue, out);
    let device = stream.device().clone();
    drain_recovery(ctx, &device, out);
}

/// All-pairs spacing kernel over an *unsorted* flat edge list: one
/// thread per edge, plain `for` loops over the remaining edges. Only
/// [`flat_space_brute`] uses it — the engine executors window through
/// the sorted run table instead.
fn allpairs_kernel(
    edges: DeviceBuffer<PackedEdge>,
    spec: SpaceSpec,
) -> impl Fn(ThreadCtx, &mut Vec<(u32, i64)>) + Send + Sync + 'static {
    move |tctx, slot| {
        let edges = edges.read();
        let i = tctx.global_id();
        let ei = unpack(edges[i]);
        for (j, &pe) in edges.iter().enumerate().skip(i + 1) {
            if let Some(d2) = space_pair_spec(ei, unpack(pe), spec) {
                slot.push((j as u32, d2));
            }
        }
    }
}

/// Device-accelerated helper used by tests and benches: all-pairs
/// spacing over a flat edge list (no hierarchy, no partition), brute
/// force. Returns canonical violations. Panics on device faults (it is
/// a bench/test harness, not an engine path).
pub fn flat_space_brute(
    device: &Device,
    edges: &[Edge],
    rule_name: &str,
    min: i64,
) -> Vec<Violation> {
    let stream = device.stream();
    let packed: Vec<PackedEdge> = edges.iter().map(|&e| pack(e)).collect();
    let n = packed.len();
    if n == 0 {
        return Vec::new();
    }
    let packed = Arc::new(packed);
    let dev = stream.upload_shared(Arc::clone(&packed));
    let out_buf = stream.alloc::<Vec<(u32, i64)>>(n);
    stream.launch_map(
        LaunchConfig::for_threads(n),
        &out_buf,
        allpairs_kernel(dev, SpaceSpec::simple(min)),
    );
    let per_edge = stream.download(&out_buf).wait();
    let mut out = Vec::new();
    for (i, pairs) in per_edge.iter().enumerate() {
        for &(j, d2) in pairs {
            out.push(make_violation(rule_name, &packed, i as u32, j, d2));
        }
    }
    crate::violation::canonicalize(out)
}
