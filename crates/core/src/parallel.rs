//! The parallel (device) mode (§IV-E of the paper).
//!
//! "After layout partitioning, OpenDRC performs parallel design rule
//! checks in a row-by-row manner, as cells belonging to different rows
//! will not produce any violation. Before checking, OpenDRC packs the
//! edges of relevant polygons into a flattened array, which is
//! transferred from the host memory to the device memory. Depending on
//! the complexity of each polygon or polygon pair, OpenDRC selects
//! either a brute-force executor or a sweepline executor."
//!
//! Small rows run the **brute-force executor**: one kernel, one thread
//! per edge, plain `for` loops over the remaining edges. Large rows run
//! the **sweepline executor**: edges are sorted by track; a first
//! kernel determines each edge's check range and counts its violations,
//! an exclusive scan sizes the output, and a second kernel emits the
//! records — the two-kernel-launch structure the paper chose "for
//! efficient kernel code optimization (viz. for loops versus while
//! loops)".
//!
//! Host-side packing of the next row overlaps with device work through
//! the asynchronous stream (§V-C).

use odrc_db::Layer;
use odrc_geometry::{Edge, Point, Rect};
use odrc_xpu::{scan::exclusive_scan, Device, LaunchConfig, Pending, Stream};

use crate::checks::edge::{space_pair_spec, SpaceSpec};
use crate::checks::enclosure_margin;
use crate::rules::{Rule, RuleKind};
use crate::scene::{DirtyWindow, LayerScene};
use crate::sequential::{partition_scene, RunContext};
use crate::violation::{Violation, ViolationKind};

/// A packed edge: `[x0, y0, x1, y1]`, the device-side representation.
type PackedEdge = [i32; 4];

fn unpack(e: PackedEdge) -> Edge {
    Edge::new(Point::new(e[0], e[1]), Point::new(e[2], e[3]))
}

fn pack(e: Edge) -> PackedEdge {
    [e.from.x, e.from.y, e.to.x, e.to.y]
}

/// For each sorted edge, the index of the first edge with a different
/// track. Collinear (equal-track) edges can never form a facing pair,
/// so kernels start each edge's scan at its run end — without this,
/// layouts with many edges on one track (e.g. all cell-bar bottoms of a
/// row) degrade to quadratic scans over the run.
fn track_run_ends(edges: &[PackedEdge]) -> Vec<u32> {
    let n = edges.len();
    let mut run_end = vec![n as u32; n];
    let mut i = n;
    let mut cur_end = n as u32;
    let mut cur_track = None;
    while i > 0 {
        i -= 1;
        let t = unpack(edges[i]).track();
        if cur_track != Some(t) {
            cur_end = (i + 1) as u32;
            cur_track = Some(t);
        }
        run_end[i] = cur_end;
    }
    run_end
}

/// A violation record produced by device kernels: edge indices into the
/// row's packed array plus the squared distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairRecord {
    a: u32,
    b: u32,
    d2: i64,
}

/// Per-edge brute-force hits: `(other edge index, measured)` lists.
type BruteHits = Vec<Vec<(u32, i64)>>;

/// One row's worth of packed edges plus its in-flight device results.
struct RowJob {
    edges: Vec<PackedEdge>,
    /// Same-track run table for the sweepline executor.
    run_ends: Option<Vec<u32>>,
    brute: Option<Pending<BruteHits>>,
    counts: Option<Pending<Vec<usize>>>,
}

struct RowEmit {
    edges: Vec<PackedEdge>,
    records: Pending<Vec<PairRecord>>,
}

/// Runs a same-layer spacing rule on the device, row by row.
pub(crate) fn check_space_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    layer: Layer,
    spec: SpaceSpec,
    out: &mut Vec<Violation>,
) {
    let layout = ctx.layout;
    let scene = ctx
        .profiler
        .time("scene", || LayerScene::build(layout, layer));
    check_space_scene_parallel(ctx, stream, rule_name, &scene, spec, out);
}

/// Device-mode spacing over an already-built (possibly windowed) scene.
pub(crate) fn check_space_scene_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    scene: &LayerScene,
    spec: SpaceSpec,
    out: &mut Vec<Violation>,
) {
    let min = spec.min;
    let (_, partition) = partition_scene(scene, min, ctx.options.partition, ctx.profiler);
    ctx.stats.rows += partition.len();
    let threshold = ctx.options.sweep_threshold;

    // Phase 1: pack each row and enqueue its first device phase. The
    // stream runs asynchronously, so packing row i+1 overlaps with the
    // device processing of row i (§V-C).
    let mut jobs: Vec<RowJob> = Vec::new();
    for row in &partition {
        let edges = ctx.profiler.time("pack", || {
            let mut edges: Vec<PackedEdge> = Vec::new();
            for &m in &row.members {
                for poly in scene.object_polygons(&scene.objects[m]) {
                    edges.extend(poly.edges().map(pack));
                }
            }
            // The sweepline executor requires track-sorted edges; the
            // brute executor does not care, so sorting unconditionally
            // keeps one packing path. Large rows sort on the device.
            odrc_xpu::sort::parallel_sort_by_key(stream.device(), &mut edges, |&e| {
                (unpack(e).track(), e)
            });
            edges
        });
        if edges.is_empty() {
            jobs.push(RowJob {
                edges,
                run_ends: None,
                brute: None,
                counts: None,
            });
            continue;
        }
        let n = edges.len();
        let dev_edges = stream.upload(edges.clone());
        if n <= threshold {
            // Brute-force executor: one launch, plain for loops.
            let out_buf = stream.alloc::<Vec<(u32, i64)>>(n);
            let edges_for_kernel = dev_edges.clone();
            stream.launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
                let edges = edges_for_kernel.read();
                let i = tctx.global_id();
                let ei = unpack(edges[i]);
                for (j, &pe) in edges.iter().enumerate().skip(i + 1) {
                    if let Some(d2) = space_pair_spec(ei, unpack(pe), spec) {
                        slot.push((j as u32, d2));
                    }
                }
            });
            jobs.push(RowJob {
                edges,
                run_ends: None,
                brute: Some(stream.download(&out_buf)),
                counts: None,
            });
        } else {
            // Sweepline executor, kernel 1: per-edge check range and
            // violation count (while loops over the sorted tracks).
            let run_ends = track_run_ends(&edges);
            let dev_runs = stream.upload(run_ends.clone());
            let counts_buf = stream.alloc::<usize>(n);
            let edges_for_kernel = dev_edges.clone();
            let runs_for_kernel = dev_runs.clone();
            stream.launch_map(
                LaunchConfig::for_threads(n),
                &counts_buf,
                move |tctx, slot| {
                    let edges = edges_for_kernel.read();
                    let runs = runs_for_kernel.read();
                    let i = tctx.global_id();
                    let ei = unpack(edges[i]);
                    let mut count = 0usize;
                    let mut j = runs[i] as usize;
                    while j < edges.len() {
                        let ej = unpack(edges[j]);
                        if i64::from(ej.track()) - i64::from(ei.track()) > min {
                            break;
                        }
                        if space_pair_spec(ei, ej, spec).is_some() {
                            count += 1;
                        }
                        j += 1;
                    }
                    *slot = count;
                },
            );
            jobs.push(RowJob {
                edges,
                run_ends: Some(run_ends),
                brute: None,
                counts: Some(stream.download(&counts_buf)),
            });
        }
    }

    // Phase 2: for sweepline rows, scan the counts on the device and
    // enqueue the emit kernel; brute rows resolve directly.
    let device = stream.device().clone();
    let mut emits: Vec<RowEmit> = Vec::new();
    let mut hits: Vec<Violation> = Vec::new();
    for job in jobs {
        if let Some(pending) = job.brute {
            let per_edge = ctx.profiler.time("kernel-wait", || pending.wait());
            ctx.profiler.time("convert", || {
                for (i, pairs) in per_edge.iter().enumerate() {
                    for &(j, d2) in pairs {
                        hits.push(make_violation(rule_name, &job.edges, i as u32, j, d2));
                    }
                }
            });
        } else if let Some(pending) = job.counts {
            let counts = ctx.profiler.time("kernel-wait", || pending.wait());
            let offsets = ctx
                .profiler
                .time("scan", || exclusive_scan(&device, &counts));
            let total = *offsets.last().expect("scan returns n+1 entries");
            let n = job.edges.len();
            let dev_edges = stream.upload(job.edges.clone());
            let dev_runs = stream.upload(job.run_ends.clone().expect("sweep rows carry run ends"));
            let out_buf = stream.alloc::<PairRecord>(total);
            // Kernel 2: emit each edge's violations into its range.
            stream.launch_scatter(
                LaunchConfig::for_threads(n),
                &out_buf,
                offsets,
                move |tctx, slice| {
                    let edges = dev_edges.read();
                    let runs = dev_runs.read();
                    let i = tctx.global_id();
                    let ei = unpack(edges[i]);
                    let mut k = 0usize;
                    let mut j = runs[i] as usize;
                    while j < edges.len() {
                        let ej = unpack(edges[j]);
                        if i64::from(ej.track()) - i64::from(ei.track()) > min {
                            break;
                        }
                        if let Some(d2) = space_pair_spec(ei, ej, spec) {
                            slice[k] = PairRecord {
                                a: i as u32,
                                b: j as u32,
                                d2,
                            };
                            k += 1;
                        }
                        j += 1;
                    }
                },
            );
            emits.push(RowEmit {
                edges: job.edges,
                records: stream.download(&out_buf),
            });
        }
    }

    // Phase 3: collect emit results.
    for emit in emits {
        let records = ctx.profiler.time("kernel-wait", || emit.records.wait());
        ctx.profiler.time("convert", || {
            for r in records {
                hits.push(make_violation(rule_name, &emit.edges, r.a, r.b, r.d2));
            }
        });
    }
    ctx.stats.checks_computed += hits.len();
    out.extend(hits);
}

fn make_violation(rule: &str, edges: &[PackedEdge], a: u32, b: u32, d2: i64) -> Violation {
    let ea = unpack(edges[a as usize]);
    let eb = unpack(edges[b as usize]);
    Violation {
        rule: rule.to_owned(),
        kind: ViolationKind::Space,
        location: ea.mbr().hull(eb.mbr()),
        measured: d2,
    }
}

/// Runs an intra-polygon width or area rule with its per-polygon work
/// executed by a device kernel; memoization and instantiation stay on
/// the host, so the result set matches the sequential mode exactly.
pub(crate) fn check_intra_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule: &Rule,
    out: &mut Vec<Violation>,
) {
    use crate::checks::poly::LocalViolation;

    let (layer, is_width, min) = match rule.kind {
        RuleKind::Width { layer, min } => (layer, true, min),
        RuleKind::Area { layer, min } => (layer, false, min),
        _ => {
            // Rectilinear / user predicates run on the host in both
            // modes (user closures are host code).
            return crate::sequential::check_intra_rule(ctx, rule, out);
        }
    };

    // Pack the unique polygons of the layer (one entry per definition,
    // not per instance — the memoized work unit of §IV-C).
    let targets: Vec<(odrc_db::CellId, usize)> = ctx.layout.layer_polygons(layer).to_vec();
    if targets.is_empty() {
        return;
    }
    let polys: Vec<odrc_geometry::Polygon> = targets
        .iter()
        .map(|&(c, pi)| ctx.layout.cell(c).polygons()[pi].polygon.clone())
        .collect();
    let n = polys.len();
    let dev_polys = ctx.profiler.time("pack", || stream.upload(polys));
    let out_buf = stream.alloc::<Vec<LocalViolation>>(n);
    let kernel_polys = dev_polys.clone();
    stream.launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
        let polys = kernel_polys.read();
        let poly = &polys[tctx.global_id()];
        if is_width {
            crate::checks::poly::width_violations(poly, min, slot);
        } else {
            let area = poly.area();
            if area < min {
                slot.push(LocalViolation {
                    kind: ViolationKind::Area,
                    location: poly.mbr(),
                    measured: area,
                });
            }
        }
    });
    let per_poly = ctx
        .profiler
        .time("kernel-wait", || stream.download(&out_buf).wait());
    ctx.stats.checks_computed += n;

    // Host side: replay each cell's local violations through all its
    // instances.
    let instances = ctx.instances().clone();
    ctx.profiler.time("convert", || {
        for (idx, (cell, _)) in targets.iter().enumerate() {
            let Some(transforms) = instances.get(cell) else {
                continue;
            };
            ctx.stats.checks_reused += transforms.len().saturating_sub(1);
            for t in transforms {
                for v in &per_poly[idx] {
                    let vi = v.instantiate(t);
                    out.push(Violation {
                        rule: rule.name.clone(),
                        kind: vi.kind,
                        location: vi.location,
                        measured: vi.measured,
                    });
                }
            }
        }
    });
}

/// Runs an enclosure rule with per-via margin computation on the
/// device. Candidate gathering (the hierarchical layer query) stays on
/// the host.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_enclosure_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    // Host: flat inner shapes plus their outer candidates, gathered by
    // the same hierarchical bipartite sweep as the sequential mode.
    let work: Vec<(odrc_geometry::Polygon, Vec<odrc_geometry::Polygon>)> =
        crate::sequential::enclosure_work(ctx, inner, outer, min, window);
    if work.is_empty() {
        return;
    }
    let n = work.len();
    ctx.stats.checks_computed += n;
    let rects: Vec<Rect> = work.iter().map(|(p, _)| p.mbr()).collect();
    let dev_work = stream.upload(work);
    let margins = stream.alloc::<i64>(n);
    let kernel_work = dev_work.clone();
    stream.launch_map(LaunchConfig::for_threads(n), &margins, move |tctx, slot| {
        let work = kernel_work.read();
        let (poly, candidates) = &work[tctx.global_id()];
        let refs: Vec<&odrc_geometry::Polygon> = candidates.iter().collect();
        *slot = enclosure_margin(poly.mbr(), &refs, min);
    });
    let margins = ctx
        .profiler
        .time("kernel-wait", || stream.download(&margins).wait());
    ctx.profiler.time("convert", || {
        for (rect, margin) in rects.into_iter().zip(margins) {
            if margin < min {
                out.push(Violation {
                    rule: rule_name.to_owned(),
                    kind: ViolationKind::Enclosure,
                    location: rect,
                    measured: margin,
                });
            }
        }
    });
}

/// Runs a minimum-overlap-area rule with the boolean work on the
/// device: one thread per inner shape intersects it with its outer
/// candidates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_overlap_rule_parallel(
    ctx: &mut RunContext<'_>,
    stream: &Stream,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min_area: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    use odrc_infra::Region;
    let work: Vec<(odrc_geometry::Polygon, Vec<odrc_geometry::Polygon>)> =
        crate::sequential::enclosure_work(ctx, inner, outer, 0, window);
    if work.is_empty() {
        return;
    }
    let n = work.len();
    ctx.stats.checks_computed += n;
    let rects: Vec<Rect> = work.iter().map(|(p, _)| p.mbr()).collect();
    let dev_work = stream.upload(work);
    let areas = stream.alloc::<i64>(n);
    let kernel_work = dev_work.clone();
    stream.launch_map(LaunchConfig::for_threads(n), &areas, move |tctx, slot| {
        let work = kernel_work.read();
        let (poly, candidates) = &work[tctx.global_id()];
        let inner_region = Region::from_polygons([poly]);
        let outer_region = Region::from_polygons(candidates.iter());
        *slot = inner_region.intersection(&outer_region).area();
    });
    let areas = ctx
        .profiler
        .time("kernel-wait", || stream.download(&areas).wait());
    ctx.profiler.time("convert", || {
        for (rect, shared) in rects.into_iter().zip(areas) {
            if shared < min_area {
                out.push(Violation {
                    rule: rule_name.to_owned(),
                    kind: ViolationKind::OverlapArea,
                    location: rect,
                    measured: shared,
                });
            }
        }
    });
}

/// Device-accelerated helper used by tests and benches: all-pairs
/// spacing over a flat edge list (no hierarchy, no partition), brute
/// force. Returns canonical violations.
pub fn flat_space_brute(
    device: &Device,
    edges: &[Edge],
    rule_name: &str,
    min: i64,
) -> Vec<Violation> {
    let stream = device.stream();
    let packed: Vec<PackedEdge> = edges.iter().map(|&e| pack(e)).collect();
    let n = packed.len();
    if n == 0 {
        return Vec::new();
    }
    let dev = stream.upload(packed.clone());
    let out_buf = stream.alloc::<Vec<(u32, i64)>>(n);
    stream.launch_map(LaunchConfig::for_threads(n), &out_buf, move |tctx, slot| {
        let edges = dev.read();
        let i = tctx.global_id();
        let ei = unpack(edges[i]);
        for (j, &pe) in edges.iter().enumerate().skip(i + 1) {
            if let Some(d2) = space_pair_spec(ei, unpack(pe), SpaceSpec::simple(min)) {
                slot.push((j as u32, d2));
            }
        }
    });
    let per_edge = stream.download(&out_buf).wait();
    let mut out = Vec::new();
    for (i, pairs) in per_edge.iter().enumerate() {
        for &(j, d2) in pairs {
            out.push(make_violation(rule_name, &packed, i as u32, j, d2));
        }
    }
    crate::violation::canonicalize(out)
}
