//! The cross-rule execution planner.
//!
//! A rule deck usually reads far fewer layers than it has rules: every
//! metal layer carries width, spacing and area constraints, and via
//! layers are read by several enclosure rules. Before this planner, the
//! engine rebuilt the [`LayerScene`] and re-uploaded the packed edge
//! arrays once *per rule*; the paper's pipeline instead keeps layer
//! data device-resident and overlaps transfers with kernels across
//! concurrent streams (§IV-E, §V-C).
//!
//! The planner contributes three pieces:
//!
//! * a **scene memo** ([`RunContext::layer_scene`]): one
//!   [`LayerScene`] per layer per run, shared by the sequential and
//!   parallel modes ([`EngineStats::scenes_built`] /
//!   [`EngineStats::scenes_reused`]);
//! * a **device-resident buffer cache** ([`RowSet`] keyed by
//!   [`RowSetKey`], [`IntraData`] keyed by layer): edge extraction,
//!   adaptive row partitioning and the host→device upload happen once
//!   per `(layer, partition config)`; later rules on the same layer
//!   acquire the already-resident buffer through a cross-stream
//!   [`Event`] ([`EngineStats::uploads_elided`]);
//! * a **schedule** ([`ExecutionPlan`]): rules grouped by the layers
//!   they read, issued on independent streams and collected once at
//!   the end (deferred synchronization).
//!
//! # Interaction with the failure model
//!
//! Sharing device buffers across streams must not widen the blast
//! radius of a fault. The upload is enqueued on the first acquiring
//! rule's stream and publishes a recording [`Event`]; events fire even
//! on poisoned streams, so a consumer never deadlocks. If the upload
//! op itself faults, the buffer stays empty: consumers that already
//! waited hit an out-of-bounds kernel panic on *their own* stream and
//! re-run through the normal per-work-unit recovery (fresh stream,
//! then host), while consumers that acquire after the failure observe
//! the event's error and repair the cache entry with a fresh upload.
//! Either way the result set is byte-identical to a fault-free run.
//!
//! [`EngineStats::scenes_built`]: crate::EngineStats::scenes_built
//! [`EngineStats::scenes_reused`]: crate::EngineStats::scenes_reused
//! [`EngineStats::uploads_elided`]: crate::EngineStats::uploads_elided
//! [`RunContext::layer_scene`]: crate::sequential::RunContext::layer_scene

use std::collections::HashMap;
use std::sync::Arc;

use odrc_db::{CellId, Layer};
use odrc_geometry::{Coord, Edge, Point, Polygon};
use odrc_xpu::{Device, DeviceBuffer, Event, LaunchBatch, LaunchConfig, Stream, XpuResult};
use parking_lot::Mutex;

use crate::rules::RuleDeck;
use crate::scene::LayerScene;
use crate::sequential::{partition_scene, RunContext};

/// A packed edge: `[x0, y0, x1, y1]`, the device-side representation.
pub(crate) type PackedEdge = [i32; 4];

pub(crate) fn unpack(e: PackedEdge) -> Edge {
    Edge::new(Point::new(e[0], e[1]), Point::new(e[2], e[3]))
}

pub(crate) fn pack(e: Edge) -> PackedEdge {
    [e.from.x, e.from.y, e.to.x, e.to.y]
}

/// Lower span coordinate of a packed edge: the smaller endpoint along
/// the edge's own axis (y for vertical edges, x for horizontal ones).
#[inline]
pub(crate) fn span_lo(e: PackedEdge) -> i32 {
    if e[0] == e[2] {
        e[1].min(e[3])
    } else {
        e[0].min(e[2])
    }
}

/// The canonical sort key for a row's packed edges:
/// `(orientation, track, span-low, packed value)`.
///
/// Grouping by orientation first keeps a vertical edge's x-tracks from
/// interleaving with horizontal edges' y-tracks, so a kernel walking
/// forward from an edge's run sees monotonically increasing tracks of
/// the *same* orientation and can stop at the rule distance. Ordering
/// within a run by span-low lets the kernel binary-search the earliest
/// possibly-reaching partner and stop once spans start past its window.
/// The trailing packed value makes the key a total order, so host and
/// device sorts produce byte-identical arrays.
#[inline]
pub(crate) fn edge_sort_key(e: PackedEdge) -> (u8, i32, i32, PackedEdge) {
    let vertical = e[0] == e[2];
    let (orient, track) = if vertical { (1u8, e[0]) } else { (0u8, e[1]) };
    (orient, track, span_lo(e), e)
}

/// One maximal same-`(orientation, track)` run of a row's sorted edges,
/// the unit the windowed check kernels iterate over. `max_len` (the
/// longest edge span in the run) bounds how far before a query window a
/// run member can start while still reaching into it, which makes the
/// per-run binary search conservative rather than lossy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RunInfo {
    /// First edge index of the run (into the sorted row).
    pub start: u32,
    /// One past the last edge index of the run.
    pub end: u32,
    /// The shared track coordinate.
    pub track: i32,
    /// 0 = horizontal, 1 = vertical (sorted horizontal-first).
    pub orient: u8,
    /// Longest edge span length in the run, in dbu.
    pub max_len: i64,
}

/// Builds the run table of a row sorted by [`edge_sort_key`].
pub(crate) fn build_runs(edges: &[PackedEdge]) -> Vec<RunInfo> {
    let mut runs: Vec<RunInfo> = Vec::new();
    for (i, &e) in edges.iter().enumerate() {
        let vertical = e[0] == e[2];
        let orient = u8::from(vertical);
        let track = if vertical { e[0] } else { e[1] };
        let len = if vertical {
            (i64::from(e[3]) - i64::from(e[1])).abs()
        } else {
            (i64::from(e[2]) - i64::from(e[0])).abs()
        };
        match runs.last_mut() {
            Some(run) if run.orient == orient && run.track == track => {
                run.end = (i + 1) as u32;
                run.max_len = run.max_len.max(len);
            }
            _ => runs.push(RunInfo {
                start: i as u32,
                end: (i + 1) as u32,
                track,
                orient,
                max_len: len,
            }),
        }
    }
    runs
}

/// Host data with a lazily uploaded, cross-stream shared device
/// residency.
///
/// The first acquiring stream uploads (zero-copy, sharing the host
/// `Arc`) and records a readiness [`Event`]; later acquirers wait on
/// the event in stream order and reuse the resident buffer. See the
/// [module docs](self) for the failure-model contract.
pub(crate) struct SharedDeviceData<T> {
    /// The host copy, shared with the device buffer (no staging clone).
    pub host: Arc<Vec<T>>,
    device: Mutex<Option<(DeviceBuffer<T>, Event)>>,
}

impl<T: Send + Sync + 'static> SharedDeviceData<T> {
    pub fn new(host: Arc<Vec<T>>) -> Self {
        SharedDeviceData {
            host,
            device: Mutex::new(None),
        }
    }

    /// Size of the backing data in bytes (for transfer accounting).
    pub fn bytes(&self) -> u64 {
        (self.host.len() * std::mem::size_of::<T>()) as u64
    }

    /// Returns the device-resident buffer for use on `stream`, plus
    /// `true` when the upload was elided (already resident). The first
    /// call uploads on `stream`; an entry whose upload is known to have
    /// failed is repaired with a fresh upload here. (The engine paths
    /// go through [`Self::acquire_in`]; this unbatched form is kept
    /// for direct-stream consumers and tests.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn acquire(&self, stream: &Stream) -> XpuResult<(DeviceBuffer<T>, bool)> {
        let mut batch = stream.batch(false);
        let out = self.acquire_in(&mut batch);
        batch.commit();
        out
    }

    /// [`Self::acquire`] into an open launch batch: the upload (or the
    /// cross-stream event wait) is enqueued through `batch`, so a fused
    /// batch carries it inside the same dispatch as the kernels that
    /// consume it. Event record/wait pairs within one batch execute in
    /// enqueue order, so a same-batch consumer of a same-batch upload
    /// never deadlocks.
    pub fn acquire_in(&self, batch: &mut LaunchBatch<'_>) -> XpuResult<(DeviceBuffer<T>, bool)> {
        let mut slot = self.device.lock();
        if let Some((buf, ready)) = &*slot {
            // Repair a known-failed upload; an upload still in flight
            // is reused optimistically (a failure surfaces later as a
            // kernel panic on the consumer's stream, which recovers
            // per work unit).
            let failed = ready.is_set() && ready.wait_result().is_err();
            if !failed {
                batch.wait_event(ready);
                return Ok((buf.clone(), true));
            }
        }
        let buf = batch.try_upload_shared(Arc::clone(&self.host))?;
        let ready = Event::new();
        batch.record_event(&ready);
        *slot = Some((buf.clone(), ready));
        Ok((buf, false))
    }
}

/// One partition row, packed and sorted once, shared by every rule
/// that reads the `(layer, partition config)` it came from.
pub(crate) struct PlannedRow {
    /// Packed edges of the row, sorted by [`edge_sort_key`].
    pub edges: SharedDeviceData<PackedEdge>,
    /// Run table over the sorted edges ([`build_runs`]); both the
    /// brute and sweepline executors window their candidate scans
    /// through it.
    pub runs: SharedDeviceData<RunInfo>,
}

/// The packed rows of one layer under one partition configuration.
pub(crate) struct RowSet {
    pub rows: Vec<Arc<PlannedRow>>,
    /// Row count of the partition (including rows that packed zero
    /// edges), charged to [`EngineStats::rows`] per consuming rule.
    ///
    /// [`EngineStats::rows`]: crate::EngineStats::rows
    pub partition_rows: usize,
}

impl RowSet {
    /// Packs and sorts every partition row of `scene`. `min` is the
    /// rule distance driving the partition inflation; two rules whose
    /// distances round to the same half-width share the same set.
    pub fn build(
        ctx: &mut RunContext<'_>,
        device: &Device,
        scene: &LayerScene,
        min: i64,
    ) -> RowSet {
        let host = Arc::clone(&ctx.host);
        let (_, partition) =
            partition_scene(scene, min, ctx.options.partition, ctx.profiler, &host);
        let partition_rows = partition.len();
        let mut rows = Vec::new();
        if host.is_serial() {
            let mut polys = Vec::new();
            for row in &partition {
                let edges = ctx.profiler.time("pack", || {
                    let mut edges: Vec<PackedEdge> = Vec::new();
                    for &m in &row.members {
                        polys.clear();
                        scene.object_polygons_into(&scene.objects[m], &mut polys);
                        for poly in &polys {
                            edges.extend(poly.edges().map(pack));
                        }
                    }
                    // Every executor windows through the run table, so
                    // sorting unconditionally keeps one packing path.
                    // Large rows sort on the device.
                    odrc_xpu::sort::parallel_sort_by_key(device, &mut edges, |&e| edge_sort_key(e));
                    edges
                });
                if edges.is_empty() {
                    continue;
                }
                let runs = SharedDeviceData::new(Arc::new(build_runs(&edges)));
                rows.push(Arc::new(PlannedRow {
                    edges: SharedDeviceData::new(Arc::new(edges)),
                    runs,
                }));
            }
        } else {
            // Row-parallel packing: each task packs and sorts its row
            // on the host. [`edge_sort_key`] is a total order on the
            // packed values, so the host sort produces exactly the
            // array the device sort would — and keeping the device out
            // of the packing path here means fault ordinals are never
            // consumed by pack-time sorts.
            let start = std::time::Instant::now();
            let row_refs: Vec<&odrc_infra::partition::Row> = partition.iter().collect();
            let rows_ref = &row_refs;
            let packed = host.run("pack", row_refs.len(), |ri| {
                let mut polys = Vec::new();
                let mut edges: Vec<PackedEdge> = Vec::new();
                for &m in &rows_ref[ri].members {
                    polys.clear();
                    scene.object_polygons_into(&scene.objects[m], &mut polys);
                    for poly in &polys {
                        edges.extend(poly.edges().map(pack));
                    }
                }
                edges.sort_unstable_by_key(|&e| edge_sort_key(e));
                if edges.is_empty() {
                    return None;
                }
                let runs = SharedDeviceData::new(Arc::new(build_runs(&edges)));
                Some(Arc::new(PlannedRow {
                    edges: SharedDeviceData::new(Arc::new(edges)),
                    runs,
                }))
            });
            rows.extend(packed.into_iter().flatten());
            ctx.profiler.add("pack", start.elapsed());
        }
        RowSet {
            rows,
            partition_rows,
        }
    }
}

/// Cache key of a [`RowSet`]: the packed edges depend only on the
/// layer and the partition geometry (the half-distance inflation and
/// the partition ablation switch) — the rule's exact distance feeds
/// the kernels separately, so e.g. an unconditional and a conditional
/// spacing rule with the same minimum share one row set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct RowSetKey {
    pub layer: Layer,
    pub half: Coord,
    pub partition: bool,
}

impl RowSetKey {
    pub fn new(layer: Layer, min: i64, partition: bool) -> RowSetKey {
        RowSetKey {
            layer,
            half: ((min + 1) / 2) as Coord,
            partition,
        }
    }
}

/// Per-layer packed polygon list for intra-polygon device rules
/// (width, area): one entry per unique definition, shared by every
/// intra rule on the layer.
pub(crate) struct IntraData {
    /// `(cell, polygon index)` per packed polygon.
    pub targets: Arc<Vec<(CellId, usize)>>,
    /// The polygons, device-shareable.
    pub polys: SharedDeviceData<Polygon>,
}

/// One recorded launch of a [`LaunchGraph`]: the row it reads, the
/// executor choice made for it, and the launch geometry. Everything a
/// later rule needs to re-issue the row's kernels without re-deriving
/// the schedule.
pub(crate) struct GraphNode {
    pub row: Arc<PlannedRow>,
    /// `true` → brute (all-candidate emit in one kernel); `false` →
    /// two-phase sweepline (count, scan, emit).
    pub brute: bool,
    /// Launch geometry of the row's kernels (one thread per edge).
    pub cfg: LaunchConfig,
}

/// A recorded launch schedule for one row set: the per-row
/// `(buffer, executor, launch config)` sequence captured when the
/// first rule on a `(layer, partition)` executes, then *replayed* by
/// later rules sharing the key — skipping per-row schedule derivation
/// and keeping the issue loop a straight array walk
/// ([`EngineStats::graph_replays`]).
///
/// [`EngineStats::graph_replays`]: crate::EngineStats::graph_replays
pub(crate) struct LaunchGraph {
    pub nodes: Vec<GraphNode>,
}

impl LaunchGraph {
    /// Records the launch schedule for `rows` under the given sweep
    /// `threshold` (rows at or below it run the brute executor).
    pub fn record(rows: &[Arc<PlannedRow>], threshold: usize) -> LaunchGraph {
        let nodes = rows
            .iter()
            .map(|row| {
                let n = row.edges.host.len();
                GraphNode {
                    row: Arc::clone(row),
                    brute: n <= threshold,
                    cfg: LaunchConfig::for_threads(n),
                }
            })
            .collect();
        LaunchGraph { nodes }
    }
}

/// The per-run cache behind the planner: scenes, row sets, intra
/// polygon lists and recorded launch graphs, all keyed so that N rules
/// reading one layer build and upload once. Lives on the
/// [`RunContext`]; bypassed entirely when [`EngineOptions::planner`]
/// is off.
///
/// [`EngineOptions::planner`]: crate::EngineOptions::planner
#[derive(Default)]
pub(crate) struct PlanCache {
    pub scenes: HashMap<Layer, Arc<LayerScene>>,
    pub rows: HashMap<RowSetKey, Arc<RowSet>>,
    pub intra: HashMap<Layer, Arc<IntraData>>,
    pub graphs: HashMap<RowSetKey, Arc<LaunchGraph>>,
}

/// The deck's rules in issue order: grouped by the first layer each
/// rule reads (first-occurrence order), layer-less rules last. With
/// deferred synchronization the order does not affect results
/// (violations are canonicalized); grouping same-layer rules
/// adjacently just lets the first rule of a group warm the caches
/// while the rest of the deck is still issuing.
#[derive(Debug)]
pub struct ExecutionPlan {
    /// Indices into `deck.rules()`.
    pub order: Vec<usize>,
}

impl ExecutionPlan {
    /// Groups `deck`'s rules by primary layer.
    pub fn build(deck: &RuleDeck) -> ExecutionPlan {
        let mut groups: Vec<(Layer, Vec<usize>)> = Vec::new();
        let mut global: Vec<usize> = Vec::new();
        for (i, rule) in deck.rules().iter().enumerate() {
            match rule.layers().first() {
                Some(&layer) => match groups.iter_mut().find(|(g, _)| *g == layer) {
                    Some((_, members)) => members.push(i),
                    None => groups.push((layer, vec![i])),
                },
                None => global.push(i),
            }
        }
        let mut order: Vec<usize> = groups.into_iter().flat_map(|(_, m)| m).collect();
        order.extend(global);
        ExecutionPlan { order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule;

    #[test]
    fn plan_groups_rules_by_layer() {
        let deck = RuleDeck::new(vec![
            rule().layer(1).width().greater_than(5).named("A.W"),
            rule().layer(2).width().greater_than(5).named("B.W"),
            rule().layer(1).space().greater_than(5).named("A.S"),
            rule().polygons().is_rectilinear().named("GLOBAL"),
            rule().layer(2).space().greater_than(5).named("B.S"),
        ]);
        let plan = ExecutionPlan::build(&deck);
        // Layer 1 rules adjacent, then layer 2, then the global rule.
        assert_eq!(plan.order, vec![0, 2, 1, 4, 3]);
    }

    #[test]
    fn shared_data_uploads_once_across_streams() {
        let device = Device::new(2);
        let data = SharedDeviceData::new(Arc::new(vec![1u32, 2, 3]));
        let a = device.stream();
        let b = device.stream();
        let (buf_a, elided_a) = data.acquire(&a).unwrap();
        let (buf_b, elided_b) = data.acquire(&b).unwrap();
        assert!(!elided_a);
        assert!(elided_b);
        b.synchronize();
        assert_eq!(buf_a.to_vec(), vec![1, 2, 3]);
        assert_eq!(buf_b.to_vec(), vec![1, 2, 3]);
        a.synchronize();
        // One simulated transfer, not two.
        assert_eq!(device.stats().bytes_h2d(), 12);
    }

    #[test]
    fn row_set_key_shares_rounded_half_distance() {
        // 17 and 18 both inflate by 9; 20 inflates by 10.
        assert_eq!(RowSetKey::new(5, 17, true), RowSetKey::new(5, 18, true));
        assert_ne!(RowSetKey::new(5, 18, true), RowSetKey::new(5, 20, true));
        assert_ne!(RowSetKey::new(5, 18, true), RowSetKey::new(6, 18, true));
        assert_ne!(RowSetKey::new(5, 18, true), RowSetKey::new(5, 18, false));
    }
}
