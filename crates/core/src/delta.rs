//! Delta re-checking: re-run only the checks an edit can affect.
//!
//! Given a layout before and after an edit, [`dirty_rects`] localizes
//! the change to a set of top-level rectangles by a recursive structural
//! diff over the cell DAG (subtree content hashes prune unchanged
//! branches, so a leaf edit dirties only the edited geometry under each
//! instance path, not whole placements). [`Engine::check_delta`] then
//! re-runs each rule only inside an inflated halo around those rects and
//! splices the fresh results into the previous violation set.
//!
//! # Soundness
//!
//! The splice is exact, not approximate, because the engine's reported
//! violation locations are *local* to the participating geometry:
//!
//! * spacing violations locate at the hull of the two facing edges, and
//!   every point of that hull is within the rule distance `min` of the
//!   participating polygons (the edge relation only reports parallel
//!   facing pairs and near corners);
//! * enclosure / overlap violations locate at the inner shape's MBR,
//!   and outer geometry can only affect a shape within `min` of it.
//!
//! Hence a violation of the full run involves edited geometry **iff**
//! its location overlaps a dirty rect inflated by the rule's interaction
//! distance — the predicate [`DirtyWindow::hits`]. Both sides of the
//! splice use that one predicate: old violations failing it are kept
//! verbatim, and a windowed re-run (whose scene provably contains every
//! object that can participate in a predicate-positive violation)
//! replaces the rest. Intra-polygon rules (width, area, rectilinear,
//! user predicates) are instead recomputed whole — they are cheap per
//! unique cell through the §IV-C memo and the persistent cache — and
//! replace that rule's old violations entirely.

use std::collections::HashMap;

use odrc_db::{CellId, LayerPolygon, Layout};
use odrc_geometry::{Coord, Point, Rect, Transform};
use odrc_infra::Profiler;

use crate::cache::{CacheHandle, CacheKeys, ResultCache};
use crate::engine::{CheckReport, Engine, EngineStats, Mode};
use crate::parallel;
use crate::rules::{Rule, RuleDeck, RuleKind};
use crate::scene::{DirtyWindow, LayerScene};
use crate::sequential::{self, RunContext};
use crate::violation::{canonicalize, Violation};

/// The outcome of a delta re-check, relative to the previous run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Violations present now but not before.
    pub added: Vec<Violation>,
    /// Violations present before but not now.
    pub removed: Vec<Violation>,
    /// Violations common to both runs.
    pub unchanged_count: usize,
}

impl DeltaReport {
    /// True when the edit changed no violations.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The result of [`Engine::check_delta`]: the full new violation set
/// plus its delta against the previous set.
#[derive(Debug)]
pub struct DeltaCheckReport {
    /// All violations of the edited layout, canonicalized — equal to
    /// what a from-scratch [`Engine::check`] would report.
    pub violations: Vec<Violation>,
    /// The change relative to the supplied previous violations.
    pub delta: DeltaReport,
    /// The dirty rectangles the re-check was windowed to.
    pub dirty: Vec<Rect>,
    /// Wall-clock per pipeline phase.
    pub profile: Profiler,
    /// Work accounting for the windowed re-run.
    pub stats: EngineStats,
    /// `Some(reason)` when the run was cancelled at a rule boundary
    /// before the whole deck re-ran. The violation set is then
    /// *partial* and must not be treated as the layout's full result
    /// (an edit session discards it instead of re-priming its
    /// baseline).
    pub interrupted: Option<odrc_infra::CancelReason>,
}

impl DeltaCheckReport {
    /// Converts into a plain [`CheckReport`] (drops the delta).
    pub fn into_check_report(self) -> CheckReport {
        CheckReport {
            violations: self.violations,
            profile: self.profile,
            stats: self.stats,
            interrupted: self.interrupted,
            rule_status: Vec::new(),
        }
    }
}

/// Transform key for multiset ref matching.
type TKey = (bool, u8, i32, i32, i32);

fn tkey(t: &Transform) -> TKey {
    (
        t.mirror_x(),
        t.rotation().quarter_turns(),
        t.mag(),
        t.translate().x,
        t.translate().y,
    )
}

/// Collision-free content key of one local polygon (layer, datatype,
/// vertices, name) — plain equality, no hashing caveats.
fn poly_key(p: &LayerPolygon) -> Vec<i64> {
    let mut k = Vec::with_capacity(4 + 2 * p.polygon.vertices().len());
    k.push(i64::from(p.layer));
    k.push(i64::from(p.datatype));
    for v in p.polygon.vertices() {
        k.push(i64::from(v.x));
        k.push(i64::from(v.y));
    }
    match &p.name {
        Some(n) => {
            k.push(1);
            k.extend(n.bytes().map(i64::from));
        }
        None => k.push(0),
    }
    k
}

/// Top-level rectangles covering everything that differs between the
/// two layouts: the MBR of every changed, added, or removed flat
/// polygon, on **both** the old and the new side (a moved shape dirties
/// its source and its destination).
///
/// The diff recurses over paired cells and stops wherever the subtree
/// content hashes agree, so the cost is proportional to the edited
/// region, not the design. Equal subtree hashes are trusted as equal
/// content (64-bit FNV — a collision forfeits one re-check, accepted at
/// 2⁻⁶⁴).
pub fn dirty_rects(old: &Layout, new: &Layout) -> Vec<Rect> {
    dirty_rects_keyed(old, new, &old.subtree_hashes(), &new.subtree_hashes())
}

/// [`dirty_rects`] with precomputed subtree hashes (see
/// [`CacheKeys`]) — the diff itself then touches only changed cells.
pub fn dirty_rects_keyed(
    old: &Layout,
    new: &Layout,
    old_subtree: &[u64],
    new_subtree: &[u64],
) -> Vec<Rect> {
    let mut out = Vec::new();
    let identity = Transform::translation(Point::new(0, 0));
    diff_cells(
        old,
        new,
        old_subtree,
        new_subtree,
        old.top(),
        new.top(),
        identity,
        &mut out,
    );
    out.sort_unstable_by_key(|r| (r.lo().x, r.lo().y, r.hi().x, r.hi().y));
    out.dedup();
    out
}

#[allow(clippy::too_many_arguments)]
fn diff_cells(
    old: &Layout,
    new: &Layout,
    oh: &[u64],
    nh: &[u64],
    oc: CellId,
    nc: CellId,
    t: Transform,
    out: &mut Vec<Rect>,
) {
    if oh[oc.index()] == nh[nc.index()] {
        return;
    }
    let ocell = old.cell(oc);
    let ncell = new.cell(nc);

    // Local polygons: multiset diff by content. Every unmatched polygon
    // on either side dirties its transformed MBR. Edits leave the
    // polygon list untouched except at the edit sites, so trim the
    // common prefix and suffix by direct equality first — the keyed
    // multiset only sees the (tiny) middle.
    let ops = ocell.polygons();
    let nps = ncell.polygons();
    let mut lo = 0;
    while lo < ops.len() && lo < nps.len() && ops[lo] == nps[lo] {
        lo += 1;
    }
    let (mut ohi, mut nhi) = (ops.len(), nps.len());
    while ohi > lo && nhi > lo && ops[ohi - 1] == nps[nhi - 1] {
        ohi -= 1;
        nhi -= 1;
    }
    let mut old_polys: HashMap<Vec<i64>, Vec<Rect>> = HashMap::new();
    for p in &ops[lo..ohi] {
        old_polys
            .entry(poly_key(p))
            .or_default()
            .push(p.polygon.mbr());
    }
    for p in &nps[lo..nhi] {
        match old_polys.get_mut(&poly_key(p)) {
            Some(v) if !v.is_empty() => {
                v.pop();
            }
            _ => out.push(t.apply_rect(p.polygon.mbr())),
        }
    }
    for rects in old_polys.values() {
        for &r in rects {
            out.push(t.apply_rect(r));
        }
    }

    // References: same positional trim, except a pair is only
    // unchanged when the placement matches AND the child subtrees hash
    // equal — an edit inside a child leaves the parent's ref list
    // bit-identical.
    let ors = ocell.refs();
    let nrs = ncell.refs();
    let same_ref = |a: &odrc_db::CellRef, b: &odrc_db::CellRef| {
        oh[a.cell.index()] == nh[b.cell.index()] && a.transform == b.transform
    };
    let mut rlo = 0;
    while rlo < ors.len() && rlo < nrs.len() && same_ref(&ors[rlo], &nrs[rlo]) {
        rlo += 1;
    }
    let (mut orhi, mut nrhi) = (ors.len(), nrs.len());
    while orhi > rlo && nrhi > rlo && same_ref(&ors[orhi - 1], &nrs[nrhi - 1]) {
        orhi -= 1;
        nrhi -= 1;
    }

    // Pass 1: multiset-match identical (subtree content, placement)
    // pairs among the rest — those contribute nothing.
    let mut old_refs: HashMap<(u64, TKey), Vec<CellId>> = HashMap::new();
    for r in &ors[rlo..orhi] {
        old_refs
            .entry((oh[r.cell.index()], tkey(&r.transform)))
            .or_default()
            .push(r.cell);
    }
    let mut new_unmatched: Vec<odrc_db::CellRef> = Vec::new();
    for r in &nrs[rlo..nrhi] {
        match old_refs.get_mut(&(nh[r.cell.index()], tkey(&r.transform))) {
            Some(v) if !v.is_empty() => {
                v.pop();
            }
            _ => new_unmatched.push(*r),
        }
    }
    // Pass 2: leftovers at the same placement are the same instance with
    // an edited definition — recurse to localize the change inside it.
    let mut old_left: HashMap<TKey, Vec<CellId>> = HashMap::new();
    for ((_, k), cells) in old_refs {
        old_left.entry(k).or_default().extend(cells);
    }
    for r in new_unmatched {
        let k = tkey(&r.transform);
        if let Some(ocid) = old_left.get_mut(&k).and_then(Vec::pop) {
            diff_cells(old, new, oh, nh, ocid, r.cell, r.transform.then(&t), out);
        } else if let Some(m) = new.cell(r.cell).mbr() {
            // Added or moved-in reference: its whole subtree is new here.
            out.push(r.transform.then(&t).apply_rect(m));
        }
    }
    for (k, cells) in old_left {
        for ocid in cells {
            if let Some(m) = old.cell(ocid).mbr() {
                let rt = Transform::new(
                    k.0,
                    odrc_geometry::Rotation::from_quarter_turns(i32::from(k.1)),
                    k.2,
                    Point::new(k.3, k.4),
                );
                out.push(rt.then(&t).apply_rect(m));
            }
        }
    }
}

/// Clamps a rule's i64 interaction distance into window coordinates.
fn clamp_margin(m: i64) -> Coord {
    m.clamp(0, i64::from(Coord::MAX)) as Coord
}

/// Merge-walk of two canonical (sorted, deduplicated) violation sets.
fn diff_canonical(old: &[Violation], new: &[Violation]) -> DeltaReport {
    let mut delta = DeltaReport::default();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                delta.removed.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                delta.added.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                delta.unchanged_count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    delta.removed.extend(old[i..].iter().cloned());
    delta.added.extend(new[j..].iter().cloned());
    delta
}

impl Engine {
    /// Re-checks an edited layout against the deck, re-running only the
    /// checks the edit can affect.
    ///
    /// `old_violations` must be the violations a previous check of
    /// `old` reported with the **same deck and engine configuration**
    /// (rule names are the splice key, so they must be unique per
    /// deck). The returned `violations` equal a from-scratch
    /// [`Engine::check`] of `new` — the equivalence the incremental
    /// crate property-tests.
    pub fn check_delta(
        &self,
        old: &Layout,
        old_violations: &[Violation],
        new: &Layout,
        deck: &RuleDeck,
    ) -> DeltaCheckReport {
        let old_subtree = old.subtree_hashes();
        let new_keys = CacheKeys::compute(new);
        self.check_delta_keyed(
            old,
            &old_subtree,
            old_violations,
            new,
            &new_keys,
            deck,
            None,
        )
    }

    /// [`Engine::check_delta`] backed by a persistent result cache (see
    /// [`Engine::check_with_cache`]).
    pub fn check_delta_with_cache(
        &self,
        old: &Layout,
        old_violations: &[Violation],
        new: &Layout,
        deck: &RuleDeck,
        cache: &mut ResultCache,
    ) -> DeltaCheckReport {
        let old_subtree = old.subtree_hashes();
        let new_keys = CacheKeys::compute(new);
        self.check_delta_keyed(
            old,
            &old_subtree,
            old_violations,
            new,
            &new_keys,
            deck,
            Some(cache),
        )
    }

    /// [`Engine::check_delta`] with precomputed content keys: the
    /// layouts are not re-hashed, so the structural diff only touches
    /// changed cells. `old_subtree` must be `old.subtree_hashes()` and
    /// `new_keys` must be [`CacheKeys::compute`] of `new` — edit
    /// sessions carry both across checks.
    #[allow(clippy::too_many_arguments)]
    pub fn check_delta_keyed(
        &self,
        old: &Layout,
        old_subtree: &[u64],
        old_violations: &[Violation],
        new: &Layout,
        new_keys: &CacheKeys,
        deck: &RuleDeck,
        cache: Option<&mut ResultCache>,
    ) -> DeltaCheckReport {
        let mut profiler = Profiler::new();
        let dirty = profiler.time("dirty-diff", || {
            dirty_rects_keyed(old, new, old_subtree, &new_keys.subtree)
        });
        let old_canon = canonicalize(old_violations.to_vec());
        if dirty.is_empty() {
            // Structurally identical layouts: nothing to re-run.
            let unchanged_count = old_canon.len();
            return DeltaCheckReport {
                violations: old_canon,
                delta: DeltaReport {
                    unchanged_count,
                    ..DeltaReport::default()
                },
                dirty,
                profile: profiler,
                stats: EngineStats::default(),
                interrupted: None,
            };
        }

        let mut by_rule: HashMap<&str, Vec<Violation>> = HashMap::new();
        for v in &old_canon {
            by_rule.entry(v.rule.as_str()).or_default().push(v.clone());
        }

        let mut stats = EngineStats::default();
        let mut violations = Vec::new();
        let mut interrupted: Option<odrc_infra::CancelReason> = None;
        {
            let mut ctx = RunContext::new(new, &self.options, &mut profiler, &mut stats);
            if let Some(cache) = cache {
                ctx = ctx.with_cache(CacheHandle {
                    cache,
                    keys: new_keys,
                });
            }
            // Share the host-thread budget with the device worker pool
            // (see `infra::host`): host fan-outs and kernel slices draw
            // from one gate, so the run never oversubscribes.
            self.device.set_host_gate(ctx.host.gate());
            let stream = match self.mode {
                Mode::Sequential => None,
                Mode::Parallel => Some(self.device.stream()),
            };
            for rule in deck.rules() {
                // A cancelled delta run stops at the rule boundary, like
                // the full pipeline; its partial set is flagged below.
                if let Some(tok) = &self.cancel {
                    if let Some(reason) = tok.cancelled() {
                        interrupted = Some(reason);
                        break;
                    }
                }
                let olds = by_rule.remove(rule.name.as_str()).unwrap_or_default();
                self.run_delta_rule(
                    &mut ctx,
                    stream.as_ref(),
                    rule,
                    &dirty,
                    olds,
                    &mut violations,
                );
                if let Some(cb) = &self.progress {
                    cb(&rule.name, crate::engine::RuleStatus::Completed);
                }
            }
            if let Some(stream) = &stream {
                stream.synchronize();
            }
            ctx.stats.host_tasks += ctx.host.tasks();
            ctx.stats.host_steals += ctx.host.steals();
            ctx.host.drain_utilization_into(ctx.profiler);
            self.device.set_host_gate(None);
        }

        let violations = canonicalize(violations);
        let delta = diff_canonical(&old_canon, &violations);
        DeltaCheckReport {
            violations,
            delta,
            dirty,
            profile: profiler,
            stats,
            interrupted,
        }
    }

    fn run_delta_rule(
        &self,
        ctx: &mut RunContext<'_>,
        stream: Option<&odrc_xpu::Stream>,
        rule: &Rule,
        dirty: &[Rect],
        old_rule_viols: Vec<Violation>,
        out: &mut Vec<Violation>,
    ) {
        let splice = |w: DirtyWindow<'_>, fresh: Vec<Violation>, out: &mut Vec<Violation>| {
            // One predicate on both sides makes the splice exact: old
            // violations outside the influence window survive verbatim,
            // fresh windowed results replace everything inside it.
            out.extend(
                old_rule_viols
                    .iter()
                    .filter(|v| !w.hits(v.location))
                    .cloned(),
            );
            out.extend(fresh.into_iter().filter(|v| w.hits(v.location)));
        };
        match &rule.kind {
            RuleKind::Space {
                layer,
                min,
                min_projection,
            } => {
                let spec = crate::checks::SpaceSpec {
                    min: *min,
                    min_projection: *min_projection,
                };
                let w = DirtyWindow {
                    rects: dirty,
                    margin: clamp_margin(*min),
                };
                let layout = ctx.layout;
                let scene = ctx
                    .profiler
                    .time("scene", || LayerScene::build_near(layout, *layer, Some(w)));
                let mut fresh = Vec::new();
                match self.mode {
                    Mode::Sequential => {
                        let sig = crate::cache::rule_signature(rule);
                        sequential::check_space_scene(
                            ctx, &rule.name, &scene, spec, sig, &mut fresh,
                        );
                    }
                    Mode::Parallel => {
                        let stream = stream.expect("parallel mode carries a stream");
                        parallel::check_space_scene_parallel(
                            ctx, stream, &rule.name, &scene, spec, &mut fresh,
                        );
                    }
                }
                splice(w, fresh, out);
            }
            RuleKind::Enclosure { inner, outer, min } => {
                let w = DirtyWindow {
                    rects: dirty,
                    margin: clamp_margin(*min),
                };
                let mut fresh = Vec::new();
                match self.mode {
                    Mode::Sequential => sequential::check_enclosure_rule(
                        ctx,
                        &rule.name,
                        *inner,
                        *outer,
                        *min,
                        Some(w),
                        &mut fresh,
                    ),
                    Mode::Parallel => parallel::check_enclosure_rule_parallel(
                        ctx,
                        stream.expect("parallel mode carries a stream"),
                        &rule.name,
                        *inner,
                        *outer,
                        *min,
                        Some(w),
                        &mut fresh,
                    ),
                }
                splice(w, fresh, out);
            }
            RuleKind::OverlapArea {
                inner,
                outer,
                min_area,
            } => {
                // Overlap area only changes when geometry actually
                // intersects the dirt, so the halo is zero.
                let w = DirtyWindow {
                    rects: dirty,
                    margin: 0,
                };
                let mut fresh = Vec::new();
                match self.mode {
                    Mode::Sequential => sequential::check_overlap_rule(
                        ctx,
                        &rule.name,
                        *inner,
                        *outer,
                        *min_area,
                        Some(w),
                        &mut fresh,
                    ),
                    Mode::Parallel => parallel::check_overlap_rule_parallel(
                        ctx,
                        stream.expect("parallel mode carries a stream"),
                        &rule.name,
                        *inner,
                        *outer,
                        *min_area,
                        Some(w),
                        &mut fresh,
                    ),
                }
                splice(w, fresh, out);
            }
            _ => {
                // Intra-polygon rules: the per-cell memo plus the
                // persistent cache already make a full pass cheap, and
                // the fresh set simply replaces the rule's old one.
                drop(old_rule_viols);
                match self.mode {
                    Mode::Sequential => sequential::check_intra_rule(ctx, rule, out),
                    Mode::Parallel => parallel::check_intra_rule_parallel(
                        ctx,
                        stream.expect("parallel mode carries a stream"),
                        rule,
                        out,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule;
    use odrc_gdsii::{Element, Library, Structure};

    fn lib(shift: i32) -> Library {
        let mut lib = Library::new("delta");
        let mut leaf = Structure::new("LEAF");
        leaf.elements.push(Element::boundary(
            1,
            vec![
                Point::new(0, 0),
                Point::new(0, 10),
                Point::new(10, 10),
                Point::new(10, 0),
            ],
        ));
        lib.structures.push(leaf);
        let mut top = Structure::new("TOP");
        top.elements.push(Element::sref("LEAF", Point::new(0, 0)));
        top.elements
            .push(Element::sref("LEAF", Point::new(shift, 0)));
        top.elements
            .push(Element::sref("LEAF", Point::new(0, 1000)));
        lib.structures.push(top);
        lib
    }

    #[test]
    fn identical_layouts_have_no_dirt() {
        let a = Layout::from_library(&lib(100)).unwrap();
        let b = Layout::from_library(&lib(100)).unwrap();
        assert!(dirty_rects(&a, &b).is_empty());
    }

    #[test]
    fn moved_ref_dirties_source_and_destination() {
        let a = Layout::from_library(&lib(100)).unwrap();
        let b = Layout::from_library(&lib(50)).unwrap();
        let dirt = dirty_rects(&a, &b);
        assert!(!dirt.is_empty());
        let covers = |r: Rect| dirt.iter().any(|d| d.contains_rect(r));
        // Old and new positions of the moved instance are both dirty...
        assert!(covers(Rect::from_coords(100, 0, 110, 10)));
        assert!(covers(Rect::from_coords(50, 0, 60, 10)));
        // ...and the untouched far instance is not.
        assert!(!dirt
            .iter()
            .any(|d| d.overlaps(Rect::from_coords(0, 1000, 10, 1010))));
    }

    #[test]
    fn delta_matches_full_check_both_directions() {
        let deck = RuleDeck::new(vec![
            rule().layer(1).space().greater_than(8).named("L1.S.1"),
            rule().layer(1).width().greater_than(4).named("L1.W.1"),
        ]);
        let clean = Layout::from_library(&lib(100)).unwrap();
        let tight = Layout::from_library(&lib(15)).unwrap(); // gap 5 < 8
        for engine in [Engine::sequential(), Engine::parallel()] {
            let base = engine.check(&clean, &deck);
            let report = engine.check_delta(&clean, &base.violations, &tight, &deck);
            let full = engine.check(&tight, &deck);
            assert_eq!(report.violations, full.violations);
            assert!(!report.delta.added.is_empty());
            assert!(report.delta.removed.is_empty());

            // Fixing the edit removes exactly what it added.
            let back = engine.check_delta(&tight, &report.violations, &clean, &deck);
            assert_eq!(back.violations, base.violations);
            assert_eq!(back.delta.removed, report.delta.added);
        }
    }

    #[test]
    fn no_edit_short_circuits() {
        let deck = RuleDeck::new(vec![rule()
            .layer(1)
            .space()
            .greater_than(8)
            .named("L1.S.1")]);
        let a = Layout::from_library(&lib(15)).unwrap();
        let b = Layout::from_library(&lib(15)).unwrap();
        let engine = Engine::sequential();
        let base = engine.check(&a, &deck);
        let report = engine.check_delta(&a, &base.violations, &b, &deck);
        assert!(report.dirty.is_empty());
        assert_eq!(report.violations, base.violations);
        assert!(report.delta.is_clean());
        assert_eq!(report.stats, EngineStats::default());
    }
}
