//! The sequential (CPU) mode (§IV-D of the paper).
//!
//! "The sequential mode of OpenDRC first detects potential violations
//! between objects by querying overlapping MBRs of polygons or cells,
//! and then performs edge-based checks among those object pairs."
//!
//! The pipeline per inter-polygon rule:
//!
//! 1. **partition** — adaptive row partition of the layer's objects
//!    (§IV-B), with extents inflated by half the rule distance so rows
//!    cannot interact;
//! 2. **sweepline** — per row, the top-down sweepline over inflated
//!    object MBRs reports candidate object pairs (§IV-D, Fig. 3);
//! 3. **edge-check** — intra-object violations come from the per-cell
//!    memo (computed once per cell definition, §IV-C) and candidate
//!    pairs get windowed edge-to-edge checks.

use std::collections::HashMap;
use std::sync::Arc;

use odrc_db::{CellId, Layer, Layout};
use odrc_geometry::{Coord, Rect};
use odrc_infra::host::HostExecutor;
use odrc_infra::partition::{partition_rows, partition_rows_on, Row, RowPartition};
use odrc_infra::sweep::sweep_overlaps;
use odrc_infra::Profiler;

use crate::cache::CacheHandle;
use crate::checks::poly::{
    notch_space_violations, polygon_violations, space_violations_between, LocalViolation,
    PolyRuleSpec,
};
use crate::checks::{enclosure_margin, SpaceSpec};
use crate::engine::{EngineOptions, EngineStats};
use crate::plan::{IntraData, LaunchGraph, PlanCache, RowSet, RowSetKey, SharedDeviceData};
use crate::rules::{Rule, RuleKind};
use crate::scene::{instance_transforms, DirtyWindow, LayerScene, SceneObject, SceneSource};
use crate::violation::{Violation, ViolationKind};

/// Shared state across the rules of one `check()` run.
pub(crate) struct RunContext<'a> {
    pub layout: &'a Layout,
    pub options: &'a EngineOptions,
    pub profiler: &'a mut Profiler,
    pub stats: &'a mut EngineStats,
    /// Lazily computed instance transforms for intra-polygon reuse.
    pub instances: Option<HashMap<CellId, Vec<odrc_geometry::Transform>>>,
    /// Persistent result cache plus the layout's content keys, when the
    /// caller opted into cross-run reuse.
    pub cache: Option<CacheHandle<'a>>,
    /// The execution planner's per-run caches (scenes, row sets, intra
    /// polygon lists). Consulted only when `options.planner` is set.
    pub plan: PlanCache,
    /// The shared work-stealing host executor every hot host phase fans
    /// out on. Sized by `options.host_threads`; serial (one thread)
    /// executors never fan out, keeping the single-threaded code paths.
    pub host: Arc<HostExecutor>,
    /// Device work units that failed and were deferred so healthy rules
    /// keep draining; retried (with backoff deadlines) after all rules
    /// collect. See `parallel::drain_recovery`.
    pub recovery: Vec<crate::parallel::RecoveryUnit>,
    /// Wall-clock spans of every device wait ([`Self::device_wait`]).
    /// The engine merges them into an interval union at the end of the
    /// run: cumulative `kernel-wait` can exceed wall time when several
    /// pipelined waits cover the same physical seconds, so the union is
    /// reported alongside it as `device-wait-wall`.
    pub wait_spans: Vec<(std::time::Instant, std::time::Instant)>,
    /// The out-of-core shard residency pool, budgeted by
    /// `options.memory_budget`. Idle (and empty) unless the run routes
    /// rules through the sharded path.
    pub shard_pool: crate::shard::ShardPool,
}

impl<'a> RunContext<'a> {
    pub fn new(
        layout: &'a Layout,
        options: &'a EngineOptions,
        profiler: &'a mut Profiler,
        stats: &'a mut EngineStats,
    ) -> Self {
        RunContext {
            layout,
            options,
            profiler,
            stats,
            instances: None,
            cache: None,
            plan: PlanCache::default(),
            host: Arc::new(match &options.shared_gate {
                Some(gate) => HostExecutor::with_shared_gate(
                    options.resolved_host_threads(),
                    Arc::clone(gate),
                ),
                None => HostExecutor::new(options.resolved_host_threads()),
            }),
            recovery: Vec::new(),
            wait_spans: Vec::new(),
            shard_pool: crate::shard::ShardPool::new(options.memory_budget),
        }
    }

    /// Attaches a persistent cache handle.
    pub fn with_cache(mut self, cache: CacheHandle<'a>) -> Self {
        self.cache = Some(cache);
        self
    }

    pub fn instances(&mut self) -> &HashMap<CellId, Vec<odrc_geometry::Transform>> {
        if self.instances.is_none() {
            self.instances = Some(instance_transforms(self.layout));
        }
        self.instances.as_ref().expect("just computed")
    }

    /// The full scene of `layer`, memoized across the rules of the run
    /// when the planner is on. Windowed (delta) scenes never go through
    /// this memo — they are rule-specific.
    pub fn layer_scene(&mut self, layer: Layer) -> Arc<LayerScene> {
        if self.options.planner {
            if let Some(scene) = self.plan.scenes.get(&layer) {
                self.stats.scenes_reused += 1;
                return Arc::clone(scene);
            }
        }
        let layout = self.layout;
        let host = Arc::clone(&self.host);
        let scene = Arc::new(
            self.profiler
                .time("scene", || LayerScene::build_on(layout, layer, None, &host)),
        );
        self.stats.scenes_built += 1;
        if self.options.planner {
            self.plan.scenes.insert(layer, Arc::clone(&scene));
        }
        scene
    }

    /// The packed, sorted row set of `layer` for a rule distance of
    /// `min`, memoized by [`RowSetKey`] when the planner is on.
    pub fn row_set(&mut self, device: &odrc_xpu::Device, layer: Layer, min: i64) -> Arc<RowSet> {
        let key = RowSetKey::new(layer, min, self.options.partition);
        if self.options.planner {
            if let Some(rows) = self.plan.rows.get(&key) {
                return Arc::clone(rows);
            }
        }
        let scene = self.layer_scene(layer);
        let rows = Arc::new(RowSet::build(self, device, &scene, min));
        if self.options.planner {
            self.plan.rows.insert(key, Arc::clone(&rows));
        }
        rows
    }

    /// The packed unique-polygon list of `layer` for device-side intra
    /// rules (width, area), memoized per layer when the planner is on.
    pub fn intra_data(&mut self, layer: Layer) -> Arc<IntraData> {
        if self.options.planner {
            if let Some(data) = self.plan.intra.get(&layer) {
                return Arc::clone(data);
            }
        }
        let layout = self.layout;
        let data = self.profiler.time("pack", || {
            let targets: Vec<(CellId, usize)> = layout.layer_polygons(layer).to_vec();
            let polys: Vec<odrc_geometry::Polygon> = targets
                .iter()
                .map(|&(c, pi)| layout.cell(c).polygons()[pi].polygon.clone())
                .collect();
            Arc::new(IntraData {
                targets: Arc::new(targets),
                polys: SharedDeviceData::new(Arc::new(polys)),
            })
        });
        if self.options.planner {
            self.plan.intra.insert(layer, Arc::clone(&data));
        }
        data
    }

    /// The recorded launch graph of `(layer, min)`'s row set: replayed
    /// from the plan cache when a previous rule on the same key already
    /// recorded one ([`EngineStats::graph_replays`]), recorded fresh
    /// otherwise. Gated on both the planner and `options.launch_graph`
    /// (the replay ablation switch).
    ///
    /// [`EngineStats::graph_replays`]: crate::EngineStats::graph_replays
    pub fn launch_graph(&mut self, layer: Layer, min: i64, rows: &RowSet) -> Arc<LaunchGraph> {
        let cache = self.options.planner && self.options.launch_graph;
        let key = RowSetKey::new(layer, min, self.options.partition);
        if cache {
            if let Some(graph) = self.plan.graphs.get(&key) {
                self.stats.graph_replays += 1;
                return Arc::clone(graph);
            }
        }
        let graph = Arc::new(LaunchGraph::record(
            &rows.rows,
            self.options.sweep_threshold,
        ));
        if cache {
            self.plan.graphs.insert(key, Arc::clone(&graph));
        }
        graph
    }

    /// Times a blocking device wait: charges the cumulative
    /// `kernel-wait` profiler phase (as before) *and* records the
    /// wall-clock span for the run-level interval union (see
    /// [`Self::wait_spans`]).
    pub fn device_wait<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = self.profiler.time("kernel-wait", f);
        self.wait_spans.push((start, std::time::Instant::now()));
        out
    }

    /// Tallies one shared-buffer acquisition: an elided upload, or an
    /// actual (shallow) transfer of `bytes`.
    pub fn note_upload(&mut self, elided: bool, bytes: u64) {
        if elided {
            self.stats.uploads_elided += 1;
        } else {
            self.stats.bytes_uploaded += bytes;
        }
    }
}

/// Builds the poly-rule spec for an intra-polygon rule.
fn poly_spec(rule: &Rule) -> PolyRuleSpec {
    match &rule.kind {
        RuleKind::Width { min, .. } => PolyRuleSpec::Width(*min),
        RuleKind::Area { min, .. } => PolyRuleSpec::Area(*min),
        RuleKind::Rectilinear { .. } => PolyRuleSpec::Rectilinear,
        RuleKind::Ensures { predicate, .. } => PolyRuleSpec::Ensures(predicate.clone()),
        _ => unreachable!("not an intra-polygon rule"),
    }
}

/// The `(cell, polygon indices)` groups an intra rule must visit.
fn intra_targets(layout: &Layout, layer: Option<Layer>) -> Vec<(CellId, Vec<usize>)> {
    match layer {
        Some(l) => {
            let mut grouped: HashMap<CellId, Vec<usize>> = HashMap::new();
            for &(cell, pi) in layout.layer_polygons(l) {
                grouped.entry(cell).or_default().push(pi);
            }
            let mut v: Vec<_> = grouped.into_iter().collect();
            v.sort_by_key(|(c, _)| *c);
            v
        }
        None => layout
            .cell_ids()
            .map(|cell| {
                let n = layout.cell(cell).polygons().len();
                (cell, (0..n).collect::<Vec<_>>())
            })
            .filter(|(_, ps)| !ps.is_empty())
            .collect(),
    }
}

/// Runs an intra-polygon rule (width, area, rectilinear, ensures) with
/// per-cell memoization (§IV-C).
pub(crate) fn check_intra_rule(ctx: &mut RunContext<'_>, rule: &Rule, out: &mut Vec<Violation>) {
    let layer = match rule.kind {
        RuleKind::Width { layer, .. } | RuleKind::Area { layer, .. } => Some(layer),
        RuleKind::Rectilinear { layer } | RuleKind::Ensures { layer, .. } => layer,
        _ => unreachable!("not an intra-polygon rule"),
    };
    let spec = poly_spec(rule);
    let targets = intra_targets(ctx.layout, layer);
    let layout = ctx.layout;
    let pruning = ctx.options.pruning;
    // Persistent reuse is keyed by the cell's *local* content hash:
    // intra-polygon verdicts depend only on the cell's own geometry.
    let sig = if pruning {
        crate::cache::rule_signature(rule)
    } else {
        None
    };

    // Compute local violations per cell (once, under pruning), serving
    // them from the persistent cache when the content is known.
    let mut per_cell: Vec<(CellId, Arc<Vec<LocalViolation>>, bool)> = Vec::new();
    if ctx.host.is_serial() {
        ctx.profiler.time("edge-check", || {
            for (cell, polys) in &targets {
                if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                    let key = handle.keys.local[cell.index()];
                    if let Some(hit) = handle.cache.get(sig, key) {
                        per_cell.push((*cell, hit, true));
                        continue;
                    }
                }
                let c = layout.cell(*cell);
                let mut local = Vec::new();
                for &pi in polys {
                    polygon_violations(&c.polygons()[pi], &spec, &mut local);
                }
                let arc = Arc::new(local);
                if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                    let key = handle.keys.local[cell.index()];
                    handle.cache.insert(sig, key, Arc::clone(&arc));
                }
                per_cell.push((*cell, arc, false));
            }
        });
    } else {
        // Cache consults stay serial (the handle is exclusive); the
        // actual polygon checks of the misses fan out, and `per_cell`
        // is assembled back in target order so downstream instantiation
        // is order-identical to the serial loop.
        let host = Arc::clone(&ctx.host);
        let start = std::time::Instant::now();
        let mut slots: Vec<Option<Arc<Vec<LocalViolation>>>> = vec![None; targets.len()];
        let mut missing: Vec<usize> = Vec::new();
        for (ti, (cell, _)) in targets.iter().enumerate() {
            if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                let key = handle.keys.local[cell.index()];
                if let Some(hit) = handle.cache.get(sig, key) {
                    slots[ti] = Some(hit);
                    continue;
                }
            }
            missing.push(ti);
        }
        let targets_ref = &targets;
        let missing_ref = &missing;
        let spec_ref = &spec;
        let computed = host.run("edge-check", missing.len(), |i| {
            let (cell, polys) = &targets_ref[missing_ref[i]];
            let c = layout.cell(*cell);
            let mut local = Vec::new();
            for &pi in polys {
                polygon_violations(&c.polygons()[pi], spec_ref, &mut local);
            }
            Arc::new(local)
        });
        let mut is_miss = vec![false; targets.len()];
        for (&ti, arc) in missing.iter().zip(computed) {
            is_miss[ti] = true;
            let (cell, _) = &targets[ti];
            if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                let key = handle.keys.local[cell.index()];
                handle.cache.insert(sig, key, Arc::clone(&arc));
            }
            slots[ti] = Some(arc);
        }
        for (ti, (cell, _)) in targets.iter().enumerate() {
            let arc = slots[ti].take().expect("every target resolved");
            per_cell.push((*cell, arc, !is_miss[ti]));
        }
        ctx.profiler.add("edge-check", start.elapsed());
    }

    // Instantiate through every placement of the cell.
    let instances = ctx.instances().clone();
    let mut computed = 0usize;
    let mut reused = 0usize;
    for (cell, local, from_cache) in &per_cell {
        let Some(transforms) = instances.get(cell) else {
            continue; // defined but never instantiated
        };
        let polys = targets
            .iter()
            .find(|(c, _)| c == cell)
            .map(|(_, p)| p.len())
            .unwrap_or(0);
        if pruning {
            if *from_cache {
                reused += polys;
            } else {
                computed += polys;
            }
            reused += polys * transforms.len().saturating_sub(1);
        } else {
            // Ablation: pretend each instance is checked independently.
            computed += polys * transforms.len();
            // Actually recompute to make the cost real.
            if transforms.len() > 1 {
                let c = layout.cell(*cell);
                ctx.profiler.time("edge-check", || {
                    for _ in 1..transforms.len() {
                        let mut scratch = Vec::new();
                        for p in c.polygons() {
                            if layer.map(|l| p.layer == l).unwrap_or(true) {
                                polygon_violations(p, &spec, &mut scratch);
                            }
                        }
                    }
                });
            }
        }
        for t in transforms {
            for v in local.iter() {
                let vi = v.instantiate(t);
                out.push(Violation {
                    rule: rule.name.clone(),
                    kind: vi.kind,
                    location: vi.location,
                    measured: vi.measured,
                });
            }
        }
    }
    ctx.stats.checks_computed += computed;
    ctx.stats.checks_reused += reused;
}

/// Builds the row partition over a scene's objects.
pub(crate) fn partition_scene(
    scene: &LayerScene,
    min: i64,
    enabled: bool,
    profiler: &mut Profiler,
    host: &HostExecutor,
) -> (Vec<Rect>, RowPartition) {
    let mbrs: Vec<Rect> = scene.objects.iter().map(|o| o.mbr).collect();
    let half = ((min + 1) / 2) as Coord;
    let partition = profiler.time("partition", || {
        if enabled {
            partition_rows_on(&mbrs, half, host)
        } else {
            // Ablation: a single row holding everything.
            let members: Vec<usize> = (0..mbrs.len()).collect();
            if members.is_empty() {
                partition_rows(&[], half)
            } else {
                let all = mbrs
                    .iter()
                    .copied()
                    .reduce(|a, b| a.hull(b))
                    .expect("non-empty");
                let row = Row {
                    y: all.y_range(),
                    members,
                };
                RowPartition::from_rows(vec![row])
            }
        }
    });
    (mbrs, partition)
}

/// Runs a same-layer spacing rule sequentially.
pub(crate) fn check_space_rule(
    ctx: &mut RunContext<'_>,
    rule_name: &str,
    layer: Layer,
    spec: SpaceSpec,
    sig: Option<u64>,
    out: &mut Vec<Violation>,
) {
    let scene = ctx.layer_scene(layer);
    check_space_scene(ctx, rule_name, &scene, spec, sig, out);
}

/// The spacing pipeline over an already-built (possibly windowed)
/// scene: partition, sweepline, memoized per-cell checks, pair checks.
pub(crate) fn check_space_scene(
    ctx: &mut RunContext<'_>,
    rule_name: &str,
    scene: &LayerScene,
    spec: SpaceSpec,
    sig: Option<u64>,
    out: &mut Vec<Violation>,
) {
    let min = spec.min;
    let host = Arc::clone(&ctx.host);
    let (mbrs, partition) = partition_scene(scene, min, ctx.options.partition, ctx.profiler, &host);
    ctx.stats.rows += partition.len();

    let half = ((min + 1) / 2) as Coord;
    if !host.is_serial() {
        check_space_scene_rows(
            ctx, &host, rule_name, scene, spec, sig, &mbrs, &partition, out,
        );
        return;
    }
    let mut memo: HashMap<CellId, Arc<Vec<LocalViolation>>> = HashMap::new();
    let mut local_hits: Vec<LocalViolation> = Vec::new();
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());

    for row in &partition {
        // Sweepline over the row's inflated object MBRs.
        let members = &row.members;
        let inflated: Vec<Rect> = members.iter().map(|&m| mbrs[m].inflate(half)).collect();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        match ctx.options.pair_index {
            crate::engine::PairIndex::Sweepline => ctx.profiler.time("sweepline", || {
                sweep_overlaps(&inflated, |a, b| pairs.push((members[a], members[b])));
            }),
            crate::engine::PairIndex::RTree => ctx.profiler.time("sweepline", || {
                let tree = odrc_infra::RTree::bulk_load(&inflated);
                for (a, &ra) in inflated.iter().enumerate() {
                    tree.query_into(ra, &mut |b| {
                        if a < b {
                            pairs.push((members[a], members[b]));
                        }
                    });
                }
            }),
        }
        ctx.stats.candidate_pairs += pairs.len();

        // Intra-object checks, memoized per cell definition.
        ctx.profiler.time("edge-check", || {
            for &m in members {
                let obj = &scene.objects[m];
                match obj.source {
                    SceneSource::Cell { cell, transform } => {
                        let arc = if ctx.options.pruning {
                            if let Some(hit) = memo.get(&cell) {
                                ctx.stats.checks_reused += 1;
                                Arc::clone(hit)
                            } else {
                                // Cross-run reuse: the flattened-subtree
                                // verdict is keyed by the subtree hash.
                                let mut hit = None;
                                if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                                    let key = handle.keys.subtree[cell.index()];
                                    hit = handle.cache.get(sig, key);
                                }
                                let arc = match hit {
                                    Some(arc) => {
                                        ctx.stats.checks_reused += 1;
                                        arc
                                    }
                                    None => {
                                        ctx.stats.checks_computed += 1;
                                        let arc =
                                            Arc::new(cell_internal_space(scene, cell, spec, half));
                                        if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut())
                                        {
                                            let key = handle.keys.subtree[cell.index()];
                                            handle.cache.insert(sig, key, Arc::clone(&arc));
                                        }
                                        arc
                                    }
                                };
                                memo.insert(cell, Arc::clone(&arc));
                                arc
                            }
                        } else {
                            ctx.stats.checks_computed += 1;
                            Arc::new(cell_internal_space(scene, cell, spec, half))
                        };
                        local_hits.extend(arc.iter().map(|v| v.instantiate(&transform)));
                    }
                    SceneSource::TopPolygon { index } => {
                        notch_space_violations(scene.top_polygon(index), spec, &mut local_hits);
                    }
                }
            }

            // Cross-object checks over candidate pairs.
            for &(a, b) in &pairs {
                cross_space(
                    scene,
                    &scene.objects[a],
                    &scene.objects[b],
                    spec,
                    &mut buf_a,
                    &mut buf_b,
                    &mut local_hits,
                );
            }
        });
    }

    out.extend(local_hits.into_iter().map(|v| Violation {
        rule: rule_name.to_owned(),
        kind: v.kind,
        location: v.location,
        measured: v.measured,
    }));
}

/// The row-parallel spacing pipeline: the per-cell memo is precomputed
/// on the calling thread (so §IV-C bookkeeping — cache consults, reuse
/// counters — stays deterministic and identical to the serial order),
/// then independent partition rows fan out on the executor and merge in
/// partition order. The violation list is byte-identical to the serial
/// loop for any thread count.
#[allow(clippy::too_many_arguments)]
fn check_space_scene_rows(
    ctx: &mut RunContext<'_>,
    host: &HostExecutor,
    rule_name: &str,
    scene: &LayerScene,
    spec: SpaceSpec,
    sig: Option<u64>,
    mbrs: &[Rect],
    partition: &RowPartition,
    out: &mut Vec<Violation>,
) {
    let half = ((spec.min + 1) / 2) as Coord;
    let pruning = ctx.options.pruning;

    // Phase 1: resolve every unique cell once — memo hits for repeat
    // placements, persistent-cache consults in first-occurrence order,
    // and a parallel fan-out over the actual misses.
    let mut memo: HashMap<CellId, Arc<Vec<LocalViolation>>> = HashMap::new();
    if pruning {
        let mut order: Vec<CellId> = Vec::new();
        let mut seen: std::collections::HashSet<CellId> = Default::default();
        let mut occurrences = 0usize;
        for row in partition {
            for &m in &row.members {
                if let SceneSource::Cell { cell, .. } = scene.objects[m].source {
                    occurrences += 1;
                    if seen.insert(cell) {
                        order.push(cell);
                    }
                }
            }
        }
        ctx.stats.checks_reused += occurrences - order.len();
        let mut missing: Vec<CellId> = Vec::new();
        for &cell in &order {
            let mut hit = None;
            if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                let key = handle.keys.subtree[cell.index()];
                hit = handle.cache.get(sig, key);
            }
            match hit {
                Some(arc) => {
                    ctx.stats.checks_reused += 1;
                    memo.insert(cell, arc);
                }
                None => missing.push(cell),
            }
        }
        let missing_ref = &missing;
        let computed = host.run("edge-check", missing.len(), |i| {
            Arc::new(cell_internal_space(scene, missing_ref[i], spec, half))
        });
        for (&cell, arc) in missing.iter().zip(computed) {
            ctx.stats.checks_computed += 1;
            if let (Some(sig), Some(handle)) = (sig, ctx.cache.as_mut()) {
                let key = handle.keys.subtree[cell.index()];
                handle.cache.insert(sig, key, Arc::clone(&arc));
            }
            memo.insert(cell, arc);
        }
    }

    // Phase 2: independent rows fan out; each task returns its hits in
    // row-local discovery order plus its phase timings and counters.
    struct RowOutput {
        hits: Vec<LocalViolation>,
        pairs: usize,
        computed: usize,
        sweep: std::time::Duration,
        check: std::time::Duration,
    }
    let pair_index = ctx.options.pair_index;
    let rows: Vec<&Row> = partition.iter().collect();
    let rows_ref = &rows;
    let memo_ref = &memo;
    let results: Vec<RowOutput> = host.run("edge-check", rows.len(), |ri| {
        let members = &rows_ref[ri].members;
        let inflated: Vec<Rect> = members.iter().map(|&m| mbrs[m].inflate(half)).collect();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let sweep_start = std::time::Instant::now();
        match pair_index {
            crate::engine::PairIndex::Sweepline => {
                sweep_overlaps(&inflated, |a, b| pairs.push((members[a], members[b])));
            }
            crate::engine::PairIndex::RTree => {
                let tree = odrc_infra::RTree::bulk_load(&inflated);
                for (a, &ra) in inflated.iter().enumerate() {
                    tree.query_into(ra, &mut |b| {
                        if a < b {
                            pairs.push((members[a], members[b]));
                        }
                    });
                }
            }
        }
        let sweep = sweep_start.elapsed();

        let check_start = std::time::Instant::now();
        let mut hits: Vec<LocalViolation> = Vec::new();
        let mut computed = 0usize;
        for &m in members {
            let obj = &scene.objects[m];
            match obj.source {
                SceneSource::Cell { cell, transform } => {
                    if pruning {
                        let arc = memo_ref.get(&cell).expect("memo covers every placed cell");
                        hits.extend(arc.iter().map(|v| v.instantiate(&transform)));
                    } else {
                        computed += 1;
                        let local = cell_internal_space(scene, cell, spec, half);
                        hits.extend(local.iter().map(|v| v.instantiate(&transform)));
                    }
                }
                SceneSource::TopPolygon { index } => {
                    notch_space_violations(scene.top_polygon(index), spec, &mut hits);
                }
            }
        }
        let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
        for &(a, b) in &pairs {
            cross_space(
                scene,
                &scene.objects[a],
                &scene.objects[b],
                spec,
                &mut buf_a,
                &mut buf_b,
                &mut hits,
            );
        }
        RowOutput {
            hits,
            pairs: pairs.len(),
            computed,
            sweep,
            check: check_start.elapsed(),
        }
    });

    // Phase 3: deterministic merge in partition order.
    for r in results {
        ctx.stats.candidate_pairs += r.pairs;
        ctx.stats.checks_computed += r.computed;
        ctx.profiler.add("sweepline", r.sweep);
        ctx.profiler.add("edge-check", r.check);
        out.extend(r.hits.into_iter().map(|v| Violation {
            rule: rule_name.to_owned(),
            kind: v.kind,
            location: v.location,
            measured: v.measured,
        }));
    }
}

/// Spacing violations inside one cell's flattened subtree, in local
/// coordinates (this is the per-cell result §IV-C reuses).
pub(crate) fn cell_internal_space(
    scene: &LayerScene,
    cell: CellId,
    spec: SpaceSpec,
    half: Coord,
) -> Vec<LocalViolation> {
    let polys = scene.local_polygons(cell);
    let mut out = Vec::new();
    for p in polys {
        notch_space_violations(p, spec, &mut out);
    }
    let inflated: Vec<Rect> = polys.iter().map(|p| p.mbr().inflate(half)).collect();
    sweep_overlaps(&inflated, |a, b| {
        if polys[a].mbr().gap(polys[b].mbr()) < spec.min {
            space_violations_between(&polys[a], &polys[b], spec, &mut out);
        }
    });
    out
}

/// Edge checks between the near-border polygons of two objects.
///
/// `buf_a` / `buf_b` are caller-owned scratch buffers reused across
/// pairs (this runs once per candidate pair in every row — a fresh
/// `Vec<Polygon>` per call used to dominate the allocator here).
pub(crate) fn cross_space(
    scene: &LayerScene,
    a: &SceneObject,
    b: &SceneObject,
    spec: SpaceSpec,
    buf_a: &mut Vec<odrc_geometry::Polygon>,
    buf_b: &mut Vec<odrc_geometry::Polygon>,
    out: &mut Vec<LocalViolation>,
) {
    let m = spec.min as Coord;
    let Some(window) = a.mbr.inflate(m).intersection(b.mbr.inflate(m)) else {
        return;
    };
    buf_a.clear();
    scene.object_polygons_in_into(a, window, buf_a);
    if buf_a.is_empty() {
        return;
    }
    buf_b.clear();
    scene.object_polygons_in_into(b, window, buf_b);
    for qa in buf_a.iter() {
        for qb in buf_b.iter() {
            if qa.mbr().gap(qb.mbr()) < spec.min {
                space_violations_between(qa, qb, spec, out);
            }
        }
    }
}

/// Gathers the enclosure work list: every flat inner shape's MBR paired
/// with its candidate outer polygons.
///
/// Candidate discovery is hierarchical and output-sensitive: a single
/// sweepline runs over the inner MBRs (inflated by the rule margin) and
/// the *object-level* layer MBRs of the outer scene; only objects whose
/// layer MBR overlaps an inner shape get their geometry instantiated,
/// and only the polygons inside the inner shape's window.
pub(crate) fn enclosure_work(
    ctx: &mut RunContext<'_>,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
) -> Vec<(odrc_geometry::Polygon, Vec<odrc_geometry::Polygon>)> {
    let layout = ctx.layout;
    // Under a delta window only the inner shapes near the dirt are
    // re-measured; the outer scene stays complete so every retained
    // inner shape sees its full candidate set and measures its exact
    // margin. Full (window-less) scenes come from the run's memo;
    // windowed scenes are rule-specific and built fresh.
    let inner_scene = match window {
        None => ctx.layer_scene(inner),
        Some(w) => Arc::new(
            ctx.profiler
                .time("scene", || LayerScene::build_near(layout, inner, Some(w))),
        ),
    };
    let outer_scene = ctx.layer_scene(outer);
    let m = min as Coord;
    let mut inner_polys: Vec<odrc_geometry::Polygon> = Vec::new();
    for obj in &inner_scene.objects {
        inner_scene.object_polygons_into(obj, &mut inner_polys);
    }
    if let Some(w) = window {
        inner_polys.retain(|p| w.hits(p.mbr()));
    }
    let n_inner = inner_polys.len();
    // Combined array: inflated inner MBRs, then outer object MBRs.
    let mut rects: Vec<Rect> = inner_polys.iter().map(|p| p.mbr().inflate(m)).collect();
    rects.extend(outer_scene.objects.iter().map(|o| o.mbr));
    let mut object_hits: Vec<Vec<usize>> = vec![Vec::new(); n_inner];
    ctx.profiler.time("sweepline", || {
        sweep_overlaps(&rects, |a, b| {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo < n_inner && hi >= n_inner {
                object_hits[lo].push(hi - n_inner);
            }
        });
    });
    if ctx.host.is_serial() {
        inner_polys
            .into_iter()
            .zip(object_hits)
            .map(|(poly, objs)| {
                let window = poly.mbr().inflate(m);
                let mut candidates = Vec::new();
                for oi in objs {
                    outer_scene.object_polygons_in_into(
                        &outer_scene.objects[oi],
                        window,
                        &mut candidates,
                    );
                }
                (poly, candidates)
            })
            .collect()
    } else {
        // Candidate gathering is independent per inner shape: fan it
        // out by index and zip back in order.
        let host = Arc::clone(&ctx.host);
        let inner_ref = &inner_polys;
        let hits_ref = &object_hits;
        let outer_ref: &LayerScene = &outer_scene;
        let candidates = host.run("enclosure-gather", inner_polys.len(), |i| {
            let window = inner_ref[i].mbr().inflate(m);
            let mut candidates = Vec::new();
            for &oi in &hits_ref[i] {
                outer_ref.object_polygons_in_into(&outer_ref.objects[oi], window, &mut candidates);
            }
            candidates
        });
        inner_polys.into_iter().zip(candidates).collect()
    }
}

/// Runs an enclosure rule sequentially: every flat inner shape must be
/// enclosed by some outer-layer polygon with the minimum margin.
pub(crate) fn check_enclosure_rule(
    ctx: &mut RunContext<'_>,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    let work = enclosure_work(ctx, inner, outer, min, window);
    ctx.stats.checks_computed += work.len();
    let mut results = Vec::new();
    if ctx.host.is_serial() {
        ctx.profiler.time("enclosure-check", || {
            for (poly, candidates) in &work {
                let refs: Vec<&odrc_geometry::Polygon> = candidates.iter().collect();
                let margin = enclosure_margin(poly.mbr(), &refs, min);
                if margin < min {
                    results.push(Violation {
                        rule: rule_name.to_owned(),
                        kind: ViolationKind::Enclosure,
                        location: poly.mbr(),
                        measured: margin,
                    });
                }
            }
        });
    } else {
        let host = Arc::clone(&ctx.host);
        let start = std::time::Instant::now();
        let work_ref = &work;
        let measured = host.run("enclosure-check", work.len(), |i| {
            let (poly, candidates) = &work_ref[i];
            let refs: Vec<&odrc_geometry::Polygon> = candidates.iter().collect();
            let margin = enclosure_margin(poly.mbr(), &refs, min);
            (margin < min).then(|| Violation {
                rule: rule_name.to_owned(),
                kind: ViolationKind::Enclosure,
                location: poly.mbr(),
                measured: margin,
            })
        });
        results.extend(measured.into_iter().flatten());
        ctx.profiler.add("enclosure-check", start.elapsed());
    }
    out.extend(results);
}

/// Runs a minimum-overlap-area rule sequentially: the boolean AND of
/// every inner shape with the outer layer's geometry must reach the
/// minimum area ("minimum overlapping area constraints", §II).
pub(crate) fn check_overlap_rule(
    ctx: &mut RunContext<'_>,
    rule_name: &str,
    inner: Layer,
    outer: Layer,
    min_area: i64,
    window: Option<DirtyWindow<'_>>,
    out: &mut Vec<Violation>,
) {
    use odrc_infra::Region;
    let work = enclosure_work(ctx, inner, outer, 0, window);
    ctx.stats.checks_computed += work.len();
    let mut results = Vec::new();
    if ctx.host.is_serial() {
        ctx.profiler.time("overlap-check", || {
            for (poly, candidates) in &work {
                let inner_region = Region::from_polygons([poly]);
                let outer_region = Region::from_polygons(candidates.iter());
                let shared = inner_region.intersection(&outer_region).area();
                if shared < min_area {
                    results.push(Violation {
                        rule: rule_name.to_owned(),
                        kind: ViolationKind::OverlapArea,
                        location: poly.mbr(),
                        measured: shared,
                    });
                }
            }
        });
    } else {
        let host = Arc::clone(&ctx.host);
        let start = std::time::Instant::now();
        let work_ref = &work;
        let measured = host.run("overlap-check", work.len(), |i| {
            let (poly, candidates) = &work_ref[i];
            let inner_region = Region::from_polygons([poly]);
            let outer_region = Region::from_polygons(candidates.iter());
            let shared = inner_region.intersection(&outer_region).area();
            (shared < min_area).then(|| Violation {
                rule: rule_name.to_owned(),
                kind: ViolationKind::OverlapArea,
                location: poly.mbr(),
                measured: shared,
            })
        });
        results.extend(measured.into_iter().flatten());
        ctx.profiler.add("overlap-check", start.elapsed());
    }
    out.extend(results);
}
