//! Violation marker export.
//!
//! Physical verification tools conventionally emit violations as
//! marker shapes on a dedicated layer of a GDSII file, so layout
//! editors can overlay them on the design. [`marker_library`] converts
//! a report into such a library: one rectangle per violation on the
//! marker layer, carrying the rule name as GDSII property 1 and the
//! measured value as property 2.

use odrc_db::Layer;
use odrc_gdsii::{BoundaryElement, Element, Library, Structure};
use odrc_geometry::Rect;

use crate::violation::Violation;

/// Builds a GDSII library containing one marker rectangle per
/// violation.
///
/// Zero-width or zero-height violation boxes (a degenerate hull of two
/// collinear-adjacent edges) are inflated by one dbu so every marker is
/// a drawable rectangle.
///
/// # Examples
///
/// ```
/// use odrc::markers::marker_library;
/// use odrc::{Violation, ViolationKind};
/// use odrc_geometry::Rect;
///
/// let violations = vec![Violation {
///     rule: "M2.S.1".to_owned(),
///     kind: ViolationKind::Space,
///     location: Rect::from_coords(0, 0, 10, 20),
///     measured: 144,
/// }];
/// let lib = marker_library(&violations, 1000);
/// assert_eq!(lib.structures[0].elements.len(), 1);
/// let bytes = odrc_gdsii::write(&lib)?;
/// assert!(!bytes.is_empty());
/// # Ok::<(), odrc_gdsii::WriteError>(())
/// ```
pub fn marker_library(violations: &[Violation], marker_layer: Layer) -> Library {
    let mut lib = Library::new("odrc-markers");
    let mut top = Structure::new("DRC_MARKERS");
    for v in violations {
        let loc = fatten(v.location);
        top.elements.push(Element::Boundary(BoundaryElement {
            layer: marker_layer,
            datatype: 0,
            points: loc.corners().to_vec(),
            properties: vec![
                (1, v.rule.clone()),
                (2, format!("{}:{}", v.kind, v.measured)),
            ],
        }));
    }
    lib.structures.push(top);
    lib
}

fn fatten(r: Rect) -> Rect {
    let lo = r.lo();
    let mut hi = r.hi();
    if lo.x == hi.x {
        hi.x += 1;
    }
    if lo.y == hi.y {
        hi.y += 1;
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ViolationKind;

    fn v(x0: i32, y0: i32, x1: i32, y1: i32) -> Violation {
        Violation {
            rule: "R".to_owned(),
            kind: ViolationKind::Space,
            location: Rect::from_coords(x0, y0, x1, y1),
            measured: 7,
        }
    }

    #[test]
    fn empty_report_empty_markers() {
        let lib = marker_library(&[], 1000);
        assert_eq!(lib.structures.len(), 1);
        assert!(lib.structures[0].elements.is_empty());
    }

    #[test]
    fn markers_roundtrip_through_gdsii() {
        let lib = marker_library(&[v(0, 0, 10, 20), v(50, 50, 60, 55)], 999);
        let back = odrc_gdsii::read(&odrc_gdsii::write(&lib).unwrap()).unwrap();
        assert_eq!(back, lib);
        let Element::Boundary(b) = &back.structures[0].elements[0] else {
            panic!("expected boundary");
        };
        assert_eq!(b.layer, 999);
        assert_eq!(b.properties[0], (1, "R".to_owned()));
        assert_eq!(b.properties[1], (2, "space:7".to_owned()));
    }

    #[test]
    fn degenerate_markers_fattened() {
        // A zero-height hull (two collinear horizontal edge fragments).
        let lib = marker_library(&[v(0, 5, 10, 5)], 1000);
        let Element::Boundary(b) = &lib.structures[0].elements[0] else {
            panic!("expected boundary");
        };
        let poly = odrc_geometry::Polygon::new(b.points.clone()).unwrap();
        assert!(poly.area() > 0);
    }

    #[test]
    fn markers_import_into_layout() {
        let lib = marker_library(&[v(0, 0, 10, 20)], 1000);
        let layout = odrc_db::Layout::from_library(&lib).unwrap();
        assert_eq!(layout.layer_polygons(1000).len(), 1);
    }
}
