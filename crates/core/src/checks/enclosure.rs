//! Enclosure checks (inter-layer distance rules).
//!
//! An enclosure rule requires shapes of an inner layer (typically vias)
//! to lie inside the outer layer's geometry with a minimum margin on
//! every side — "the minimum enclosure is to avoid layer misalignment
//! errors" (§II of the paper).

use odrc_geometry::{Orientation, Polygon, Rect};

/// Returns `true` if the closed rectangle `r` lies entirely inside the
/// rectilinear polygon `poly`.
///
/// The test combines corner containment with a crossing test: no
/// polygon edge may pass strictly through the rectangle's interior
/// (corners inside alone would miss a notch cutting through the middle).
pub fn rect_inside_polygon(r: Rect, poly: &Polygon) -> bool {
    if !poly.mbr().contains_rect(r) {
        return false;
    }
    for corner in r.corners() {
        if !poly.contains(corner) {
            return false;
        }
    }
    for e in poly.edges() {
        match e.orientation() {
            Orientation::Vertical => {
                if r.lo().x < e.track()
                    && e.track() < r.hi().x
                    && e.span().overlaps_open(r.y_range())
                {
                    return false;
                }
            }
            Orientation::Horizontal => {
                if r.lo().y < e.track()
                    && e.track() < r.hi().y
                    && e.span().overlaps_open(r.x_range())
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Computes the enclosure margin of `inner` within the candidate
/// `outers`, clamped to `[-min, min]`.
///
/// The margin of one candidate is the largest `m` such that the inner
/// MBR inflated by `m` still lies inside the candidate; the overall
/// margin is the best across candidates (a via needs *one* sufficient
/// landing). The binary search is over at most `log₂(2·min)` steps, and
/// values outside `[-min, min]` are clamped — the check only needs to
/// know whether the margin reaches `min`.
///
/// Returns the clamped margin; the rule is violated when the result is
/// strictly below `min`.
///
/// # Examples
///
/// ```
/// use odrc::checks::enclosure_margin;
/// use odrc_geometry::{Polygon, Rect};
///
/// let via = Rect::from_coords(10, 10, 20, 20);
/// let metal = Polygon::rect(Rect::from_coords(0, 5, 40, 25));
/// // Margins: left 10, right 20, bottom 5, top 5 -> 5.
/// assert_eq!(enclosure_margin(via, &[&metal], 8), 5);
/// assert_eq!(enclosure_margin(via, &[&metal], 4), 4); // clamped: passes
/// ```
pub fn enclosure_margin(inner: Rect, outers: &[&Polygon], min: i64) -> i64 {
    let min = min.max(1);
    let mut best = -min;
    for outer in outers {
        // Binary search the largest workable inflation in [-min, min].
        let (mut lo, mut hi) = (-min, min);
        // Quick reject: even deflated by min, not inside.
        if !inside_with_margin(inner, outer, lo) {
            continue;
        }
        while lo < hi {
            let mid = lo + (hi - lo + 1) / 2;
            if inside_with_margin(inner, outer, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        best = best.max(lo);
        if best >= min {
            break;
        }
    }
    best
}

fn inside_with_margin(inner: Rect, outer: &Polygon, margin: i64) -> bool {
    let m = margin as i32;
    // Negative margins deflate; an over-deflated rect collapses and is
    // trivially inside if its center region is.
    let half_w = (inner.width() / 2) as i32;
    let half_h = (inner.height() / 2) as i32;
    let m = m.max(-half_w.min(half_h));
    let r = inner.inflate(m);
    rect_inside_polygon(r, outer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_geometry::Point;

    fn rect(x0: i32, y0: i32, x1: i32, y1: i32) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn rect_inside_simple() {
        let outer = Polygon::rect(rect(0, 0, 100, 100));
        assert!(rect_inside_polygon(rect(10, 10, 20, 20), &outer));
        assert!(rect_inside_polygon(rect(0, 0, 100, 100), &outer)); // exact
        assert!(!rect_inside_polygon(rect(-1, 10, 20, 20), &outer));
        assert!(!rect_inside_polygon(rect(90, 90, 110, 95), &outer));
    }

    #[test]
    fn rect_inside_l_shape_notch() {
        // L-shape: the notch is the upper-right quadrant.
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 100),
            Point::new(50, 100),
            Point::new(50, 50),
            Point::new(100, 50),
            Point::new(100, 0),
        ])
        .unwrap();
        assert!(rect_inside_polygon(rect(10, 10, 40, 90), &l));
        assert!(rect_inside_polygon(rect(10, 10, 90, 40), &l));
        // Crosses into the notch.
        assert!(!rect_inside_polygon(rect(40, 40, 60, 60), &l));
        // Entirely inside the notch (outside the polygon); all corners
        // outside.
        assert!(!rect_inside_polygon(rect(60, 60, 90, 90), &l));
        // Spans the notch horizontally: corners at y<=50 inside, but the
        // rect pokes above.
        assert!(!rect_inside_polygon(rect(10, 40, 90, 60), &l));
    }

    #[test]
    fn margin_centered_via() {
        let via = rect(45, 45, 55, 55);
        let metal = Polygon::rect(rect(0, 0, 100, 100));
        assert_eq!(enclosure_margin(via, &[&metal], 10), 10); // clamped
        assert_eq!(enclosure_margin(via, &[&metal], 60), 45);
    }

    #[test]
    fn margin_off_center() {
        let via = rect(2, 45, 12, 55);
        let metal = Polygon::rect(rect(0, 0, 100, 100));
        assert_eq!(enclosure_margin(via, &[&metal], 10), 2);
    }

    #[test]
    fn margin_poking_out_is_negative() {
        let via = rect(-5, 45, 5, 55);
        let metal = Polygon::rect(rect(0, 0, 100, 100));
        let m = enclosure_margin(via, &[&metal], 10);
        assert!(m < 0, "margin {m}");
    }

    #[test]
    fn margin_no_candidates() {
        let via = rect(0, 0, 10, 10);
        assert_eq!(enclosure_margin(via, &[], 8), -8);
    }

    #[test]
    fn best_candidate_wins() {
        let via = rect(20, 20, 30, 30);
        let narrow = Polygon::rect(rect(18, 0, 32, 100)); // margin 2
        let wide = Polygon::rect(rect(0, 0, 100, 100)); // margin 20 (clamp)
        assert_eq!(enclosure_margin(via, &[&narrow], 8), 2);
        assert_eq!(enclosure_margin(via, &[&narrow, &wide], 8), 8);
    }

    #[test]
    fn via_on_wire_matches_generator_geometry() {
        // The generator's clean V1: 10x10 via centered on an 18-wide M1
        // bar -> margin 4 in x, large in y.
        let bar = Polygon::rect(rect(-9, 0, 9, 210));
        let via = rect(-5, 100, 5, 110);
        assert_eq!(enclosure_margin(via, &[&bar], 4), 4); // passes == min
        assert_eq!(enclosure_margin(via, &[&bar], 5), 4); // fails < 5
    }
}
