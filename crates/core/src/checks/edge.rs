//! Edge-pair distance predicates (§IV-D "Check Procedures").
//!
//! Polygon vertices are stored in clockwise order "so that positional
//! relations of edges are determined accordingly": every edge knows on
//! which side its interior lies ([`Edge::interior_sign`]). A *width*
//! check looks for a facing pair with the interior between the edges; a
//! *space* check looks for a facing pair with the exterior between.
//!
//! Both predicates operate on squared distances; no square root is ever
//! taken.

use odrc_geometry::Edge;

/// How two parallel edges face each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRelation {
    /// Interior between the edges (width-style pair).
    InteriorFacing,
    /// Exterior between the edges (space-style pair).
    ExteriorFacing,
    /// Not a facing pair (perpendicular, same side, or collinear).
    None,
}

/// Classifies a pair of axis-aligned edges.
///
/// The classification is orientation-based only; it does not look at
/// distances.
pub fn relation(a: Edge, b: Edge) -> EdgeRelation {
    if !a.is_parallel(b) {
        return EdgeRelation::None;
    }
    let (lo, hi) = if a.track() < b.track() {
        (a, b)
    } else if b.track() < a.track() {
        (b, a)
    } else {
        return EdgeRelation::None; // collinear
    };
    match (lo.interior_sign(), hi.interior_sign()) {
        (1, -1) => EdgeRelation::InteriorFacing,
        (-1, 1) => EdgeRelation::ExteriorFacing,
        _ => EdgeRelation::None,
    }
}

/// Width predicate: returns the squared distance if the pair violates a
/// minimum width of `min` (i.e. is interior-facing with overlapping
/// projections and squared distance below `min²`).
///
/// Pairs with disjoint projections do not constitute a width: the
/// interior between them is measured by some other facing pair.
///
/// # Examples
///
/// ```
/// use odrc_geometry::{Edge, Point};
/// use odrc::checks::width_pair;
///
/// // A 10-wide vertical bar: left edge goes up, right edge goes down.
/// let left = Edge::new(Point::new(0, 0), Point::new(0, 50));
/// let right = Edge::new(Point::new(10, 50), Point::new(10, 0));
/// assert_eq!(width_pair(left, right, 18), Some(100)); // 10² < 18²
/// assert_eq!(width_pair(left, right, 10), None); // 10 >= 10 passes
/// ```
pub fn width_pair(a: Edge, b: Edge, min: i64) -> Option<i64> {
    if relation(a, b) != EdgeRelation::InteriorFacing {
        return None;
    }
    if a.projection_overlap(b) == 0 {
        return None;
    }
    let d2 = a.distance_sq(b);
    (d2 < min * min).then_some(d2)
}

/// Space predicate: returns the squared distance if the pair violates a
/// minimum spacing of `min` (exterior-facing, squared distance in
/// `(0, min²)` for corner pairs or `[0, min²)` for projecting pairs).
///
/// Unlike width, spacing also applies to pairs with disjoint
/// projections (corner-to-corner spacing), as long as the edges face
/// each other across the exterior.
///
/// ```
/// use odrc_geometry::{Edge, Point};
/// use odrc::checks::space_pair;
///
/// // Two bars 12 apart: right edge of the left bar faces left edge of
/// // the right bar across empty space.
/// let a = Edge::new(Point::new(10, 50), Point::new(10, 0));  // interior -x
/// let b = Edge::new(Point::new(22, 0), Point::new(22, 50));  // interior +x
/// assert_eq!(space_pair(a, b, 18), Some(144));
/// assert_eq!(space_pair(a, b, 12), None);
/// ```
pub fn space_pair(a: Edge, b: Edge, min: i64) -> Option<i64> {
    space_pair_spec(a, b, SpaceSpec::simple(min))
}

/// Parameters of a (possibly conditional) spacing rule.
///
/// Modern rule decks make spacing requirements conditional on the
/// *projection length* between the edges ("different spacing
/// constraints given different projection lengths", §II of the paper):
/// a large spacing only applies to long parallel runs. A
/// `min_projection` of zero makes the rule unconditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceSpec {
    /// Minimum spacing in dbu (violation when strictly below).
    pub min: i64,
    /// The rule only applies to pairs whose projection overlap is at
    /// least this long; `0` applies it to every facing pair, including
    /// corner-to-corner.
    pub min_projection: i64,
}

impl SpaceSpec {
    /// An unconditional spacing rule.
    pub fn simple(min: i64) -> SpaceSpec {
        SpaceSpec {
            min,
            min_projection: 0,
        }
    }
}

/// Space predicate with full rule parameters; see [`space_pair`].
///
/// ```
/// use odrc_geometry::{Edge, Point};
/// use odrc::checks::edge::{space_pair_spec, SpaceSpec};
///
/// let a = Edge::new(Point::new(10, 50), Point::new(10, 0));
/// let b = Edge::new(Point::new(22, 0), Point::new(22, 50));
/// // Overlap is 50: the conditional rule applies.
/// let spec = SpaceSpec { min: 18, min_projection: 40 };
/// assert_eq!(space_pair_spec(a, b, spec), Some(144));
/// // Requiring a longer run exempts the pair.
/// let spec = SpaceSpec { min: 18, min_projection: 60 };
/// assert_eq!(space_pair_spec(a, b, spec), None);
/// ```
pub fn space_pair_spec(a: Edge, b: Edge, spec: SpaceSpec) -> Option<i64> {
    if relation(a, b) != EdgeRelation::ExteriorFacing {
        return None;
    }
    if spec.min_projection > 0 && a.projection_overlap(b) < spec.min_projection {
        return None;
    }
    let d2 = a.distance_sq(b);
    (d2 < spec.min * spec.min).then_some(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_geometry::{Point, Polygon, Rect};

    fn e(x0: i32, y0: i32, x1: i32, y1: i32) -> Edge {
        Edge::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn relation_classification() {
        // Clockwise square edges.
        let sq = Polygon::rect(Rect::from_coords(0, 0, 10, 10));
        let edges: Vec<Edge> = sq.edges().collect();
        // Left (up) and right (down) edges: interior between.
        let left = edges
            .iter()
            .find(|e| e.track() == 0 && e.orientation() == odrc_geometry::Orientation::Vertical)
            .copied()
            .unwrap();
        let right = edges
            .iter()
            .find(|e| e.track() == 10 && e.orientation() == odrc_geometry::Orientation::Vertical)
            .copied()
            .unwrap();
        assert_eq!(relation(left, right), EdgeRelation::InteriorFacing);
        assert_eq!(relation(right, left), EdgeRelation::InteriorFacing);

        // Two squares side by side: facing across exterior.
        let sq2 = Polygon::rect(Rect::from_coords(20, 0, 30, 10));
        let left2 = sq2
            .edges()
            .find(|e| e.track() == 20 && e.orientation() == odrc_geometry::Orientation::Vertical)
            .unwrap();
        assert_eq!(relation(right, left2), EdgeRelation::ExteriorFacing);

        // Perpendicular edges: no relation.
        let top = edges
            .iter()
            .find(|e| e.orientation() == odrc_geometry::Orientation::Horizontal)
            .copied()
            .unwrap();
        assert_eq!(relation(left, top), EdgeRelation::None);

        // Same-side edges (both interiors pointing the same way).
        let left3 = e(40, 0, 40, 10); // up, interior +x
        let left4 = e(50, 0, 50, 10); // up, interior +x
        assert_eq!(relation(left3, left4), EdgeRelation::None);

        // Collinear edges.
        assert_eq!(relation(e(0, 0, 0, 5), e(0, 10, 0, 20)), EdgeRelation::None);
    }

    #[test]
    fn width_requires_projection_overlap() {
        let a = e(0, 0, 0, 10); // up, interior +x
        let b = e(5, 30, 5, 20); // down, interior -x, disjoint y
        assert_eq!(width_pair(a, b, 100), None);
        let b2 = e(5, 10, 5, 2); // overlapping projection
        assert_eq!(width_pair(a, b2, 100), Some(25));
    }

    #[test]
    fn width_boundary_is_strict() {
        let a = e(0, 0, 0, 10);
        let b = e(18, 10, 18, 0);
        assert_eq!(width_pair(a, b, 18), None); // exactly min passes
        assert_eq!(width_pair(a, b, 19), Some(324));
    }

    #[test]
    fn space_catches_corner_pairs() {
        // Diagonal corner gap of (3, 4) => 25.
        let a = e(10, 10, 10, 0); // right edge of left-bottom polygon
        let b = e(13, 14, 13, 30); // left edge of right-top polygon
        assert_eq!(space_pair(a, b, 6), Some(25));
        assert_eq!(space_pair(a, b, 5), None); // 25 >= 25
    }

    #[test]
    fn space_horizontal_pairs() {
        // Bottom polygon's top edge faces top polygon's bottom edge.
        let top_of_lower = e(0, 10, 10, 10); // right, interior -y
        let bottom_of_upper = e(10, 25, 0, 25); // left, interior +y
        assert_eq!(space_pair(top_of_lower, bottom_of_upper, 20), Some(225));
        assert_eq!(space_pair(top_of_lower, bottom_of_upper, 15), None);
    }

    #[test]
    fn space_ignores_interior_facing() {
        let a = e(0, 0, 0, 10); // up, interior +x
        let b = e(5, 10, 5, 0); // down, interior -x => interior between
        assert_eq!(space_pair(a, b, 100), None);
        assert!(width_pair(a, b, 100).is_some());
    }

    #[test]
    fn width_ignores_exterior_facing() {
        let a = e(0, 10, 0, 0); // down, interior -x
        let b = e(5, 0, 5, 10); // up, interior +x => exterior between
        assert_eq!(width_pair(a, b, 100), None);
        assert!(space_pair(a, b, 100).is_some());
    }

    #[test]
    fn predicates_are_symmetric() {
        let a = e(10, 10, 10, 0);
        let b = e(22, 0, 22, 50);
        assert_eq!(space_pair(a, b, 18), space_pair(b, a, 18));
        let c = e(0, 0, 0, 10);
        let d = e(5, 10, 5, 0);
        assert_eq!(width_pair(c, d, 100), width_pair(d, c, 100));
    }
}
