//! Check primitives shared by every engine.
//!
//! The sequential mode, the parallel (device) mode, and the baseline
//! checkers in `odrc-baselines` all reduce to the predicates in this
//! module, which is what makes their violation sets bit-identical — a
//! property the integration tests assert.

pub mod edge;
pub mod enclosure;
pub mod poly;

pub use edge::{space_pair, space_pair_spec, width_pair, EdgeRelation, SpaceSpec};
pub use enclosure::{enclosure_margin, rect_inside_polygon};
pub use poly::{polygon_violations, PolyRuleSpec};
