//! Per-polygon and polygon-pair check procedures.

use odrc_db::LayerPolygon;
use odrc_geometry::{Polygon, Rect, Transform};

use crate::checks::edge::SpaceSpec;
use crate::rules::{EnsureFn, PolygonInfo};
use crate::violation::ViolationKind;

/// A violation in cell-local coordinates, before instantiation.
///
/// Hierarchical check-result reuse (§IV-C) stores violations in the
/// defining cell's coordinates and replays them through each placement
/// transform — sound because placements are isometries, under which
/// every distance and area verdict is invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LocalViolation {
    /// Rule family.
    pub kind: ViolationKind,
    /// Offense bounding box in local coordinates.
    pub location: Rect,
    /// Measured value (see [`Violation::measured`]).
    ///
    /// [`Violation::measured`]: crate::Violation::measured
    pub measured: i64,
}

impl LocalViolation {
    /// Instantiates the violation through a placement transform.
    pub fn instantiate(&self, transform: &Transform) -> LocalViolation {
        LocalViolation {
            kind: self.kind,
            location: transform.apply_rect(self.location),
            measured: self.measured,
        }
    }
}

/// An intra-polygon rule, ready to run against single polygons.
#[derive(Clone)]
pub enum PolyRuleSpec {
    /// Minimum width.
    Width(i64),
    /// Minimum area.
    Area(i64),
    /// Must be rectilinear.
    Rectilinear,
    /// User predicate (label unused here; the engine attaches names).
    Ensures(EnsureFn),
}

/// Runs an intra-polygon rule against one polygon, appending local
/// violations.
pub fn polygon_violations(p: &LayerPolygon, spec: &PolyRuleSpec, out: &mut Vec<LocalViolation>) {
    match spec {
        PolyRuleSpec::Width(min) => width_violations(&p.polygon, *min, out),
        PolyRuleSpec::Area(min) => {
            let area = p.polygon.area();
            if area < *min {
                out.push(LocalViolation {
                    kind: ViolationKind::Area,
                    location: p.polygon.mbr(),
                    measured: area,
                });
            }
        }
        PolyRuleSpec::Rectilinear => {
            if !p.polygon.is_rectilinear() {
                out.push(LocalViolation {
                    kind: ViolationKind::Rectilinear,
                    location: p.polygon.mbr(),
                    measured: 0,
                });
            }
        }
        PolyRuleSpec::Ensures(pred) => {
            if !pred(PolygonInfo::of(p)) {
                out.push(LocalViolation {
                    kind: ViolationKind::Ensures,
                    location: p.polygon.mbr(),
                    measured: 0,
                });
            }
        }
    }
}

/// Width check over one polygon: every interior-facing edge pair with
/// overlapping projections and distance below `min`.
pub fn width_violations(poly: &Polygon, min: i64, out: &mut Vec<LocalViolation>) {
    let edges: Vec<_> = poly.edges().collect();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if let Some(d2) = super::edge::width_pair(edges[i], edges[j], min) {
                out.push(LocalViolation {
                    kind: ViolationKind::Width,
                    location: edges[i].mbr().hull(edges[j].mbr()),
                    measured: d2,
                });
            }
        }
    }
}

/// Spacing check within one polygon (notches: exterior-facing pairs of
/// the polygon's own edges).
pub fn notch_space_violations(poly: &Polygon, spec: SpaceSpec, out: &mut Vec<LocalViolation>) {
    let edges: Vec<_> = poly.edges().collect();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if let Some(d2) = super::edge::space_pair_spec(edges[i], edges[j], spec) {
                out.push(LocalViolation {
                    kind: ViolationKind::Space,
                    location: edges[i].mbr().hull(edges[j].mbr()),
                    measured: d2,
                });
            }
        }
    }
}

/// Spacing check across two polygons: every exterior-facing edge pair
/// below `min`.
pub fn space_violations_between(
    a: &Polygon,
    b: &Polygon,
    spec: SpaceSpec,
    out: &mut Vec<LocalViolation>,
) {
    for ea in a.edges() {
        for eb in b.edges() {
            if let Some(d2) = super::edge::space_pair_spec(ea, eb, spec) {
                out.push(LocalViolation {
                    kind: ViolationKind::Space,
                    location: ea.mbr().hull(eb.mbr()),
                    measured: d2,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_geometry::Point;
    use std::sync::Arc;

    fn lp(poly: Polygon) -> LayerPolygon {
        LayerPolygon {
            layer: 1,
            datatype: 0,
            polygon: poly,
            name: None,
        }
    }

    fn rect(x0: i32, y0: i32, x1: i32, y1: i32) -> Polygon {
        Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
    }

    #[test]
    fn wide_bar_passes_width() {
        let mut out = Vec::new();
        polygon_violations(&lp(rect(0, 0, 20, 100)), &PolyRuleSpec::Width(18), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn narrow_bar_fails_width_both_axes() {
        let mut out = Vec::new();
        // 12 wide, 100 tall: one violating pair (vertical edges).
        polygon_violations(&lp(rect(0, 0, 12, 100)), &PolyRuleSpec::Width(18), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::Width);
        assert_eq!(out[0].measured, 144);
        assert_eq!(out[0].location, Rect::from_coords(0, 0, 12, 100));
    }

    #[test]
    fn small_square_fails_width_twice() {
        let mut out = Vec::new();
        // 10x10: both the horizontal and vertical pair violate.
        polygon_violations(&lp(rect(0, 0, 10, 10)), &PolyRuleSpec::Width(18), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn l_shape_width_of_arms() {
        // L with 15-wide vertical arm and 15-wide horizontal arm.
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 60),
            Point::new(15, 60),
            Point::new(15, 15),
            Point::new(60, 15),
            Point::new(60, 0),
        ])
        .unwrap();
        let mut out = Vec::new();
        width_violations(&l, 18, &mut out);
        // Vertical arm: left edge [x=0] vs inner right edge [x=15]
        // (projection y 15..60 overlaps); horizontal arm similarly.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.measured == 225));
        let mut out = Vec::new();
        width_violations(&l, 15, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn area_rule() {
        let mut out = Vec::new();
        polygon_violations(&lp(rect(0, 0, 20, 20)), &PolyRuleSpec::Area(500), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].measured, 400);
        out.clear();
        polygon_violations(&lp(rect(0, 0, 20, 25)), &PolyRuleSpec::Area(500), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rectilinear_rule_passes_constructed_polygons() {
        let mut out = Vec::new();
        polygon_violations(&lp(rect(0, 0, 5, 5)), &PolyRuleSpec::Rectilinear, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ensures_rule_runs_predicate() {
        let pred: EnsureFn = Arc::new(|info: PolygonInfo<'_>| info.name.is_some());
        let mut out = Vec::new();
        polygon_violations(
            &lp(rect(0, 0, 5, 5)),
            &PolyRuleSpec::Ensures(pred.clone()),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::Ensures);

        let mut named = lp(rect(0, 0, 5, 5));
        named.name = Some("net1".to_owned());
        out.clear();
        polygon_violations(&named, &PolyRuleSpec::Ensures(pred), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn notch_detected() {
        // U-shape with a 10-wide notch; spacing 18 violated inside it.
        let u = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 50),
            Point::new(20, 50),
            Point::new(20, 20),
            Point::new(30, 20),
            Point::new(30, 50),
            Point::new(50, 50),
            Point::new(50, 0),
        ])
        .unwrap();
        let mut out = Vec::new();
        notch_space_violations(&u, SpaceSpec::simple(18), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].measured, 100);
        out.clear();
        notch_space_violations(&u, SpaceSpec::simple(10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pair_spacing_between_rects() {
        let a = rect(0, 0, 10, 50);
        let b = rect(22, 0, 32, 50);
        let mut out = Vec::new();
        space_violations_between(&a, &b, SpaceSpec::simple(18), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].measured, 144);
        out.clear();
        space_violations_between(&a, &b, SpaceSpec::simple(12), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn instantiate_transforms_location() {
        let v = LocalViolation {
            kind: ViolationKind::Width,
            location: Rect::from_coords(0, 0, 10, 20),
            measured: 5,
        };
        let t = Transform::translation(Point::new(100, 200));
        let vi = v.instantiate(&t);
        assert_eq!(vi.location, Rect::from_coords(100, 200, 110, 220));
        assert_eq!(vi.measured, 5);
    }
}
