//! The engine controller (the paper's "application layer", §V-A).

use odrc_db::Layout;
use odrc_infra::Profiler;
use odrc_xpu::Device;

use crate::cache::{CacheHandle, CacheKeys, ResultCache};
use crate::parallel;
use crate::rules::{Rule, RuleDeck, RuleKind};
use crate::sequential::{self, RunContext};
use crate::violation::Violation;

/// Execution mode of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The cell-level sweep pipeline on the CPU (§IV-D).
    Sequential,
    /// Row-by-row edge kernels on the device (§IV-E).
    Parallel,
}

/// Which structure discovers candidate object pairs in the sequential
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairIndex {
    /// The top-down sweepline with an interval tree (§IV-D) — the
    /// paper's choice and the default.
    #[default]
    Sweepline,
    /// An STR-packed R-tree queried per object — the bounding-volume
    /// alternative the paper cites (§I), kept for the ablation.
    RTree,
}

/// Tuning knobs, including the ablation switches DESIGN.md calls out.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Enable hierarchical check-result reuse (§IV-C). Disabling it
    /// re-checks every instance — the pruning ablation.
    pub pruning: bool,
    /// Enable the adaptive row-based partition (§IV-B). Disabling it
    /// processes the whole layout as one row — the partition ablation.
    pub partition: bool,
    /// Row edge count at or below which the parallel mode uses the
    /// brute-force executor instead of the sweepline executor (§IV-E).
    pub sweep_threshold: usize,
    /// Candidate-pair discovery structure for the sequential mode.
    pub pair_index: PairIndex,
    /// Device attempts per failed work unit (row or rule) before the
    /// engine gives up on the device and recomputes on the host. Zero
    /// falls back immediately.
    pub max_device_retries: usize,
    /// Base delay of the capped exponential backoff between device
    /// retries, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Enable the cross-rule execution planner: one scene per layer
    /// per run, device-resident row buffers shared across rules, and
    /// concurrent multi-stream rule scheduling with deferred
    /// synchronization. Disabling it reproduces the strict per-rule
    /// loop (fresh scene and uploads per rule, synchronize between
    /// rules) — the planner ablation and the equivalence baseline.
    pub planner: bool,
    /// Worker threads for the shared work-stealing host executor that
    /// fans out scene builds, partition assignment, row packing, the
    /// row-parallel sequential checks, and violation canonicalization.
    /// `None` (the default) sizes it to the host's available
    /// parallelism. The budget is shared with — not additive to — the
    /// device's kernel dispatch, and `Some(1)` runs the exact
    /// single-threaded code paths.
    pub host_threads: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            pruning: true,
            partition: true,
            sweep_threshold: 512,
            pair_index: PairIndex::default(),
            max_device_retries: 2,
            retry_backoff_ms: 1,
            planner: true,
            host_threads: None,
        }
    }
}

impl EngineOptions {
    /// The effective host-executor thread count: the explicit setting,
    /// or the host's available parallelism.
    pub fn resolved_host_threads(&self) -> usize {
        self.host_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// Work accounting for a check run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Checks actually executed (cell-level units for intra rules,
    /// emitted records for device space kernels).
    pub checks_computed: usize,
    /// Checks answered from the hierarchy memo instead of running
    /// (§IV-C).
    pub checks_reused: usize,
    /// Candidate object pairs produced by the sweepline.
    pub candidate_pairs: usize,
    /// Rows produced by the adaptive partition, summed over rules.
    pub rows: usize,
    /// Device re-attempts after transient faults (fresh-stream retries).
    pub device_retries: usize,
    /// Work units recomputed on the host after the device gave up.
    pub device_fallbacks: usize,
    /// Full layer scenes built this run (windowed delta scenes are not
    /// counted — they are rule-specific by construction).
    pub scenes_built: usize,
    /// Scene requests answered by the planner's per-run memo.
    pub scenes_reused: usize,
    /// Host→device uploads skipped because the data was already
    /// device-resident (the planner's buffer cache).
    pub uploads_elided: usize,
    /// Bytes actually moved host→device through the planner's shared
    /// upload path (shallow sizes at the upload call sites).
    pub bytes_uploaded: u64,
    /// Tasks executed by the host executor (zero when it ran serially —
    /// the single-threaded code paths never fan out).
    pub host_tasks: u64,
    /// Successful work steals between host-executor workers.
    pub host_steals: u64,
}

impl EngineStats {
    /// `true` if any device work was retried or recomputed on the host
    /// — the run completed, but not entirely on the fast path.
    pub fn degraded(&self) -> bool {
        self.device_retries > 0 || self.device_fallbacks > 0
    }
}

/// The result of [`Engine::check`].
#[derive(Debug)]
pub struct CheckReport {
    /// All violations, canonicalized (sorted, deduplicated).
    pub violations: Vec<Violation>,
    /// Wall-clock per pipeline phase (drives the Fig. 4 breakdown).
    pub profile: Profiler,
    /// Work accounting.
    pub stats: EngineStats,
}

impl CheckReport {
    /// Violations of one rule.
    pub fn violations_of<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Violation> + 'a {
        self.violations.iter().filter(move |v| v.rule == rule)
    }
}

/// The OpenDRC engine.
///
/// # Examples
///
/// ```
/// use odrc::{rules::rule, Engine, RuleDeck};
/// use odrc_layoutgen::{generate_layout, tech, DesignSpec};
///
/// let layout = generate_layout(&DesignSpec::tiny(1));
/// let deck = RuleDeck::new(vec![
///     rule().layer(tech::M2).width().greater_than(tech::M2_WIDTH).named("M2.W.1"),
///     rule().layer(tech::M2).space().greater_than(tech::M2_SPACE).named("M2.S.1"),
/// ]);
/// let report = Engine::sequential().check(&layout, &deck);
/// assert!(report.violations.iter().all(|v| v.rule.starts_with("M2")));
/// ```
#[derive(Debug)]
pub struct Engine {
    pub(crate) mode: Mode,
    pub(crate) options: EngineOptions,
    pub(crate) device: Device,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::sequential()
    }
}

impl Engine {
    /// A sequential-mode engine.
    pub fn sequential() -> Engine {
        Engine {
            mode: Mode::Sequential,
            options: EngineOptions::default(),
            device: Device::new(1),
        }
    }

    /// A parallel-mode engine on a default-sized device.
    pub fn parallel() -> Engine {
        Engine::parallel_on(Device::default())
    }

    /// A parallel-mode engine on a specific device.
    pub fn parallel_on(device: Device) -> Engine {
        Engine {
            mode: Mode::Parallel,
            options: EngineOptions::default(),
            device,
        }
    }

    /// Overrides the tuning options.
    #[must_use]
    pub fn with_options(mut self, options: EngineOptions) -> Engine {
        self.options = options;
        self
    }

    /// The engine's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The engine's device (meaningful in parallel mode).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs every rule of the deck against the layout.
    ///
    /// Both modes produce the same canonical violation set; the
    /// integration tests assert this equivalence on every generated
    /// design.
    pub fn check(&self, layout: &Layout, deck: &RuleDeck) -> CheckReport {
        self.check_impl(layout, deck, None)
    }

    /// Like [`Engine::check`], but backed by a persistent result cache:
    /// per-cell results keyed by structural content hashes (§IV-C,
    /// rekeyed so the memo survives edits and processes). The cache is
    /// consulted and updated in place; hits count as `checks_reused`.
    pub fn check_with_cache(
        &self,
        layout: &Layout,
        deck: &RuleDeck,
        cache: &mut ResultCache,
    ) -> CheckReport {
        let keys = CacheKeys::compute(layout);
        self.check_impl(layout, deck, Some((cache, &keys)))
    }

    /// [`Engine::check_with_cache`] with precomputed content keys —
    /// for callers (edit sessions) that already hashed the layout.
    /// `keys` must be [`CacheKeys::compute`] of this exact `layout`.
    pub fn check_with_cache_keyed(
        &self,
        layout: &Layout,
        keys: &CacheKeys,
        deck: &RuleDeck,
        cache: &mut ResultCache,
    ) -> CheckReport {
        self.check_impl(layout, deck, Some((cache, keys)))
    }

    pub(crate) fn check_impl(
        &self,
        layout: &Layout,
        deck: &RuleDeck,
        cache: Option<(&mut ResultCache, &CacheKeys)>,
    ) -> CheckReport {
        let mut profiler = Profiler::new();
        let mut stats = EngineStats::default();
        let mut violations = Vec::new();
        {
            let mut ctx = RunContext::new(layout, &self.options, &mut profiler, &mut stats);
            if let Some((cache, keys)) = cache {
                ctx = ctx.with_cache(CacheHandle { cache, keys });
            }
            // The pool-sizing handshake: while this run is live, kernel
            // dispatch draws its spawned threads from the host
            // executor's gate (None when the executor is serial, which
            // restores the ungated pre-existing pool).
            self.device.set_host_gate(ctx.host.gate());
            match self.mode {
                Mode::Sequential => {
                    for rule in deck.rules() {
                        self.run_sequential(&mut ctx, rule, &mut violations);
                    }
                }
                Mode::Parallel => {
                    // One stream per rule: stream errors are sticky, so
                    // a fault during one rule must not poison the rest
                    // of the deck (failed work is recovered per row
                    // inside each rule).
                    if self.options.planner {
                        // Planned: issue rules ahead of collection so
                        // independent device work overlaps across
                        // streams, with synchronization deferred to
                        // each rule's collect (§IV-E, §V-C). In-flight
                        // rules are bounded by the host's parallelism:
                        // past that point extra live streams only add
                        // contention (on a single-core host the window
                        // degrades to issue-ahead-by-one, keeping the
                        // scene/buffer sharing wins without
                        // oversubscription).
                        let plan = ctx
                            .profiler
                            .time("plan", || crate::plan::ExecutionPlan::build(deck));
                        let window = ctx.host.threads().clamp(2, 8);
                        let mut inflight = std::collections::VecDeque::with_capacity(window);
                        for &ri in &plan.order {
                            if inflight.len() >= window {
                                let fl = inflight.pop_front().expect("window is non-empty");
                                parallel::collect_rule(&mut ctx, fl, &mut violations);
                            }
                            let stream = self.device.stream();
                            inflight.push_back(parallel::issue_rule(
                                &mut ctx,
                                stream,
                                &deck.rules()[ri],
                            ));
                        }
                        for fl in inflight {
                            parallel::collect_rule(&mut ctx, fl, &mut violations);
                        }
                    } else {
                        // Ablation / equivalence baseline: the strict
                        // per-rule loop with a synchronize between
                        // rules.
                        for rule in deck.rules() {
                            let stream = self.device.stream();
                            let fl = parallel::issue_rule(&mut ctx, stream, rule);
                            parallel::collect_rule(&mut ctx, fl, &mut violations);
                        }
                    }
                    // Failed work units were deferred so healthy rules
                    // could keep draining; retry them (with backoff
                    // deadlines) or fall back to the host now.
                    parallel::drain_recovery(&mut ctx, &self.device, &mut violations);
                }
            }
            violations = {
                let host = std::sync::Arc::clone(&ctx.host);
                crate::violation::canonicalize_on(&host, violations)
            };
            ctx.stats.host_tasks += ctx.host.tasks();
            ctx.stats.host_steals += ctx.host.steals();
            ctx.host.drain_utilization_into(ctx.profiler);
            self.device.set_host_gate(None);
        }
        CheckReport {
            violations,
            profile: profiler,
            stats,
        }
    }

    fn run_sequential(&self, ctx: &mut RunContext<'_>, rule: &Rule, out: &mut Vec<Violation>) {
        match &rule.kind {
            RuleKind::Space {
                layer,
                min,
                min_projection,
            } => {
                let spec = crate::checks::SpaceSpec {
                    min: *min,
                    min_projection: *min_projection,
                };
                let sig = crate::cache::rule_signature(rule);
                sequential::check_space_rule(ctx, &rule.name, *layer, spec, sig, out);
            }
            RuleKind::Enclosure { inner, outer, min } => {
                sequential::check_enclosure_rule(ctx, &rule.name, *inner, *outer, *min, None, out);
            }
            RuleKind::OverlapArea {
                inner,
                outer,
                min_area,
            } => {
                sequential::check_overlap_rule(
                    ctx, &rule.name, *inner, *outer, *min_area, None, out,
                );
            }
            _ => sequential::check_intra_rule(ctx, rule, out),
        }
    }
}
