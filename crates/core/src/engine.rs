//! The engine controller (the paper's "application layer", §V-A).

use odrc_db::Layout;
use odrc_infra::{CancelReason, CancelToken, Profiler};
use odrc_xpu::Device;

use crate::cache::{rule_signature, CacheHandle, CacheKeys, ResultCache};
use crate::checkpoint::CheckpointJournal;
use crate::parallel;
use crate::rules::{Rule, RuleDeck, RuleKind};
use crate::sequential::{self, RunContext};
use crate::violation::{canonicalize, Violation};

/// Execution mode of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The cell-level sweep pipeline on the CPU (§IV-D).
    Sequential,
    /// Row-by-row edge kernels on the device (§IV-E).
    Parallel,
}

/// Which structure discovers candidate object pairs in the sequential
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairIndex {
    /// The top-down sweepline with an interval tree (§IV-D) — the
    /// paper's choice and the default.
    #[default]
    Sweepline,
    /// An STR-packed R-tree queried per object — the bounding-volume
    /// alternative the paper cites (§I), kept for the ablation.
    RTree,
}

/// Tuning knobs, including the ablation switches DESIGN.md calls out.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Enable hierarchical check-result reuse (§IV-C). Disabling it
    /// re-checks every instance — the pruning ablation.
    pub pruning: bool,
    /// Enable the adaptive row-based partition (§IV-B). Disabling it
    /// processes the whole layout as one row — the partition ablation.
    pub partition: bool,
    /// Row edge count at or below which the parallel mode uses the
    /// brute-force executor instead of the sweepline executor (§IV-E).
    pub sweep_threshold: usize,
    /// Candidate-pair discovery structure for the sequential mode.
    pub pair_index: PairIndex,
    /// Device attempts per failed work unit (row or rule) before the
    /// engine gives up on the device and recomputes on the host. Zero
    /// falls back immediately.
    pub max_device_retries: usize,
    /// Base delay of the capped exponential backoff between device
    /// retries, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Enable the cross-rule execution planner: one scene per layer
    /// per run, device-resident row buffers shared across rules, and
    /// concurrent multi-stream rule scheduling with deferred
    /// synchronization. Disabling it reproduces the strict per-rule
    /// loop (fresh scene and uploads per rule, synchronize between
    /// rules) — the planner ablation and the equivalence baseline.
    pub planner: bool,
    /// Fuse each rule's per-row uploads and kernel launches into a
    /// single batched stream dispatch (one worker wake per phase
    /// instead of one per command). Results and fault-injection
    /// ordinals are byte-identical either way; disabling it is the
    /// fusion ablation ([`EngineStats::launches_fused`]).
    pub fusion: bool,
    /// Replay the recorded per-row launch schedule of the first rule on
    /// a `(layer, partition)` for later rules sharing it, instead of
    /// re-deriving executor choices and launch geometry per rule.
    /// Effective only with the planner on; disabling it is the replay
    /// ablation ([`EngineStats::graph_replays`]).
    pub launch_graph: bool,
    /// Worker threads for the shared work-stealing host executor that
    /// fans out scene builds, partition assignment, row packing, the
    /// row-parallel sequential checks, and violation canonicalization.
    /// `None` (the default) sizes it to the host's available
    /// parallelism. The budget is shared with — not additive to — the
    /// device's kernel dispatch, and `Some(1)` runs the exact
    /// single-threaded code paths.
    pub host_threads: Option<usize>,
    /// An *external* extra-thread budget shared across engine runs —
    /// the multi-tenant generalization of the sizing handshake. A
    /// check server installs one process-wide [`ThreadGate`] here so
    /// every concurrent job's host fan-outs and device dispatches draw
    /// from a single permit pool instead of each run assuming it owns
    /// the machine. `None` (the default, and the single-run CLI case)
    /// keeps the per-run gate owned by the run's own executor.
    ///
    /// [`ThreadGate`]: odrc_infra::ThreadGate
    pub shared_gate: Option<std::sync::Arc<odrc_infra::ThreadGate>>,
    /// Hard byte budget for out-of-core shard residency. `Some` routes
    /// inter-object rules (space, enclosure, overlap) through the
    /// sharded host pipeline: per-shard scenes are built lazily behind
    /// an LRU pool charged against this budget, evicted scenes rebuild
    /// on demand, and a scene that alone exceeds the budget degrades to
    /// build-check-drop processing instead of aborting. `None` (the
    /// default) keeps the in-core pipeline.
    pub memory_budget: Option<u64>,
    /// Force out-of-core sharded checking even without a memory budget
    /// or explicit shard geometry (the `--out-of-core` CLI flag).
    /// Redundant when [`EngineOptions::memory_budget`],
    /// [`EngineOptions::shard_rows`], or
    /// [`EngineOptions::shard_slice`] is set — each implies it.
    pub out_of_core: bool,
    /// Partition rows per shard in out-of-core mode. `None` sizes
    /// shards to roughly [`crate::shard::DEFAULT_SHARDS`] per rule.
    /// `Some(_)` also *enables* out-of-core sharding by itself (with an
    /// unlimited residency budget), which is how the equivalence tests
    /// sweep shard geometry without memory pressure.
    pub shard_rows: Option<usize>,
    /// Worker slice `(worker, of)` of the multi-process out-of-core
    /// mode: this process checks only shards with `id % of == worker`
    /// (and whole rules with `index % of == worker`), journaling each
    /// completed unit. Sliced-away rules finish as
    /// [`RuleStatus::Interrupted`] — the parent process merges worker
    /// journals and restores everything, so a worker's own report is
    /// scaffolding, not a result.
    pub shard_slice: Option<(usize, usize)>,
    /// Deterministic chaos switch: abort the process (as if SIGKILLed)
    /// right after the Nth shard of the run is journaled. Drives the
    /// kill/resume coverage of the out-of-core path.
    pub chaos_kill_at_shard: Option<u64>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            pruning: true,
            partition: true,
            sweep_threshold: 512,
            pair_index: PairIndex::default(),
            max_device_retries: 2,
            retry_backoff_ms: 1,
            planner: true,
            fusion: true,
            launch_graph: true,
            host_threads: None,
            shared_gate: None,
            memory_budget: None,
            out_of_core: false,
            shard_rows: None,
            shard_slice: None,
            chaos_kill_at_shard: None,
        }
    }
}

impl EngineOptions {
    /// The effective host-executor thread count: the explicit setting,
    /// or the host's available parallelism.
    pub fn resolved_host_threads(&self) -> usize {
        self.host_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// How one rule of the deck fared in a (possibly interrupted) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleStatus {
    /// The rule ran to completion this run.
    Completed,
    /// The rule was restored from a checkpoint journal without
    /// re-checking.
    Resumed,
    /// The run was cancelled before the rule finished; it contributed
    /// **no** violations (partial results are discarded so a resumed
    /// run stays byte-identical to an uninterrupted one).
    Interrupted,
}

impl std::fmt::Display for RuleStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RuleStatus::Completed => "completed",
            RuleStatus::Resumed => "resumed",
            RuleStatus::Interrupted => "interrupted",
        })
    }
}

/// Work accounting for a check run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Checks actually executed (cell-level units for intra rules,
    /// emitted records for device space kernels).
    pub checks_computed: usize,
    /// Checks answered from the hierarchy memo instead of running
    /// (§IV-C).
    pub checks_reused: usize,
    /// Candidate object pairs produced by the sweepline.
    pub candidate_pairs: usize,
    /// Rows produced by the adaptive partition, summed over rules.
    pub rows: usize,
    /// Device re-attempts after transient faults (fresh-stream retries).
    pub device_retries: usize,
    /// Work units recomputed on the host after the device gave up.
    pub device_fallbacks: usize,
    /// Full layer scenes built this run (windowed delta scenes are not
    /// counted — they are rule-specific by construction).
    pub scenes_built: usize,
    /// Scene requests answered by the planner's per-run memo.
    pub scenes_reused: usize,
    /// Host→device uploads skipped because the data was already
    /// device-resident (the planner's buffer cache).
    pub uploads_elided: usize,
    /// Bytes actually moved host→device through the planner's shared
    /// upload path (shallow sizes at the upload call sites).
    pub bytes_uploaded: u64,
    /// Tasks executed by the host executor (zero when it ran serially —
    /// the single-threaded code paths never fan out).
    pub host_tasks: u64,
    /// Successful work steals between host-executor workers.
    pub host_steals: u64,
    /// Rules that ran to completion this run.
    pub rules_completed: usize,
    /// Rules restored from a checkpoint journal instead of re-running.
    pub rules_resumed: usize,
    /// Rules the run was cancelled out of (they contributed nothing).
    pub rules_interrupted: usize,
    /// Stream commands that rode a fused batch dispatch instead of an
    /// individual submit (device-counter delta over this run).
    pub launches_fused: u64,
    /// Spacing rules that replayed another rule's recorded launch
    /// graph instead of re-deriving their row schedule.
    pub graph_replays: usize,
    /// Times a persistent pool worker woke to take dispatch chunks
    /// (device-counter delta over this run).
    pub worker_wakeups: u64,
    /// `(rule, shard)` units checked by the out-of-core path this run.
    pub shards_checked: usize,
    /// Shard scenes built (cache misses of the shard pool).
    pub shards_built: usize,
    /// Resident shard scenes evicted LRU-first to respect the memory
    /// budget.
    pub shards_evicted: usize,
    /// `(rule, shard)` units restored from the checkpoint journal
    /// instead of re-checked.
    pub shards_resumed: usize,
    /// Shard loads degraded to build-check-drop (oversized for the
    /// budget, or a seeded allocation failure) instead of aborting.
    pub shards_degraded: usize,
}

impl EngineStats {
    /// `true` if any device work was retried or recomputed on the host
    /// — the run completed, but not entirely on the fast path.
    pub fn degraded(&self) -> bool {
        self.device_retries > 0 || self.device_fallbacks > 0
    }
}

/// The result of [`Engine::check`].
#[derive(Debug)]
pub struct CheckReport {
    /// All violations, canonicalized (sorted, deduplicated).
    pub violations: Vec<Violation>,
    /// Wall-clock per pipeline phase (drives the Fig. 4 breakdown).
    pub profile: Profiler,
    /// Work accounting.
    pub stats: EngineStats,
    /// `Some(reason)` when the run was cancelled (signal or deadline)
    /// before every rule finished. [`CheckReport::violations`] then
    /// covers only the rules marked [`RuleStatus::Completed`] or
    /// [`RuleStatus::Resumed`].
    pub interrupted: Option<CancelReason>,
    /// Per-rule completion status, in deck order.
    pub rule_status: Vec<(String, RuleStatus)>,
}

impl CheckReport {
    /// Violations of one rule.
    pub fn violations_of<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Violation> + 'a {
        self.violations.iter().filter(move |v| v.rule == rule)
    }
}

/// A per-rule progress observer: called with the rule's name and its
/// new [`RuleStatus`] as the run finalizes (or restores) each rule.
/// Invoked from the engine's single control thread, in completion
/// order; a long-running deck streams progress instead of going dark
/// until the report. Used by `odrc serve` to push `rule` events to
/// clients while their job runs.
pub type ProgressFn = std::sync::Arc<dyn Fn(&str, RuleStatus) + Send + Sync>;

/// The OpenDRC engine.
///
/// # Examples
///
/// ```
/// use odrc::{rules::rule, Engine, RuleDeck};
/// use odrc_layoutgen::{generate_layout, tech, DesignSpec};
///
/// let layout = generate_layout(&DesignSpec::tiny(1));
/// let deck = RuleDeck::new(vec![
///     rule().layer(tech::M2).width().greater_than(tech::M2_WIDTH).named("M2.W.1"),
///     rule().layer(tech::M2).space().greater_than(tech::M2_SPACE).named("M2.S.1"),
/// ]);
/// let report = Engine::sequential().check(&layout, &deck);
/// assert!(report.violations.iter().all(|v| v.rule.starts_with("M2")));
/// ```
pub struct Engine {
    pub(crate) mode: Mode,
    pub(crate) options: EngineOptions,
    pub(crate) device: Device,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) progress: Option<ProgressFn>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("mode", &self.mode)
            .field("options", &self.options)
            .field("device", &self.device)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::sequential()
    }
}

impl Engine {
    /// A sequential-mode engine.
    pub fn sequential() -> Engine {
        Engine {
            mode: Mode::Sequential,
            options: EngineOptions::default(),
            device: Device::new(1),
            cancel: None,
            progress: None,
        }
    }

    /// A parallel-mode engine on a default-sized device.
    pub fn parallel() -> Engine {
        Engine::parallel_on(Device::default())
    }

    /// A parallel-mode engine on a specific device.
    pub fn parallel_on(device: Device) -> Engine {
        Engine {
            mode: Mode::Parallel,
            options: EngineOptions::default(),
            device,
            cancel: None,
            progress: None,
        }
    }

    /// Overrides the tuning options.
    #[must_use]
    pub fn with_options(mut self, options: EngineOptions) -> Engine {
        self.options = options;
        self
    }

    /// Attaches a cooperative [`CancelToken`]. While a check runs, the
    /// engine polls the token at every rule boundary (and the deferred
    /// recovery drain between units): once it trips — SIGINT/SIGTERM
    /// via [`odrc_infra::install_signal_handlers`], a wall-clock
    /// deadline, or an explicit [`CancelToken::cancel`] — the engine
    /// stops issuing new rules, drains in-flight device work, marks
    /// unfinished rules [`RuleStatus::Interrupted`], and returns a
    /// report with [`CheckReport::interrupted`] set.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Engine {
        self.cancel = Some(cancel);
        self
    }

    /// Installs (or with `None` clears) the cooperative cancel token in
    /// place — the long-lived-engine variant of [`Engine::with_cancel`].
    /// A server session keeps one engine across many jobs and swaps in
    /// each job's token before running it.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Installs (or with `None` clears) a per-rule [`ProgressFn`] in
    /// place. The callback fires on the control thread as each rule
    /// completes (or is restored from a journal), before the run's
    /// report exists.
    pub fn set_progress(&mut self, progress: Option<ProgressFn>) {
        self.progress = progress;
    }

    /// Builder form of [`Engine::set_progress`].
    #[must_use]
    pub fn with_progress(mut self, progress: ProgressFn) -> Engine {
        self.progress = Some(progress);
        self
    }

    /// The engine's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The engine's device (meaningful in parallel mode).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs every rule of the deck against the layout.
    ///
    /// Both modes produce the same canonical violation set; the
    /// integration tests assert this equivalence on every generated
    /// design.
    pub fn check(&self, layout: &Layout, deck: &RuleDeck) -> CheckReport {
        self.check_impl(layout, deck, None, None)
    }

    /// [`Engine::check`] with run-level resilience hooks: an optional
    /// persistent result cache (as in [`Engine::check_with_cache`]) and
    /// an optional [`CheckpointJournal`]. With a journal, each rule's
    /// canonical violations are appended as the rule completes, and
    /// rules the journal already holds (under the same layout/deck run
    /// key) are *restored* instead of re-checked — counted in
    /// [`EngineStats::rules_resumed`]. Combined with
    /// [`Engine::with_cancel`] this is the kill/resume path: an
    /// interrupted run's journal lets the next run pick up where it
    /// stopped, with a final violation set byte-identical to an
    /// uninterrupted run.
    pub fn check_resumable(
        &self,
        layout: &Layout,
        deck: &RuleDeck,
        cache: Option<&mut ResultCache>,
        journal: Option<&mut CheckpointJournal>,
    ) -> CheckReport {
        match cache {
            Some(cache) => {
                let keys = CacheKeys::compute(layout);
                self.check_impl(layout, deck, Some((cache, &keys)), journal)
            }
            None => self.check_impl(layout, deck, None, journal),
        }
    }

    /// Like [`Engine::check`], but backed by a persistent result cache:
    /// per-cell results keyed by structural content hashes (§IV-C,
    /// rekeyed so the memo survives edits and processes). The cache is
    /// consulted and updated in place; hits count as `checks_reused`.
    pub fn check_with_cache(
        &self,
        layout: &Layout,
        deck: &RuleDeck,
        cache: &mut ResultCache,
    ) -> CheckReport {
        let keys = CacheKeys::compute(layout);
        self.check_impl(layout, deck, Some((cache, &keys)), None)
    }

    /// [`Engine::check_with_cache`] with precomputed content keys —
    /// for callers (edit sessions) that already hashed the layout.
    /// `keys` must be [`CacheKeys::compute`] of this exact `layout`.
    pub fn check_with_cache_keyed(
        &self,
        layout: &Layout,
        keys: &CacheKeys,
        deck: &RuleDeck,
        cache: &mut ResultCache,
    ) -> CheckReport {
        self.check_impl(layout, deck, Some((cache, keys)), None)
    }

    pub(crate) fn check_impl(
        &self,
        layout: &Layout,
        deck: &RuleDeck,
        cache: Option<(&mut ResultCache, &CacheKeys)>,
        mut journal: Option<&mut CheckpointJournal>,
    ) -> CheckReport {
        let mut profiler = Profiler::new();
        let mut stats = EngineStats::default();
        let rules = deck.rules();
        // One buffer per rule so completed rules can be journaled (and
        // interrupted rules' partials discarded) independently.
        let mut per_rule: Vec<Vec<Violation>> = vec![Vec::new(); rules.len()];
        // Rules start Interrupted: every path that finishes a rule
        // upgrades it, so a cancelled run reports exactly the rules it
        // never finished without extra bookkeeping.
        let mut status = vec![RuleStatus::Interrupted; rules.len()];
        // Rules whose collect ran (parallel mode): they are candidates
        // for finalization once their deferred recovery units drain.
        let mut collected = vec![false; rules.len()];
        let mut interrupted: Option<CancelReason> = None;
        // Device counters are process-cumulative; deltas over the run
        // are what the report attributes to it.
        let fused_before = self.device.stats().launches_fused();
        let wakeups_before = self.device.stats().worker_wakeups();
        let violations;
        {
            let mut ctx = RunContext::new(layout, &self.options, &mut profiler, &mut stats);
            if let Some((cache, keys)) = cache {
                ctx = ctx.with_cache(CacheHandle { cache, keys });
            }
            // Restore rules the journal already holds for this exact
            // (layout, deck) run: they are never re-issued.
            if let Some(j) = journal.as_deref_mut() {
                for (ri, rule) in rules.iter().enumerate() {
                    if let Some(done) = rule_signature(rule).and_then(|sig| j.completed(sig)) {
                        per_rule[ri] = done.as_ref().clone();
                        status[ri] = RuleStatus::Resumed;
                        ctx.stats.rules_resumed += 1;
                        if let Some(cb) = &self.progress {
                            cb(&rule.name, RuleStatus::Resumed);
                        }
                    }
                }
            }
            // The pool-sizing handshake: while this run is live, kernel
            // dispatch draws its spawned threads from the host
            // executor's gate (None when the executor is serial, which
            // restores the ungated pre-existing pool).
            self.device.set_host_gate(ctx.host.gate());
            // The cancellation handshake: the device births poisoned
            // streams after the token trips (so stale retries fail
            // fast) and the host executor stops work-stealing (every
            // queued task still runs exactly once, keeping merges
            // deterministic).
            self.device.set_cancel(self.cancel.clone());
            ctx.host.set_cancel(self.cancel.clone());
            match self.mode {
                Mode::Sequential => {
                    for (ri, rule) in rules.iter().enumerate() {
                        if status[ri] == RuleStatus::Resumed {
                            continue;
                        }
                        let sharded = crate::shard::sharded_rule(&self.options, rule);
                        if !sharded && !crate::shard::whole_rule_assigned(&self.options, ri) {
                            // Another worker's rule: leave Interrupted.
                            continue;
                        }
                        poll_cancel(&self.cancel, &mut interrupted);
                        if interrupted.is_some() {
                            continue;
                        }
                        let run = if sharded {
                            crate::shard::check_rule_sharded(
                                &mut ctx,
                                &self.device,
                                rule,
                                &mut journal,
                                self.cancel.as_ref(),
                                &mut per_rule[ri],
                            )
                        } else {
                            self.run_sequential(&mut ctx, rule, &mut per_rule[ri]);
                            crate::shard::ShardRun::Done
                        };
                        if run == crate::shard::ShardRun::Done {
                            finalize_rule(
                                &mut ctx,
                                &mut journal,
                                &self.progress,
                                rule,
                                &mut per_rule[ri],
                                &mut status[ri],
                            );
                        }
                        // Partial (worker slice, or cancelled mid-rule):
                        // the rule stays Interrupted; its completed
                        // shards live in the journal, not the report.
                    }
                }
                Mode::Parallel => {
                    // Out-of-core sharded rules run the host-side shard
                    // pipeline in this mode too — the device row path
                    // assumes whole-layer resident scenes, which is the
                    // working set the budget exists to bound.
                    if crate::shard::out_of_core(&self.options) {
                        for (ri, rule) in rules.iter().enumerate() {
                            if status[ri] == RuleStatus::Resumed
                                || !crate::shard::sharded_rule(&self.options, rule)
                            {
                                continue;
                            }
                            poll_cancel(&self.cancel, &mut interrupted);
                            if interrupted.is_some() {
                                continue;
                            }
                            let run = crate::shard::check_rule_sharded(
                                &mut ctx,
                                &self.device,
                                rule,
                                &mut journal,
                                self.cancel.as_ref(),
                                &mut per_rule[ri],
                            );
                            if run == crate::shard::ShardRun::Done {
                                finalize_rule(
                                    &mut ctx,
                                    &mut journal,
                                    &self.progress,
                                    rule,
                                    &mut per_rule[ri],
                                    &mut status[ri],
                                );
                            }
                        }
                    }
                    // One stream per rule: stream errors are sticky, so
                    // a fault during one rule must not poison the rest
                    // of the deck (failed work is recovered per row
                    // inside each rule).
                    if self.options.planner {
                        // Planned: issue rules ahead of collection so
                        // independent device work overlaps across
                        // streams, with synchronization deferred to
                        // each rule's collect (§IV-E, §V-C). In-flight
                        // rules are bounded by the host's parallelism:
                        // past that point extra live streams only add
                        // contention (on a single-core host the window
                        // degrades to issue-ahead-by-one, keeping the
                        // scene/buffer sharing wins without
                        // oversubscription).
                        let plan = ctx
                            .profiler
                            .time("plan", || crate::plan::ExecutionPlan::build(deck));
                        let window = ctx.host.threads().clamp(2, 8);
                        let mut inflight: std::collections::VecDeque<(
                            usize,
                            parallel::InFlightRule,
                        )> = std::collections::VecDeque::with_capacity(window);
                        for &ri in &plan.order {
                            // Resumed, or already completed host-side by
                            // the out-of-core pre-pass.
                            if status[ri] != RuleStatus::Interrupted
                                || crate::shard::sharded_rule(&self.options, &rules[ri])
                                || !crate::shard::whole_rule_assigned(&self.options, ri)
                            {
                                continue;
                            }
                            // Cancellation stops *issuing*; whatever is
                            // already in flight is still collected below
                            // (drain, don't abandon, device work).
                            poll_cancel(&self.cancel, &mut interrupted);
                            if interrupted.is_some() {
                                continue;
                            }
                            if inflight.len() >= window {
                                let (ci, fl) = inflight.pop_front().expect("window is non-empty");
                                parallel::collect_rule(&mut ctx, fl, &mut per_rule[ci]);
                                collected[ci] = true;
                                maybe_finalize(
                                    &mut ctx,
                                    &mut journal,
                                    &self.progress,
                                    rules,
                                    ci,
                                    &mut per_rule,
                                    &mut status,
                                );
                            }
                            let stream = self.device.stream();
                            inflight.push_back((
                                ri,
                                parallel::issue_rule(&mut ctx, stream, &rules[ri]),
                            ));
                        }
                        for (ci, fl) in inflight {
                            parallel::collect_rule(&mut ctx, fl, &mut per_rule[ci]);
                            collected[ci] = true;
                            maybe_finalize(
                                &mut ctx,
                                &mut journal,
                                &self.progress,
                                rules,
                                ci,
                                &mut per_rule,
                                &mut status,
                            );
                        }
                    } else {
                        // Ablation / equivalence baseline: the strict
                        // per-rule loop with a synchronize between
                        // rules.
                        for (ri, rule) in rules.iter().enumerate() {
                            if status[ri] != RuleStatus::Interrupted
                                || crate::shard::sharded_rule(&self.options, rule)
                                || !crate::shard::whole_rule_assigned(&self.options, ri)
                            {
                                continue;
                            }
                            poll_cancel(&self.cancel, &mut interrupted);
                            if interrupted.is_some() {
                                continue;
                            }
                            let stream = self.device.stream();
                            let fl = parallel::issue_rule(&mut ctx, stream, rule);
                            parallel::collect_rule(&mut ctx, fl, &mut per_rule[ri]);
                            collected[ri] = true;
                            maybe_finalize(
                                &mut ctx,
                                &mut journal,
                                &self.progress,
                                rules,
                                ri,
                                &mut per_rule,
                                &mut status,
                            );
                        }
                    }
                    // Failed work units were deferred so healthy rules
                    // could keep draining; retry them (with backoff
                    // deadlines) or fall back to the host now. Under
                    // cancellation the queue is abandoned instead and
                    // the affected rules downgraded to Interrupted.
                    let by_name = rule_indices_by_name(rules);
                    let abandoned = {
                        let per_rule = &mut per_rule;
                        parallel::drain_recovery_routed(
                            &mut ctx,
                            &self.device,
                            self.cancel.as_ref(),
                            &mut |name, vs| {
                                if let Some(&ri) = by_name.get(name) {
                                    per_rule[ri].extend(vs);
                                }
                            },
                        )
                    };
                    if !abandoned.is_empty() {
                        poll_cancel(&self.cancel, &mut interrupted);
                    }
                    // Rules whose deferred recovery units all drained
                    // are now final: canonicalize and journal them.
                    // Abandoned rules stay Interrupted — their partial
                    // results are discarded below.
                    for (ri, rule) in rules.iter().enumerate() {
                        if collected[ri]
                            && status[ri] == RuleStatus::Interrupted
                            && !abandoned.iter().any(|n| n == &rule.name)
                        {
                            finalize_rule(
                                &mut ctx,
                                &mut journal,
                                &self.progress,
                                rule,
                                &mut per_rule[ri],
                                &mut status[ri],
                            );
                        }
                    }
                }
            }
            // A cancelled rule must contribute nothing: partial sets
            // would make an interrupted+resumed run diverge from an
            // uninterrupted one.
            for (ri, st) in status.iter().enumerate() {
                if *st == RuleStatus::Interrupted {
                    per_rule[ri].clear();
                }
            }
            ctx.stats.rules_interrupted = status
                .iter()
                .filter(|s| **s == RuleStatus::Interrupted)
                .count();
            violations = {
                let all: Vec<Violation> = per_rule.into_iter().flatten().collect();
                let host = std::sync::Arc::clone(&ctx.host);
                crate::violation::canonicalize_on(&host, all)
            };
            ctx.stats.host_tasks += ctx.host.tasks();
            ctx.stats.host_steals += ctx.host.steals();
            ctx.stats.launches_fused += self
                .device
                .stats()
                .launches_fused()
                .saturating_sub(fused_before);
            ctx.stats.worker_wakeups += self
                .device
                .stats()
                .worker_wakeups()
                .saturating_sub(wakeups_before);
            // Wall-clock-attributed device wait: cumulative kernel-wait
            // sums pipelined waits that cover the same physical seconds
            // (and can exceed wall time); the interval union cannot.
            let wall = interval_union(std::mem::take(&mut ctx.wait_spans));
            ctx.profiler.add("device-wait-wall", wall);
            ctx.host.drain_utilization_into(ctx.profiler);
            self.device.set_host_gate(None);
            self.device.set_cancel(None);
            ctx.host.set_cancel(None);
        }
        // Safety net: an abandoned drain can interrupt rules even when
        // every boundary poll passed beforehand; report it faithfully.
        if interrupted.is_none() && status.contains(&RuleStatus::Interrupted) {
            if let Some(tok) = &self.cancel {
                interrupted = tok.cancelled();
            }
        }
        CheckReport {
            violations,
            profile: profiler,
            stats,
            interrupted,
            rule_status: rules.iter().map(|r| r.name.clone()).zip(status).collect(),
        }
    }

    fn run_sequential(&self, ctx: &mut RunContext<'_>, rule: &Rule, out: &mut Vec<Violation>) {
        match &rule.kind {
            RuleKind::Space {
                layer,
                min,
                min_projection,
            } => {
                let spec = crate::checks::SpaceSpec {
                    min: *min,
                    min_projection: *min_projection,
                };
                let sig = crate::cache::rule_signature(rule);
                sequential::check_space_rule(ctx, &rule.name, *layer, spec, sig, out);
            }
            RuleKind::Enclosure { inner, outer, min } => {
                sequential::check_enclosure_rule(ctx, &rule.name, *inner, *outer, *min, None, out);
            }
            RuleKind::OverlapArea {
                inner,
                outer,
                min_area,
            } => {
                sequential::check_overlap_rule(
                    ctx, &rule.name, *inner, *outer, *min_area, None, out,
                );
            }
            _ => sequential::check_intra_rule(ctx, rule, out),
        }
    }
}

/// Total covered duration of a set of (possibly overlapping) spans:
/// sort by start, merge overlaps, sum the merged lengths.
fn interval_union(mut spans: Vec<(std::time::Instant, std::time::Instant)>) -> std::time::Duration {
    spans.sort_by_key(|&(start, _)| start);
    let mut total = std::time::Duration::ZERO;
    let mut current: Option<(std::time::Instant, std::time::Instant)> = None;
    for (start, end) in spans {
        match &mut current {
            Some((_, cur_end)) if start <= *cur_end => {
                if end > *cur_end {
                    *cur_end = end;
                }
            }
            _ => {
                if let Some((s, e)) = current.take() {
                    total += e.duration_since(s);
                }
                current = Some((start, end));
            }
        }
    }
    if let Some((s, e)) = current {
        total += e.duration_since(s);
    }
    total
}

/// Latches the first cancellation reason observed at a rule boundary.
/// Polling stops once a reason is recorded, so a token's deterministic
/// poll budget (used by the kill/resume tests) is consumed only while
/// the run is still live.
fn poll_cancel(cancel: &Option<CancelToken>, interrupted: &mut Option<CancelReason>) {
    if interrupted.is_none() {
        if let Some(tok) = cancel {
            *interrupted = tok.cancelled();
        }
    }
}

/// Marks one rule completed: canonicalizes its buffer in place, tallies
/// it, notifies the progress observer, and appends it to the checkpoint
/// journal (if any). A journal write failure disables checkpointing for
/// the rest of the run — a checkpoint is an accelerator, never a reason
/// to abort a check.
fn finalize_rule(
    ctx: &mut RunContext<'_>,
    journal: &mut Option<&mut CheckpointJournal>,
    progress: &Option<ProgressFn>,
    rule: &Rule,
    buf: &mut Vec<Violation>,
    status: &mut RuleStatus,
) {
    *buf = canonicalize(std::mem::take(buf));
    *status = RuleStatus::Completed;
    ctx.stats.rules_completed += 1;
    if let Some(cb) = progress {
        cb(&rule.name, RuleStatus::Completed);
    }
    if let Some(j) = journal.as_deref_mut() {
        if let Some(sig) = rule_signature(rule) {
            if let Err(e) = j.record(&rule.name, sig, buf) {
                eprintln!(
                    "odrc: warning: checkpoint journal write failed ({e}); checkpointing disabled"
                );
                *journal = None;
            }
        }
    }
}

/// Finalizes a just-collected rule unless it still has work parked in
/// the deferred recovery queue — those rules are finalized (or
/// abandoned) after the drain.
fn maybe_finalize(
    ctx: &mut RunContext<'_>,
    journal: &mut Option<&mut CheckpointJournal>,
    progress: &Option<ProgressFn>,
    rules: &[Rule],
    ri: usize,
    per_rule: &mut [Vec<Violation>],
    status: &mut [RuleStatus],
) {
    if !parallel::recovery_pending_for(ctx, &rules[ri].name) {
        finalize_rule(
            ctx,
            journal,
            progress,
            &rules[ri],
            &mut per_rule[ri],
            &mut status[ri],
        );
    }
}

/// Name → deck index, first occurrence winning, for routing recovered
/// violations and abandoned-rule names back to per-rule buffers.
fn rule_indices_by_name(rules: &[Rule]) -> std::collections::HashMap<&str, usize> {
    let mut map = std::collections::HashMap::new();
    for (ri, rule) in rules.iter().enumerate() {
        map.entry(rule.name.as_str()).or_insert(ri);
    }
    map
}
