//! Generic algorithm functors dispatched on the execution policy — the
//! Rust rendition of the paper's Listing 2.
//!
//! The C++ original declares one `sweepline` functor template and picks
//! the CPU or the CUDA body with `constexpr if` on the executor's type
//! traits. Here [`sweepline_overlaps`] is generic over
//! [`ExecutionPolicy`]; monomorphization specializes it per policy, so
//! the dispatch is equally static: the `E::IS_DEVICE` branch folds to a
//! constant in each instantiation.

use odrc_geometry::Rect;
use odrc_infra::sweep::sweep_overlaps;
use odrc_xpu::{ExecutionPolicy, LaunchConfig};

/// Reports all overlapping MBR pairs `(i, j)` with `i < j`, sorted —
/// on the CPU (interval-tree sweepline, §IV-D) or on the device (sorted
/// x-scan kernel, §IV-E) depending on the policy.
///
/// # Examples
///
/// ```
/// use odrc::exec::sweepline_overlaps;
/// use odrc_geometry::Rect;
/// use odrc_xpu::{Device, SequencedPolicy, StreamPolicy};
///
/// let rects = vec![
///     Rect::from_coords(0, 0, 10, 10),
///     Rect::from_coords(5, 5, 20, 20),
///     Rect::from_coords(100, 100, 110, 110),
/// ];
/// let cpu = sweepline_overlaps(&SequencedPolicy, &rects);
/// assert_eq!(cpu, vec![(0, 1)]);
///
/// let device = Device::new(2);
/// let stream = device.stream();
/// let gpu = sweepline_overlaps(&StreamPolicy::new(&stream), &rects);
/// assert_eq!(cpu, gpu);
/// ```
pub fn sweepline_overlaps<E: ExecutionPolicy>(exec: &E, rects: &[Rect]) -> Vec<(u32, u32)> {
    if E::IS_DEVICE {
        device_overlaps(exec, rects)
    } else {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        sweep_overlaps(rects, |a, b| pairs.push((a as u32, b as u32)));
        pairs.sort_unstable();
        pairs
    }
}

fn device_overlaps<E: ExecutionPolicy>(exec: &E, rects: &[Rect]) -> Vec<(u32, u32)> {
    let stream = exec.stream().expect("device policy carries a stream");
    let device = exec.device().expect("device policy carries a device");
    let n = rects.len();
    if n == 0 {
        return Vec::new();
    }
    // Sort by lo.x on the device, keeping original indices.
    let mut order: Vec<(Rect, u32)> = rects
        .iter()
        .copied()
        .zip(0..)
        .map(|(r, i)| (r, i as u32))
        .collect();
    odrc_xpu::sort::parallel_sort_by_key(device, &mut order, |&(r, i)| (r.lo().x, i));

    // One thread per rect: scan forward while the next rect can still
    // start inside this rect's x-extent.
    let dev_order = stream.upload(order);
    let out = stream.alloc::<Vec<(u32, u32)>>(n);
    let kernel_order = dev_order.clone();
    stream.launch_map(LaunchConfig::for_threads(n), &out, move |ctx, slot| {
        let order = kernel_order.read();
        let i = ctx.global_id();
        let (ri, oi) = order[i];
        for &(rj, oj) in order.iter().skip(i + 1) {
            if rj.lo().x > ri.hi().x {
                break;
            }
            if ri.overlaps(rj) {
                let (a, b) = if oi < oj { (oi, oj) } else { (oj, oi) };
                slot.push((a, b));
            }
        }
    });
    let per_thread = stream.download(&out).wait();
    let mut pairs: Vec<(u32, u32)> = per_thread.into_iter().flatten().collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrc_infra::sweep::brute_force_overlap_pairs;
    use odrc_xpu::{Device, SequencedPolicy, StreamPolicy};
    use proptest::prelude::*;

    fn r(x0: i32, y0: i32, x1: i32, y1: i32) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_input() {
        let device = Device::new(2);
        let stream = device.stream();
        assert!(sweepline_overlaps(&SequencedPolicy, &[]).is_empty());
        assert!(sweepline_overlaps(&StreamPolicy::new(&stream), &[]).is_empty());
    }

    #[test]
    fn policies_agree_on_fixed_case() {
        let rects = vec![
            r(0, 0, 10, 10),
            r(10, 10, 20, 20), // corner touch with 0
            r(5, 0, 8, 3),     // nested in 0
            r(50, 50, 60, 60),
        ];
        let device = Device::new(3);
        let stream = device.stream();
        let cpu = sweepline_overlaps(&SequencedPolicy, &rects);
        let gpu = sweepline_overlaps(&StreamPolicy::new(&stream), &rects);
        assert_eq!(cpu, gpu);
        assert_eq!(cpu, vec![(0, 1), (0, 2)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn policies_agree_on_random_rects(
            specs in proptest::collection::vec(
                (-100i32..100, -100i32..100, 0i32..50, 0i32..50), 0..60),
        ) {
            let rects: Vec<Rect> = specs.iter()
                .map(|&(x, y, w, h)| r(x, y, x + w, y + h))
                .collect();
            let device = Device::new(2);
            let stream = device.stream();
            let cpu = sweepline_overlaps(&SequencedPolicy, &rects);
            let gpu = sweepline_overlaps(&StreamPolicy::new(&stream), &rects);
            prop_assert_eq!(&cpu, &gpu);
            let brute: Vec<(u32, u32)> = brute_force_overlap_pairs(&rects)
                .into_iter()
                .map(|(a, b)| (a as u32, b as u32))
                .collect();
            prop_assert_eq!(cpu, brute);
        }
    }
}
