//! Design rule violations.

use std::fmt;

use odrc_geometry::Rect;

/// The family of rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// Interior distance between facing edges below the minimum.
    Width,
    /// Exterior distance between facing edges below the minimum.
    Space,
    /// Polygon area below the minimum.
    Area,
    /// Inner-layer shape not enclosed by the outer layer with margin.
    Enclosure,
    /// Overlap area with the other layer below the minimum.
    OverlapArea,
    /// Shape is not rectilinear.
    Rectilinear,
    /// A user-supplied `ensures` predicate failed.
    Ensures,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Width => "width",
            ViolationKind::Space => "space",
            ViolationKind::Area => "area",
            ViolationKind::Enclosure => "enclosure",
            ViolationKind::OverlapArea => "overlap-area",
            ViolationKind::Rectilinear => "rectilinear",
            ViolationKind::Ensures => "ensures",
        };
        f.write_str(s)
    }
}

/// One design rule violation.
///
/// Violations are value objects with a canonical total order, so the
/// result sets of different engines (sequential, parallel, baselines)
/// can be compared for exact equality — which the test suite does.
///
/// The meaning of [`Violation::measured`] depends on the kind:
///
/// * `Width` / `Space` — the **squared** Euclidean distance between the
///   offending edges, in dbu² (the engine never takes square roots;
///   rules are compared in squared space),
/// * `Area` — the polygon area in dbu²,
/// * `Enclosure` — the worst (smallest) margin in dbu, negative when
///   the inner shape pokes out of the outer layer entirely,
/// * `Rectilinear` / `Ensures` — zero.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Violation {
    /// Name of the violated rule (e.g. `"M2.S.1"`).
    pub rule: String,
    /// Rule family.
    pub kind: ViolationKind,
    /// Bounding box of the offense in top-level coordinates: the hull
    /// of the offending edge pair, or the polygon MBR for per-polygon
    /// rules.
    pub location: Rect,
    /// Measured value (see type-level docs for units per kind).
    pub measured: i64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) at {}: measured {}",
            self.rule, self.kind, self.location, self.measured
        )
    }
}

/// Sorts and deduplicates violations into canonical order.
///
/// Engines may discover the same offense through different traversals
/// (e.g. a notch found from both sides); canonicalization makes result
/// sets comparable.
pub fn canonicalize(mut violations: Vec<Violation>) -> Vec<Violation> {
    violations.sort_unstable();
    violations.dedup();
    violations
}

/// [`canonicalize`] with the sort fanned out on the host executor:
/// per-worker chunks sort in parallel, then a serial k-way merge and
/// dedup produce the canonical order. `Violation`'s order is total
/// (every field participates), so equal elements are indistinguishable
/// and the result is byte-identical to the serial sort for any thread
/// count.
pub fn canonicalize_on(
    host: &odrc_infra::HostExecutor,
    violations: Vec<Violation>,
) -> Vec<Violation> {
    const CHUNK: usize = 4096;
    if host.is_serial() || violations.len() <= CHUNK {
        return canonicalize(violations);
    }
    let n = violations.len();
    let chunks = host.threads().min(n.div_ceil(CHUNK));
    let per = n.div_ceil(chunks);
    let mut parts: Vec<Vec<Violation>> = Vec::with_capacity(chunks);
    let mut rest = violations;
    while rest.len() > per {
        let tail = rest.split_off(rest.len() - per);
        parts.push(tail);
    }
    parts.push(rest);
    let mut sorted = host.run("canonicalize", parts.len(), {
        let cells: Vec<std::sync::Mutex<Vec<Violation>>> =
            parts.into_iter().map(std::sync::Mutex::new).collect();
        move |i| {
            let mut part = std::mem::take(&mut *cells[i].lock().expect("chunk lock"));
            part.sort_unstable();
            part
        }
    });
    // Pairwise merges until one sorted run remains, then dedup.
    while sorted.len() > 1 {
        let b = sorted.pop().expect("len > 1");
        let a = sorted.pop().expect("len > 1");
        sorted.push(merge_sorted(a, b));
    }
    let mut out = sorted.pop().unwrap_or_default();
    out.dedup();
    out
}

fn merge_sorted(a: Vec<Violation>, b: Vec<Violation>) -> Vec<Violation> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.extend(ia.by_ref()),
            (None, _) => {
                out.extend(ib.by_ref());
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &str, x: i32) -> Violation {
        Violation {
            rule: rule.to_owned(),
            kind: ViolationKind::Space,
            location: Rect::from_coords(x, 0, x + 5, 5),
            measured: 100,
        }
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let out = canonicalize(vec![v("b", 10), v("a", 5), v("b", 10), v("a", 0)]);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parallel_canonicalize_matches_serial() {
        // Enough duplicates and collisions to exercise merge + dedup,
        // and enough elements to clear the parallel threshold.
        let raw: Vec<Violation> = (0..20_000)
            .map(|i| v(if i % 3 == 0 { "b" } else { "a" }, i % 101))
            .collect();
        let expected = canonicalize(raw.clone());
        for threads in [1, 2, 8] {
            let host = odrc_infra::HostExecutor::new(threads);
            assert_eq!(canonicalize_on(&host, raw.clone()), expected);
        }
    }

    #[test]
    fn display_is_informative() {
        let s = v("M2.S.1", 3).to_string();
        assert!(s.contains("M2.S.1"));
        assert!(s.contains("space"));
        assert!(s.contains("100"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ViolationKind::Width.to_string(), "width");
        assert_eq!(ViolationKind::Enclosure.to_string(), "enclosure");
    }
}
