//! Out-of-core sharded checking.
//!
//! A full-chip layout does not fit the engine's working set: the
//! in-core pipeline materializes a whole layer scene (every placement's
//! flattened subtree plus every top polygon) per touched layer, and the
//! failure mode under memory pressure is an OOM abort. This module
//! trades that cliff for graceful degradation:
//!
//! * the existing adaptive row partition (§IV-B) is the **shard key** —
//!   rows inflated by half the rule distance cannot interact, so a
//!   *shard* (a contiguous group of partition rows) can be checked
//!   against a scene holding only its member objects, and the union of
//!   per-shard violation sets canonicalizes to exactly the in-core
//!   result;
//! * shard scenes are built lazily behind a [`ShardPool`] with a hard
//!   byte budget and LRU eviction — evicted shards rebuild on demand,
//!   an oversized shard (or a seeded [`Fault::AllocFail`]) degrades to
//!   build-check-drop processing, and nothing ever aborts;
//! * each completed `(rule, shard)` unit is appended to the v3
//!   [`CheckpointJournal`], so a killed run — including a SIGKILL'd
//!   shard worker process — resumes *mid-rule*, re-running only the
//!   shards the journal is missing;
//! * a worker slice (`shard id % workers == worker`) lets the CLI fan
//!   shards out over separate processes whose only shared state is the
//!   journal directory: a crashed worker loses its in-flight shard and
//!   nothing else.
//!
//! [`Fault::AllocFail`]: odrc_xpu::Fault::AllocFail

use std::collections::HashMap;
use std::sync::Arc;

use odrc_db::{CellId, Layer};
use odrc_geometry::{Coord, Polygon, Rect};
use odrc_infra::partition::{partition_rows, partition_rows_on, Row, RowPartition};
use odrc_infra::sweep::sweep_overlaps;
use odrc_infra::CancelToken;
use odrc_xpu::Device;

use crate::cache::rule_signature;
use crate::checkpoint::CheckpointJournal;
use crate::checks::poly::{notch_space_violations, LocalViolation};
use crate::checks::{enclosure_margin, SpaceSpec};
use crate::engine::{EngineOptions, EngineStats, PairIndex};
use crate::rules::{Rule, RuleKind};
use crate::scene::{layer_object_mbrs, LayerScene, SceneSource};
use crate::sequential::{cell_internal_space, cross_space, RunContext};
use crate::violation::{canonicalize, Violation, ViolationKind};

/// Target shard count when [`EngineOptions::shard_rows`] is unset: the
/// partition's rows are grouped into at most this many shards.
pub const DEFAULT_SHARDS: usize = 16;

/// Whether the engine is running in out-of-core mode at all.
pub(crate) fn out_of_core(options: &EngineOptions) -> bool {
    options.out_of_core
        || options.memory_budget.is_some()
        || options.shard_rows.is_some()
        || options.shard_slice.is_some()
}

/// Whether `rule` takes the sharded host path under these options.
/// Inter-object rules shard by partition row; intra-polygon rules
/// (width, area, rectilinear, ensures) are per-cell already and run
/// whole, journaled at rule granularity.
pub(crate) fn sharded_rule(options: &EngineOptions, rule: &Rule) -> bool {
    out_of_core(options)
        && matches!(
            rule.kind,
            RuleKind::Space { .. } | RuleKind::Enclosure { .. } | RuleKind::OverlapArea { .. }
        )
}

/// Whether whole (non-sharded) rule `ri` belongs to this process under
/// the worker slice. Without a slice every rule is ours.
pub(crate) fn whole_rule_assigned(options: &EngineOptions, ri: usize) -> bool {
    match options.shard_slice {
        Some((worker, of)) if of > 0 => ri % of == worker,
        _ => true,
    }
}

/// How a sharded rule run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardRun {
    /// Every shard of the rule is accounted for (checked or restored):
    /// the rule is complete and may be finalized.
    Done,
    /// Some shards were skipped (worker slice) or the run was cancelled
    /// mid-rule: the rule must *not* be finalized. Completed shards are
    /// already in the journal; the partial in-memory buffer is
    /// discarded by the engine's interrupted-rule sweep.
    Partial,
}

/// The deterministic shard decomposition of one rule: the global object
/// MBRs (proto order) and the contiguous row groups.
pub(crate) struct ShardPlan {
    /// Object MBRs of the rule's primary layer, in proto order.
    pub mbrs: Vec<Rect>,
    /// The shards, in row order.
    pub shards: Vec<ShardSpec>,
}

/// One shard: a contiguous group of partition rows.
pub(crate) struct ShardSpec {
    /// The member lists of the shard's rows (global object indices).
    pub rows: Vec<Vec<usize>>,
    /// Sorted union of the row members. Rows partition the object set,
    /// so shard member lists are disjoint across shards.
    pub members: Vec<usize>,
}

/// Builds the shard plan for `(layer, min)`. The plan is a pure
/// function of the layout, the rule distance, and the partition/shard
/// options — two processes (or two runs) with the same inputs agree on
/// shard identities, which is what makes `(rule, shard)` journal
/// records portable across crashes and workers.
pub(crate) fn plan_shards(ctx: &mut RunContext<'_>, layer: Layer, min: i64) -> ShardPlan {
    let mbrs = layer_object_mbrs(ctx.layout, layer);
    let half = ((min + 1) / 2) as Coord;
    let host = Arc::clone(&ctx.host);
    let enabled = ctx.options.partition;
    let partition = ctx.profiler.time("partition", || {
        if enabled {
            partition_rows_on(&mbrs, half, &host)
        } else {
            // Ablation: a single row holding everything (one shard).
            let members: Vec<usize> = (0..mbrs.len()).collect();
            if members.is_empty() {
                partition_rows(&[], half)
            } else {
                let all = mbrs
                    .iter()
                    .copied()
                    .reduce(|a, b| a.hull(b))
                    .expect("non-empty");
                RowPartition::from_rows(vec![Row {
                    y: all.y_range(),
                    members,
                }])
            }
        }
    });
    ctx.stats.rows += partition.len();
    let rows = partition.rows();
    let per_shard = ctx
        .options
        .shard_rows
        .unwrap_or_else(|| rows.len().div_ceil(DEFAULT_SHARDS))
        .max(1);
    let shards = rows
        .chunks(per_shard)
        .map(|chunk| {
            let rows: Vec<Vec<usize>> = chunk.iter().map(|r| r.members.clone()).collect();
            let mut members: Vec<usize> = rows.iter().flatten().copied().collect();
            members.sort_unstable();
            ShardSpec { rows, members }
        })
        .collect();
    ShardPlan { mbrs, shards }
}

/// Identity of one cached shard scene. The member set behind a key is a
/// pure function of `(layer, min, shard)` via [`plan_shards`], so two
/// rules sharing the key share the resident scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SceneKey {
    /// The member-subset scene of a shard's own objects.
    Subset { layer: Layer, min: i64, shard: u32 },
    /// The outer-layer scene windowed to a shard's member extents (the
    /// enclosure/overlap candidate side).
    Window {
        inner: Layer,
        outer: Layer,
        min: i64,
        shard: u32,
    },
}

#[derive(Debug)]
struct Resident {
    scene: Arc<LayerScene>,
    bytes: u64,
    stamp: u64,
}

/// The shard residency cache: scenes built on demand, held under a hard
/// byte budget, evicted LRU-first when an insert would overflow it.
///
/// Budget exhaustion never aborts: a scene that alone exceeds the
/// budget (and a scene whose load trips a seeded
/// [`odrc_xpu::Fault::AllocFail`]) is still built and checked, just
/// never cached — the degrade-to-sequential path, counted in
/// [`EngineStats::shards_degraded`].
#[derive(Debug, Default)]
pub(crate) struct ShardPool {
    budget: Option<u64>,
    resident: HashMap<SceneKey, Resident>,
    bytes: u64,
    clock: u64,
}

impl ShardPool {
    pub fn new(budget: Option<u64>) -> ShardPool {
        ShardPool {
            budget,
            ..ShardPool::default()
        }
    }

    /// The scene for `key`: resident (LRU-touched), or built via
    /// `build` and cached if it fits the budget.
    pub fn get(
        &mut self,
        key: SceneKey,
        device: &Device,
        stats: &mut EngineStats,
        build: impl FnOnce() -> LayerScene,
    ) -> Arc<LayerScene> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(&key) {
            r.stamp = self.clock;
            return Arc::clone(&r.scene);
        }
        // Every shard *load* (cache miss) ticks the device's seeded
        // allocation-failure schedule; a hit degrades this load to
        // build-check-drop instead of failing it.
        let alloc_failed = device.fault_shard_load();
        let scene = Arc::new(build());
        stats.shards_built += 1;
        let cost = scene.approx_bytes();
        let oversized = self.budget.is_some_and(|b| cost > b);
        if alloc_failed || oversized {
            stats.shards_degraded += 1;
            return scene;
        }
        if let Some(budget) = self.budget {
            while self.bytes + cost > budget && !self.resident.is_empty() {
                let lru = self
                    .resident
                    .iter()
                    .min_by_key(|(_, r)| r.stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty");
                let evicted = self.resident.remove(&lru).expect("present");
                self.bytes -= evicted.bytes;
                stats.shards_evicted += 1;
            }
        }
        self.bytes += cost;
        self.resident.insert(
            key,
            Resident {
                scene: Arc::clone(&scene),
                bytes: cost,
                stamp: self.clock,
            },
        );
        scene
    }
}

/// Runs one sharded rule: plan, restore journaled shards, check the
/// missing ones (recording each as it completes), and extend `out` with
/// the union. Returns [`ShardRun::Partial`] when the worker slice
/// skipped shards or the run was cancelled mid-rule.
pub(crate) fn check_rule_sharded(
    ctx: &mut RunContext<'_>,
    device: &Device,
    rule: &Rule,
    journal: &mut Option<&mut CheckpointJournal>,
    cancel: Option<&CancelToken>,
    out: &mut Vec<Violation>,
) -> ShardRun {
    let (layer, plan_min) = match &rule.kind {
        RuleKind::Space { layer, min, .. } => (*layer, *min),
        RuleKind::Enclosure { inner, min, .. } => (*inner, *min),
        RuleKind::OverlapArea { inner, .. } => (*inner, 0),
        _ => unreachable!("only inter-object rules shard"),
    };
    let plan = plan_shards(ctx, layer, plan_min);
    if plan.shards.is_empty() {
        return ShardRun::Done;
    }
    let mut pool = std::mem::take(&mut ctx.shard_pool);
    let run = run_shards(ctx, &mut pool, device, rule, &plan, journal, cancel, out);
    ctx.shard_pool = pool;
    run
}

#[allow(clippy::too_many_arguments)]
fn run_shards(
    ctx: &mut RunContext<'_>,
    pool: &mut ShardPool,
    device: &Device,
    rule: &Rule,
    plan: &ShardPlan,
    journal: &mut Option<&mut CheckpointJournal>,
    cancel: Option<&CancelToken>,
    out: &mut Vec<Violation>,
) -> ShardRun {
    let shard_count = plan.shards.len() as u32;
    let sig = rule_signature(rule);
    let layout = ctx.layout;
    let host = Arc::clone(&ctx.host);
    let mut partial = false;
    for (sid, shard) in plan.shards.iter().enumerate() {
        let shard_id = sid as u32;
        if let Some((worker, of)) = ctx.options.shard_slice {
            if of > 0 && sid % of != worker {
                partial = true;
                continue;
            }
        }
        // Restore before polling: restores are free and a cancel must
        // not forfeit them.
        if let (Some(sig), Some(j)) = (sig, journal.as_deref_mut()) {
            if let Some(done) = j.completed_shard(sig, shard_count, shard_id) {
                out.extend(done.iter().cloned());
                ctx.stats.shards_resumed += 1;
                continue;
            }
        }
        if let Some(tok) = cancel {
            if tok.cancelled().is_some() {
                return ShardRun::Partial;
            }
        }
        let mut buf: Vec<Violation> = Vec::new();
        match &rule.kind {
            RuleKind::Space {
                layer,
                min,
                min_projection,
            } => {
                let spec = SpaceSpec {
                    min: *min,
                    min_projection: *min_projection,
                };
                let key = SceneKey::Subset {
                    layer: *layer,
                    min: *min,
                    shard: shard_id,
                };
                let (layer, members) = (*layer, &shard.members);
                let scene = pool.get(key, device, ctx.stats, || {
                    LayerScene::build_members_on(layout, layer, members, &host)
                });
                let mut hits: Vec<LocalViolation> = Vec::new();
                check_space_shard(
                    ctx,
                    &scene,
                    members,
                    &shard.rows,
                    &plan.mbrs,
                    spec,
                    &mut hits,
                );
                buf.extend(hits.into_iter().map(|v| Violation {
                    rule: rule.name.clone(),
                    kind: v.kind,
                    location: v.location,
                    measured: v.measured,
                }));
            }
            RuleKind::Enclosure { inner, outer, min } => {
                let (inner_scene, outer_scene) = shard_scene_pair(
                    pool, device, ctx.stats, &host, layout, plan, shard, shard_id, *inner, *outer,
                    *min,
                );
                let work = enclosure_work_scenes(ctx, &inner_scene, &outer_scene, *min);
                ctx.stats.checks_computed += work.len();
                let min = *min;
                ctx.profiler.time("enclosure-check", || {
                    for (poly, candidates) in &work {
                        let refs: Vec<&Polygon> = candidates.iter().collect();
                        let margin = enclosure_margin(poly.mbr(), &refs, min);
                        if margin < min {
                            buf.push(Violation {
                                rule: rule.name.clone(),
                                kind: ViolationKind::Enclosure,
                                location: poly.mbr(),
                                measured: margin,
                            });
                        }
                    }
                });
            }
            RuleKind::OverlapArea {
                inner,
                outer,
                min_area,
            } => {
                use odrc_infra::Region;
                let (inner_scene, outer_scene) = shard_scene_pair(
                    pool, device, ctx.stats, &host, layout, plan, shard, shard_id, *inner, *outer,
                    0,
                );
                let work = enclosure_work_scenes(ctx, &inner_scene, &outer_scene, 0);
                ctx.stats.checks_computed += work.len();
                let min_area = *min_area;
                ctx.profiler.time("overlap-check", || {
                    for (poly, candidates) in &work {
                        let inner_region = Region::from_polygons([poly]);
                        let outer_region = Region::from_polygons(candidates.iter());
                        let shared = inner_region.intersection(&outer_region).area();
                        if shared < min_area {
                            buf.push(Violation {
                                rule: rule.name.clone(),
                                kind: ViolationKind::OverlapArea,
                                location: poly.mbr(),
                                measured: shared,
                            });
                        }
                    }
                });
            }
            _ => unreachable!("only inter-object rules shard"),
        }
        // Canonicalize per shard so the journaled record (and therefore
        // a resumed run) is byte-stable; the rule-level finalize
        // re-canonicalizes the union.
        let vs = canonicalize(buf);
        ctx.stats.shards_checked += 1;
        if let (Some(sig), Some(j)) = (sig, journal.as_deref_mut()) {
            if let Err(e) = j.record_shard(&rule.name, sig, shard_count, shard_id, &vs) {
                eprintln!(
                    "odrc: warning: checkpoint journal write failed ({e}); checkpointing disabled"
                );
                *journal = None;
            }
        }
        // Deterministic chaos: die *after* the record hits the journal,
        // exactly like a SIGKILL between shards — the resume path must
        // pick up every shard completed so far and nothing else.
        if let Some(n) = ctx.options.chaos_kill_at_shard {
            if ctx.stats.shards_checked as u64 >= n {
                std::process::abort();
            }
        }
        out.extend(vs);
    }
    if partial {
        ShardRun::Partial
    } else {
        ShardRun::Done
    }
}

/// The (inner subset, outer windowed) scene pair of an enclosure-style
/// shard, both through the pool.
#[allow(clippy::too_many_arguments)]
fn shard_scene_pair(
    pool: &mut ShardPool,
    device: &Device,
    stats: &mut EngineStats,
    host: &Arc<odrc_infra::HostExecutor>,
    layout: &odrc_db::Layout,
    plan: &ShardPlan,
    shard: &ShardSpec,
    shard_id: u32,
    inner: Layer,
    outer: Layer,
    min: i64,
) -> (Arc<LayerScene>, Arc<LayerScene>) {
    let inner_scene = pool.get(
        SceneKey::Subset {
            layer: inner,
            min,
            shard: shard_id,
        },
        device,
        stats,
        || LayerScene::build_members_on(layout, inner, &shard.members, host),
    );
    // The outer side is windowed to the shard's row band plus the rule
    // margin. Members are a contiguous row group, so one hull rect
    // covers them; every outer object within the margin of any member
    // overlaps the inflated hull and survives the window — each inner
    // shape sees a superset of the candidates the per-poly gather
    // keeps, and the gather itself filters to the exact in-core set.
    let band = shard
        .members
        .iter()
        .map(|&g| plan.mbrs[g])
        .reduce(Rect::hull);
    let outer_scene = pool.get(
        SceneKey::Window {
            inner,
            outer,
            min,
            shard: shard_id,
        },
        device,
        stats,
        || match band {
            Some(b) => {
                let window = b.inflate((min as Coord).saturating_add(1));
                LayerScene::build_window_on(layout, outer, window, host)
            }
            None => LayerScene::build_members_on(layout, outer, &[], host),
        },
    );
    (inner_scene, outer_scene)
}

/// The serial spacing pipeline over one shard: the shard's global rows
/// replayed against its member-subset scene. Geometry, sweepline pairs,
/// and edge checks are exactly the in-core serial loop's — only the
/// object indices are translated from global (proto) to subset order —
/// so the shard's violation multiset equals the in-core multiset of the
/// same rows.
fn check_space_shard(
    ctx: &mut RunContext<'_>,
    scene: &LayerScene,
    members: &[usize],
    rows: &[Vec<usize>],
    mbrs: &[Rect],
    spec: SpaceSpec,
    out: &mut Vec<LocalViolation>,
) {
    let half = ((spec.min + 1) / 2) as Coord;
    let pruning = ctx.options.pruning;
    let pair_index = ctx.options.pair_index;
    let mut memo: HashMap<CellId, Arc<Vec<LocalViolation>>> = HashMap::new();
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    let subset = |g: usize| {
        members
            .binary_search(&g)
            .expect("row member is a shard member")
    };
    for row in rows {
        let inflated: Vec<Rect> = row.iter().map(|&m| mbrs[m].inflate(half)).collect();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        match pair_index {
            PairIndex::Sweepline => ctx.profiler.time("sweepline", || {
                sweep_overlaps(&inflated, |a, b| pairs.push((row[a], row[b])));
            }),
            PairIndex::RTree => ctx.profiler.time("sweepline", || {
                let tree = odrc_infra::RTree::bulk_load(&inflated);
                for (a, &ra) in inflated.iter().enumerate() {
                    tree.query_into(ra, &mut |b| {
                        if a < b {
                            pairs.push((row[a], row[b]));
                        }
                    });
                }
            }),
        }
        ctx.stats.candidate_pairs += pairs.len();
        ctx.profiler.time("edge-check", || {
            for &g in row {
                let obj = &scene.objects[subset(g)];
                match obj.source {
                    SceneSource::Cell { cell, transform } => {
                        let arc = if pruning {
                            if let Some(hit) = memo.get(&cell) {
                                ctx.stats.checks_reused += 1;
                                Arc::clone(hit)
                            } else {
                                ctx.stats.checks_computed += 1;
                                let arc = Arc::new(cell_internal_space(scene, cell, spec, half));
                                memo.insert(cell, Arc::clone(&arc));
                                arc
                            }
                        } else {
                            ctx.stats.checks_computed += 1;
                            Arc::new(cell_internal_space(scene, cell, spec, half))
                        };
                        out.extend(arc.iter().map(|v| v.instantiate(&transform)));
                    }
                    SceneSource::TopPolygon { index } => {
                        notch_space_violations(scene.top_polygon(index), spec, out);
                    }
                }
            }
            for &(a, b) in &pairs {
                cross_space(
                    scene,
                    &scene.objects[subset(a)],
                    &scene.objects[subset(b)],
                    spec,
                    &mut buf_a,
                    &mut buf_b,
                    out,
                );
            }
        });
    }
}

/// The enclosure work list over provided scenes — the serial gather of
/// [`crate::sequential::enclosure_work`] with the shard's subset inner
/// scene and windowed outer scene supplied instead of pulled from the
/// run memo. The per-poly candidate predicate (MBR overlap with the
/// margin-inflated inner extent) is identical, so candidate sets match
/// the in-core gather exactly.
fn enclosure_work_scenes(
    ctx: &mut RunContext<'_>,
    inner_scene: &LayerScene,
    outer_scene: &LayerScene,
    min: i64,
) -> Vec<(Polygon, Vec<Polygon>)> {
    let m = min as Coord;
    let mut inner_polys: Vec<Polygon> = Vec::new();
    for obj in &inner_scene.objects {
        inner_scene.object_polygons_into(obj, &mut inner_polys);
    }
    let n_inner = inner_polys.len();
    let mut rects: Vec<Rect> = inner_polys.iter().map(|p| p.mbr().inflate(m)).collect();
    rects.extend(outer_scene.objects.iter().map(|o| o.mbr));
    let mut object_hits: Vec<Vec<usize>> = vec![Vec::new(); n_inner];
    ctx.profiler.time("sweepline", || {
        sweep_overlaps(&rects, |a, b| {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo < n_inner && hi >= n_inner {
                object_hits[lo].push(hi - n_inner);
            }
        });
    });
    inner_polys
        .into_iter()
        .zip(object_hits)
        .map(|(poly, objs)| {
            let window = poly.mbr().inflate(m);
            let mut candidates = Vec::new();
            for oi in objs {
                outer_scene.object_polygons_in_into(
                    &outer_scene.objects[oi],
                    window,
                    &mut candidates,
                );
            }
            (poly, candidates)
        })
        .collect()
}
