#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 suite (ROADMAP.md).
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== fault-injection suite (seeded FaultPlan matrix)"
# The device fault paths and the engine's graceful-degradation
# machinery, including the 100-seed schedule matrix over the paper's
# uart and aes layouts (release mode keeps the matrix fast).
cargo test -q --release -p odrc-xpu --test faults
cargo test -q --release -p odrc --test fault_injection

echo "== ci.sh: all green"
