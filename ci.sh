#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 suite (ROADMAP.md).
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== fault-injection suite (seeded FaultPlan matrix)"
# The device fault paths and the engine's graceful-degradation
# machinery, including the 100-seed schedule matrix over the paper's
# uart and aes layouts (release mode keeps the matrix fast).
cargo test -q --release -p odrc-xpu --test faults
cargo test -q --release -p odrc --test fault_injection

echo "== planner equivalence (fixed fault seeds)"
# The execution planner must report byte-identical violations to the
# per-rule loop, in both modes, with and without injected faults. The
# vendored proptest derives every case's seed from the test name, so
# the fault schedules exercised here are fixed run to run.
cargo test -q --release -p odrc --test plan_equivalence

echo "== host executor equivalence (thread-count matrix)"
# The work-stealing host executor must report byte-identical violations
# for every host_threads count, in both modes, planner on and off,
# and under seeded fault schedules.
cargo test -q --release -p odrc --test host_parallel_equivalence

echo "== dispatch equivalence (pool/fusion/graph matrix, 25 fault seeds)"
# The persistent-pool dispatch layer: pooled vs scoped workers, fused
# vs unfused launches, recorded vs replayed launch graphs — all
# byte-identical across modes, planner, and host thread counts, with
# fault ordinals preserved under seeded schedules.
cargo test -q --release -p odrc --test dispatch_equivalence

echo "== perf gate (kernel-wait + host scaling vs committed baseline)"
# Re-measures the aes parallel configurations against the committed
# BENCH_pipeline.json: fails on a kernel-wait regression beyond 25%
# (+10ms grace) or 2-thread host scaling below 0.95x of serial.
# min-of-5 repeats: the gate compares minima, and 3 repeats has been
# observed to let a single noisy scheduling window trip the limit.
cargo run -q --release -p odrc-bench --bin pipeline -- --gate BENCH_pipeline.json --repeat 5

echo "== pipeline bench smoke run"
# The planner benchmark on the small uart design: asserts all four
# (mode, planner) configurations agree and exercises the JSON emitter.
# Runs from target/ so the committed aes/jpeg BENCH_pipeline.json
# record is not clobbered by the smoke design.
(cd target && cargo run -q --release -p odrc-bench --bin pipeline -- --designs uart --json)

echo "== host-threads smoke run"
# The same smoke deck with the host fan-out forced on: asserts the
# four configurations still agree with two host worker threads.
(cd target && cargo run -q --release -p odrc-bench --bin pipeline -- --designs uart --host-threads 2)

echo "== kill/resume smoke (tiny --deadline, then --resume to completion)"
# Run lifecycle end to end at the CLI level: a sub-millisecond deadline
# deterministically interrupts the run (exit 4) and leaves a loadable
# checkpoint; a --resume run finishes the check (exit 1: the generated
# layout has violations) and completes the journal; a second --resume
# then restores every signable rule and must report byte-identically.
rm -rf target/ci-resume
mkdir -p target/ci-resume
./target/release/odrc-genlayout aes target/ci-resume/aes.gds
cat > target/ci-resume/beol.rules <<'EOF'
width     layer=19 min=18   name=M1.W.1
space     layer=20 min=20   name=M2.S.1
area      layer=19 min=1400 name=M1.A.1
enclosure inner=30 outer=19 min=4 name=V1.M1.EN.1
rectilinear
EOF
status=0
./target/release/odrc target/ci-resume/aes.gds \
    --rules target/ci-resume/beol.rules --parallel \
    --deadline 0.001 --checkpoint-dir target/ci-resume/ckpt \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 4 ] || { echo "expected exit 4 from deadline run, got $status"; exit 1; }
[ -f target/ci-resume/ckpt/odrc-journal.bin ] || { echo "no checkpoint journal written"; exit 1; }
status=0
./target/release/odrc target/ci-resume/aes.gds \
    --rules target/ci-resume/beol.rules --parallel \
    --resume target/ci-resume/ckpt --report target/ci-resume/first.csv \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from resumed run, got $status"; exit 1; }
status=0
./target/release/odrc target/ci-resume/aes.gds \
    --rules target/ci-resume/beol.rules --parallel \
    --resume target/ci-resume/ckpt --report target/ci-resume/second.csv \
    --stats-json target/ci-resume/second.json \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from second resume, got $status"; exit 1; }
if grep -q '"rules_resumed": 0,' target/ci-resume/second.json; then
    echo "second resume restored no rules from the completed journal"
    exit 1
fi
cmp target/ci-resume/first.csv target/ci-resume/second.csv \
    || { echo "resumed reports differ"; exit 1; }

echo "== serve smoke (daemon, concurrent clients, shared cache tier, SIGTERM drain)"
# The multi-tenant service end to end at the CLI level: a daemon on an
# ephemeral port serves two truly concurrent uart clients (both cold),
# then a third warm client that must be fed from the shared cache tier
# the first pair populated — all three reports byte-identical — and
# finally drains cleanly on SIGTERM.
rm -rf target/ci-serve
mkdir -p target/ci-serve
./target/release/odrc-genlayout uart target/ci-serve/uart.gds
./target/release/odrc serve --addr 127.0.0.1:0 --workers 2 --host-threads 2 \
    --cache target/ci-serve/cache --port-file target/ci-serve/port &
serve_pid=$!
tries=0
while [ ! -s target/ci-serve/port ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "daemon never wrote its port file"; exit 1; }
    sleep 0.1
done
addr=$(cat target/ci-serve/port)
./target/release/odrc client target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --addr "$addr" \
    --report target/ci-serve/cold-a.csv >/dev/null 2>&1 &
cold_a=$!
./target/release/odrc client target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --addr "$addr" \
    --report target/ci-serve/cold-b.csv >/dev/null 2>&1 &
cold_b=$!
status=0; wait "$cold_a" || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from cold client a, got $status"; exit 1; }
status=0; wait "$cold_b" || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from cold client b, got $status"; exit 1; }
cmp target/ci-serve/cold-a.csv target/ci-serve/cold-b.csv \
    || { echo "concurrent clients reported different violations"; exit 1; }
status=0
./target/release/odrc client target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --addr "$addr" \
    --report target/ci-serve/warm.csv --stats-json target/ci-serve/warm.json \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from warm client, got $status"; exit 1; }
cmp target/ci-serve/cold-a.csv target/ci-serve/warm.csv \
    || { echo "cache-served report differs from the cold run"; exit 1; }
if grep -q '"cache_hits_shared":0[,}]' target/ci-serve/warm.json; then
    echo "warm client saw no shared cache hits"
    exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon did not drain cleanly on SIGTERM"; exit 1; }
[ -f target/ci-serve/cache/odrc-cache.bin ] \
    || { echo "drained daemon did not persist its cache tier"; exit 1; }

echo "== chaos smoke (kill -9 mid-run, restart, idempotent resubmit, rule-boundary resume)"
# Crash-safe serving end to end: a daemon armed to die at a rule
# boundary takes a keyed job and is killed mid-run; a restarted daemon
# on the same checkpoint and cache directories re-admits the job from
# its journal, resumes past the already-checkpointed rules, and the
# resubmitted key yields a report byte-identical to a one-shot run
# with the original exit code.
rm -rf target/ci-chaos
mkdir -p target/ci-chaos
status=0
./target/release/odrc target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --report target/ci-chaos/oneshot.csv \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from one-shot baseline, got $status"; exit 1; }
./target/release/odrc serve --addr 127.0.0.1:0 --workers 2 --host-threads 2 \
    --cache target/ci-chaos/cache --checkpoint-dir target/ci-chaos/ckpt \
    --chaos-kill-at-rule 2 --port-file target/ci-chaos/port >/dev/null 2>&1 &
serve_pid=$!
tries=0
while [ ! -s target/ci-chaos/port ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "chaos daemon never wrote its port file"; exit 1; }
    sleep 0.1
done
addr=$(cat target/ci-chaos/port)
# The daemon aborts (SIGKILL-equivalent) at the second rule boundary;
# the client's submission fails, but the admission and two rules'
# checkpoints are already on disk.
./target/release/odrc client target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --addr "$addr" \
    --key ci-chaos-1 >/dev/null 2>&1 || true
wait "$serve_pid" 2>/dev/null || true
[ -f target/ci-chaos/ckpt/odrc-jobs.bin ] \
    || { echo "killed daemon left no job journal"; exit 1; }
rm -f target/ci-chaos/port
./target/release/odrc serve --addr 127.0.0.1:0 --workers 2 --host-threads 2 \
    --cache target/ci-chaos/cache --checkpoint-dir target/ci-chaos/ckpt \
    --port-file target/ci-chaos/port >/dev/null 2>&1 &
serve_pid=$!
tries=0
while [ ! -s target/ci-chaos/port ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "restarted daemon never wrote its port file"; exit 1; }
    sleep 0.1
done
addr=$(cat target/ci-chaos/port)
status=0
./target/release/odrc client target/ci-serve/uart.gds \
    --rules target/ci-resume/beol.rules --addr "$addr" \
    --key ci-chaos-1 --retries 5 --backoff-ms 100 \
    --report target/ci-chaos/resumed.csv --stats-json target/ci-chaos/resumed.json \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from resubmitted key, got $status"; exit 1; }
cmp target/ci-chaos/oneshot.csv target/ci-chaos/resumed.csv \
    || { echo "post-crash report differs from the one-shot run"; exit 1; }
if grep -q '"rules_resumed":0[,}]' target/ci-chaos/resumed.json; then
    echo "restarted daemon resumed no rules from the checkpoint"
    exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "restarted daemon did not drain cleanly"; exit 1; }

echo "== out-of-core smoke (scaled chip, quarter-RSS budget, worker kill + resume)"
# Out-of-core checking end to end at the CLI level on a multi-million-
# polygon chip generated on demand (never checked in): the unbudgeted
# in-core run's observed peak-RSS sets a shard budget of one quarter of
# it, which must force LRU eviction; then the same check runs across
# two crash-isolated shard worker processes with worker 0 chaos-killed
# mid-rule — it must be re-admitted and resume from its (rule, shard)
# journal. Both out-of-core reports must be byte-identical to the
# in-core run. (The budget bounds shard-scene residency; whole-process
# RSS additionally carries the layout itself, so the smoke asserts
# eviction pressure, not an absolute RSS ceiling.)
rm -rf target/ci-ooc
mkdir -p target/ci-ooc
./target/release/odrc-genlayout jpeg target/ci-ooc/chip.gds --scale 20
cat > target/ci-ooc/ooc.rules <<'EOF'
space layer=19 min=18 name=M1.S.1
space layer=19 min=36 projection=100 name=M1.S.2
space layer=20 min=20 name=M2.S.1
enclosure inner=30 outer=19 min=4 name=V1.M1.EN.1
enclosure inner=31 outer=20 min=6 name=V2.M2.EN.1
EOF
status=0
./target/release/odrc target/ci-ooc/chip.gds --rules target/ci-ooc/ooc.rules \
    --report target/ci-ooc/incore.csv --stats-json target/ci-ooc/incore.json \
    --max-print 0 >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from in-core run, got $status"; exit 1; }
peak=$(sed -n 's/.*"peak_rss_bytes": \([0-9][0-9]*\).*/\1/p' target/ci-ooc/incore.json)
[ -n "$peak" ] || { echo "in-core run recorded no peak_rss_bytes"; exit 1; }
budget=$((peak / 4))
status=0
./target/release/odrc target/ci-ooc/chip.gds --rules target/ci-ooc/ooc.rules \
    --memory-budget "$budget" \
    --report target/ci-ooc/budgeted.csv --stats-json target/ci-ooc/budgeted.json \
    --max-print 0 >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from budgeted run, got $status"; exit 1; }
if grep -q '"shards_evicted": 0,' target/ci-ooc/budgeted.json; then
    echo "quarter-RSS budget ($budget bytes) forced no shard eviction"
    exit 1
fi
cmp target/ci-ooc/incore.csv target/ci-ooc/budgeted.csv \
    || { echo "budgeted report differs from the in-core run"; exit 1; }
status=0
./target/release/odrc target/ci-ooc/chip.gds --rules target/ci-ooc/ooc.rules \
    --memory-budget "$budget" --shard-workers 2 --chaos-kill-at-shard 5 \
    --report target/ci-ooc/workers.csv --stats-json target/ci-ooc/workers.json \
    --max-print 0 >target/ci-ooc/workers.log 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "expected exit 1 from shard-worker run, got $status"; exit 1; }
grep -q "re-admitting" target/ci-ooc/workers.log \
    || { echo "chaos-killed shard worker was never re-admitted"; exit 1; }
if grep -q '"shards_resumed": 0,' target/ci-ooc/workers.json; then
    echo "re-admitted worker resumed no shards from its journal"
    exit 1
fi
cmp target/ci-ooc/incore.csv target/ci-ooc/workers.csv \
    || { echo "post-kill shard-worker report differs from the in-core run"; exit 1; }

echo "== ci.sh: all green"
