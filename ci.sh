#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 suite (ROADMAP.md).
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== ci.sh: all green"
