#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 suite (ROADMAP.md).
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== fault-injection suite (seeded FaultPlan matrix)"
# The device fault paths and the engine's graceful-degradation
# machinery, including the 100-seed schedule matrix over the paper's
# uart and aes layouts (release mode keeps the matrix fast).
cargo test -q --release -p odrc-xpu --test faults
cargo test -q --release -p odrc --test fault_injection

echo "== planner equivalence (fixed fault seeds)"
# The execution planner must report byte-identical violations to the
# per-rule loop, in both modes, with and without injected faults. The
# vendored proptest derives every case's seed from the test name, so
# the fault schedules exercised here are fixed run to run.
cargo test -q --release -p odrc --test plan_equivalence

echo "== host executor equivalence (thread-count matrix)"
# The work-stealing host executor must report byte-identical violations
# for every host_threads count, in both modes, planner on and off,
# and under seeded fault schedules.
cargo test -q --release -p odrc --test host_parallel_equivalence

echo "== pipeline bench smoke run"
# The planner benchmark on the small uart design: asserts all four
# (mode, planner) configurations agree and exercises the JSON emitter.
# Runs from target/ so the committed aes/jpeg BENCH_pipeline.json
# record is not clobbered by the smoke design.
(cd target && cargo run -q --release -p odrc-bench --bin pipeline -- --designs uart --json)

echo "== host-threads smoke run"
# The same smoke deck with the host fan-out forced on: asserts the
# four configurations still agree with two host worker threads.
(cd target && cargo run -q --release -p odrc-bench --bin pipeline -- --designs uart --host-threads 2)

echo "== ci.sh: all green"
