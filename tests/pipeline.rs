//! End-to-end workspace integration: generator → GDSII stream → parser
//! → layout database → every checker, asserting cross-engine agreement
//! and detection of injected violations.

use odrc::{rule, Engine, RuleDeck, ViolationKind};
use odrc_baselines::{Checker, DeepChecker, FlatChecker, TilingChecker, XCheck};
use odrc_db::Layout;
use odrc_layoutgen::{generate, tech, DesignSpec};
use odrc_xpu::Device;

fn full_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M3)
            .width()
            .greater_than(tech::M3_WIDTH)
            .named("M3.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M1)
            .greater_than(tech::V1_M1_ENCLOSURE)
            .named("V1.M1.EN.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M2)
            .greater_than(tech::V2_M2_ENCLOSURE)
            .named("V2.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M3)
            .greater_than(tech::V2_M3_ENCLOSURE)
            .named("V2.M3.EN.1"),
    ])
}

/// The full pipeline including a binary GDSII round-trip.
#[test]
fn six_checkers_agree_end_to_end() {
    let design = generate(&DesignSpec::tiny(777));
    // Round-trip through the stream format: what the engines check is
    // exactly what a file on disk would contain.
    let bytes = odrc_gdsii::write(&design.library).expect("serialize");
    let lib = odrc_gdsii::read(&bytes).expect("parse");
    assert_eq!(lib, design.library);
    let layout = Layout::from_library(&lib).expect("import");

    let deck = full_deck();
    let reference = Engine::sequential().check(&layout, &deck);
    assert!(
        !reference.violations.is_empty(),
        "tiny design with default injection should violate something"
    );

    let parallel = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    assert_eq!(reference.violations, parallel.violations, "parallel mode");

    let checkers: Vec<Box<dyn Checker>> = vec![
        Box::new(FlatChecker::new()),
        Box::new(DeepChecker::new()),
        Box::new(TilingChecker::new(5, 2)),
    ];
    for c in &checkers {
        let r = c.check(&layout, &deck);
        assert_eq!(reference.violations, r.violations, "{}", c.name());
    }

    // X-Check skips the area rule; compare modulo that rule.
    let x = XCheck::new(Device::new(2)).check(&layout, &deck);
    assert_eq!(x.skipped, vec!["M1.A.1".to_owned()]);
    let non_area: Vec<_> = reference
        .violations
        .iter()
        .filter(|v| v.kind != ViolationKind::Area)
        .cloned()
        .collect();
    assert_eq!(non_area, x.violations, "x-check modulo area");
}

#[test]
fn paper_design_smoke_uart() {
    // The smallest paper design runs the full deck through both modes.
    let spec = DesignSpec::paper("uart").expect("uart exists");
    let layout = odrc_layoutgen::generate_layout(&spec);
    let deck = full_deck();
    let seq = Engine::sequential().check(&layout, &deck);
    let par = Engine::parallel_on(Device::new(2)).check(&layout, &deck);
    assert_eq!(seq.violations, par.violations);
    // Injection rate 2% on a real-sized design must produce findings.
    assert!(seq.violations.len() > 10, "found {}", seq.violations.len());
    // Hierarchy reuse must be substantial: thousands of placements,
    // nine cell definitions.
    assert!(seq.stats.checks_reused > seq.stats.checks_computed);
}

#[test]
fn injected_counts_are_lower_bounds() {
    let mut spec = DesignSpec::tiny(4242);
    spec.violation_rate = 0.3;
    let design = generate(&spec);
    let layout = Layout::from_library(&design.library).expect("import");
    let report = Engine::sequential().check(&layout, &full_deck());
    let count = |k: ViolationKind| report.violations.iter().filter(|v| v.kind == k).count();
    assert!(count(ViolationKind::Width) >= design.stats.width);
    assert!(count(ViolationKind::Space) >= design.stats.space);
    assert!(count(ViolationKind::Area) >= design.stats.area);
    assert!(count(ViolationKind::Enclosure) >= design.stats.enclosure);
}

#[test]
fn clean_paper_design_is_clean() {
    let mut spec = DesignSpec::paper("uart").expect("uart exists");
    spec.violation_rate = 0.0;
    let layout = odrc_layoutgen::generate_layout(&spec);
    let report = Engine::sequential().check(&layout, &full_deck());
    assert_eq!(
        report.violations,
        vec![],
        "clean design must pass the full deck"
    );
}
