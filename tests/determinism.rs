//! Determinism and stability guarantees across the whole stack.

use odrc::{rule, Engine, RuleDeck};
use odrc_db::Layout;
use odrc_layoutgen::{generate, tech, DesignSpec};
use odrc_xpu::Device;

fn deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
    ])
}

#[test]
fn generation_and_streams_are_bit_stable() {
    let spec = DesignSpec::tiny(99);
    let a = odrc_gdsii::write(&generate(&spec).library).expect("write");
    let b = odrc_gdsii::write(&generate(&spec).library).expect("write");
    assert_eq!(a, b, "generated GDSII bytes must be identical per seed");
}

#[test]
fn repeated_checks_are_identical() {
    let layout = odrc_layoutgen::generate_layout(&DesignSpec::tiny(98));
    let first = Engine::sequential().check(&layout, &deck());
    for _ in 0..3 {
        let again = Engine::sequential().check(&layout, &deck());
        assert_eq!(first.violations, again.violations);
        assert_eq!(first.stats, again.stats);
    }
}

#[test]
fn parallel_mode_is_deterministic_across_device_sizes() {
    let layout = odrc_layoutgen::generate_layout(&DesignSpec::tiny(97));
    let d = deck();
    let reference = Engine::parallel_on(Device::new(1)).check(&layout, &d);
    for workers in [2usize, 3, 7] {
        let r = Engine::parallel_on(Device::new(workers)).check(&layout, &d);
        assert_eq!(
            reference.violations, r.violations,
            "device with {workers} workers diverged"
        );
    }
}

#[test]
fn violation_order_is_canonical() {
    let layout = odrc_layoutgen::generate_layout(&DesignSpec::tiny(96));
    let report = Engine::sequential().check(&layout, &deck());
    let mut sorted = report.violations.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        report.violations, sorted,
        "reports are sorted and deduplicated"
    );
}

#[test]
fn layout_import_is_stable() {
    let design = generate(&DesignSpec::tiny(95));
    let l1 = Layout::from_library(&design.library).expect("import");
    let l2 = Layout::from_library(&design.library).expect("import");
    assert_eq!(l1.cell_count(), l2.cell_count());
    assert_eq!(l1.top(), l2.top());
    assert_eq!(l1.layers(), l2.layers());
    for layer in l1.layers() {
        assert_eq!(l1.flatten_layer(layer), l2.flatten_layer(layer));
    }
}
