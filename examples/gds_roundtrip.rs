//! GDSII interface tour: build a hierarchical library by hand (cells,
//! SREF, AREF, paths, texts, properties), write it to disk, read it
//! back, import it, and query it — the interface layer of §V-A.
//!
//! ```text
//! cargo run -p odrc-bench --release --example gds_roundtrip
//! ```

use odrc_db::Layout;
use odrc_gdsii::model::ArrayParams;
use odrc_gdsii::{
    BoundaryElement, Element, Library, PathElement, RefElement, Structure, TextElement,
};
use odrc_geometry::{Point, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = Library::new("handmade");

    // A leaf cell: one L-shaped polygon with a name property.
    let mut via_cell = Structure::new("VIA_PATTERN");
    via_cell.elements.push(Element::Boundary(BoundaryElement {
        layer: 1,
        datatype: 0,
        points: vec![
            Point::new(0, 0),
            Point::new(0, 40),
            Point::new(20, 40),
            Point::new(20, 20),
            Point::new(40, 20),
            Point::new(40, 0),
        ],
        properties: vec![(1, "pad".to_owned())],
    }));
    lib.structures.push(via_cell);

    // The top cell: an SREF (rotated + mirrored), a 4x3 AREF, a wire
    // path and a text label.
    let mut top = Structure::new("TOP");
    let mut placed = RefElement::sref("VIA_PATTERN", Point::new(500, 0));
    placed.angle_deg = 90.0;
    placed.mirror_x = true;
    top.elements.push(Element::Ref(placed));
    top.elements.push(Element::Ref(RefElement {
        sname: "VIA_PATTERN".to_owned(),
        origin: Point::new(0, 200),
        mirror_x: false,
        angle_deg: 0.0,
        mag: 1.0,
        array: Some(ArrayParams {
            cols: 4,
            rows: 3,
            col_step: Point::new(100, 0),
            row_step: Point::new(0, 100),
        }),
    }));
    top.elements.push(Element::Path(PathElement {
        layer: 2,
        datatype: 0,
        path_type: 2,
        width: 24,
        points: vec![
            Point::new(0, 600),
            Point::new(400, 600),
            Point::new(400, 900),
        ],
        properties: vec![(1, "net0".to_owned())],
    }));
    top.elements.push(Element::Text(TextElement {
        layer: 63,
        texttype: 0,
        position: Point::new(10, 10),
        string: "handmade demo".to_owned(),
    }));
    lib.structures.push(top);

    // Write to disk and read back: the stream must round-trip exactly.
    let path = std::env::temp_dir().join("odrc_roundtrip.gds");
    odrc_gdsii::write_file(&lib, &path)?;
    let size = std::fs::metadata(&path)?.len();
    let back = odrc_gdsii::read_file(&path)?;
    assert_eq!(back, lib, "GDSII round-trip must be exact");
    println!(
        "wrote and re-read {} ({size} bytes): exact match",
        path.display()
    );

    // Import into the layout database and query it.
    let layout = Layout::from_library(&back)?;
    println!(
        "top cell '{}', {} cells, layers {:?}",
        layout.cell(layout.top()).name(),
        layout.cell_count(),
        layout.layers()
    );
    println!(
        "layer 1 instances: {} (1 SREF + 12 from the AREF)",
        layout.instance_count(1)
    );

    // Window query with hierarchical MBR pruning (§IV-A).
    let mut hits = 0;
    layout.layer_query(1, Rect::from_coords(0, 150, 250, 450), |f| {
        let _ = f;
        hits += 1;
    });
    println!("window query over the array corner hit {hits} polygons");

    std::fs::remove_file(&path)?;
    Ok(())
}
