//! Quickstart: the paper's Listing 1 workflow.
//!
//! Reads a GDSII layout, defines a small rule deck with the chaining
//! selector/predicate interface, and runs the checks.
//!
//! ```text
//! cargo run -p odrc-bench --release --example quickstart
//! ```

use odrc::{rule, Engine, RuleDeck};
use odrc_db::Layout;
use odrc_layoutgen::{generate, tech, DesignSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In a real flow this would be `odrc_gdsii::read_file("chip.gds")?`.
    // Here we synthesize a small benchmark design and round-trip it
    // through the GDSII stream format to exercise the same interface.
    let design = generate(&DesignSpec::tiny(2024));
    let bytes = odrc_gdsii::write(&design.library)?;
    let db = odrc_gdsii::read(&bytes)?;
    println!(
        "read '{}': {} structures, {} elements",
        db.name,
        db.structures.len(),
        db.element_count()
    );

    let layout = Layout::from_library(&db)?;

    // The rule deck, mirroring Listing 1 of the paper:
    //   db.polygons().is_rectilinear()
    //   db.layer(19).width().greater_than(18)
    //   db.layer(20).polygons().ensures(|p| !p.name.empty())
    let mut deck = RuleDeck::default();
    deck.add_rules([
        rule().polygons().is_rectilinear(),
        rule().layer(19).width().greater_than(18).named("M1.W.1"),
        rule().layer(20).polygons().ensures("non-empty-name", |p| {
            p.name.map(|n| !n.is_empty()).unwrap_or(false)
        }),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
    ]);

    let report = Engine::sequential().check(&layout, &deck);
    println!("\n{} violations:", report.violations.len());
    for v in report.violations.iter().take(10) {
        println!("  {v}");
    }
    if report.violations.len() > 10 {
        println!("  ... and {} more", report.violations.len() - 10);
    }

    println!("\nruntime breakdown:\n{}", report.profile);
    println!(
        "checks computed: {}, reused from hierarchy: {}",
        report.stats.checks_computed, report.stats.checks_reused
    );
    Ok(())
}
