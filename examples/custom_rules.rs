//! Extending the rule deck: user predicates via `ensures` (§V-B) and
//! the engine's ablation options (§IV-B, §IV-C).
//!
//! ```text
//! cargo run -p odrc-bench --release --example custom_rules
//! ```

use std::time::Instant;

use odrc::{rule, Engine, EngineOptions, RuleDeck};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};

fn main() {
    let layout = generate_layout(&DesignSpec::paper("uart").expect("uart exists"));

    // Custom predicates: anything `Fn(PolygonInfo) -> bool`.
    let deck = RuleDeck::new(vec![
        // Every routing wire must carry a net name.
        rule()
            .layer(tech::M2)
            .polygons()
            .ensures("named-nets", |p| p.name.is_some()),
        // Vias must be exactly square.
        rule()
            .layer(tech::V1)
            .polygons()
            .ensures("square-vias", |p| {
                let m = p.polygon.mbr();
                m.width() == m.height()
            }),
        // No metal-2 sliver shorter than 100 dbu.
        rule()
            .layer(tech::M2)
            .polygons()
            .ensures("no-slivers", |p| {
                let m = p.polygon.mbr();
                m.width().max(m.height()) >= 100
            }),
        // A conventional spacing rule for comparison.
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
    ]);

    let report = Engine::sequential().check(&layout, &deck);
    println!("violations with custom rules: {}", report.violations.len());
    for r in deck.rules() {
        println!(
            "  {:<24} {:>6}",
            r.name,
            report.violations_of(&r.name).count()
        );
    }

    // Ablations: the same deck with the paper's optimizations disabled.
    println!("\nablation timings (sequential M1 spacing):");
    let space_only = RuleDeck::new(vec![rule()
        .layer(tech::M1)
        .space()
        .greater_than(tech::M1_SPACE)
        .named("M1.S.1")]);
    let variants: [(&str, EngineOptions); 3] = [
        ("baseline (partition + pruning)", EngineOptions::default()),
        (
            "no hierarchy reuse",
            EngineOptions {
                pruning: false,
                ..EngineOptions::default()
            },
        ),
        (
            "no row partition",
            EngineOptions {
                partition: false,
                ..EngineOptions::default()
            },
        ),
    ];
    let mut reference = None;
    for (label, opts) in variants {
        let t = Instant::now();
        let r = Engine::sequential()
            .with_options(opts)
            .check(&layout, &space_only);
        let dt = t.elapsed();
        println!(
            "  {:<32} {:>8.3} ms  ({} computed, {} reused, {} rows)",
            label,
            dt.as_secs_f64() * 1e3,
            r.stats.checks_computed,
            r.stats.checks_reused,
            r.stats.rows
        );
        match &reference {
            None => reference = Some(r.violations),
            Some(v) => assert_eq!(v, &r.violations, "ablations must not change results"),
        }
    }
}
