//! Full-chip DRC: runs the complete BEOL rule deck over one of the
//! paper's benchmark designs in both engine modes and cross-checks the
//! results — the scenario of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run -p odrc-bench --release --example full_chip_drc [design]
//! ```

use std::time::Instant;

use odrc::{rule, Engine, RuleDeck, ViolationKind};
use odrc_layoutgen::{generate_layout, tech, DesignSpec};

fn beol_deck() -> RuleDeck {
    RuleDeck::new(vec![
        rule()
            .layer(tech::M1)
            .width()
            .greater_than(tech::M1_WIDTH)
            .named("M1.W.1"),
        rule()
            .layer(tech::M2)
            .width()
            .greater_than(tech::M2_WIDTH)
            .named("M2.W.1"),
        rule()
            .layer(tech::M3)
            .width()
            .greater_than(tech::M3_WIDTH)
            .named("M3.W.1"),
        rule()
            .layer(tech::M1)
            .area()
            .greater_than(tech::M1_AREA)
            .named("M1.A.1"),
        rule()
            .layer(tech::M1)
            .space()
            .greater_than(tech::M1_SPACE)
            .named("M1.S.1"),
        rule()
            .layer(tech::M2)
            .space()
            .greater_than(tech::M2_SPACE)
            .named("M2.S.1"),
        rule()
            .layer(tech::M3)
            .space()
            .greater_than(tech::M3_SPACE)
            .named("M3.S.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M1)
            .greater_than(tech::V1_M1_ENCLOSURE)
            .named("V1.M1.EN.1"),
        rule()
            .layer(tech::V1)
            .enclosed_by(tech::M2)
            .greater_than(tech::V1_M2_ENCLOSURE)
            .named("V1.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M2)
            .greater_than(tech::V2_M2_ENCLOSURE)
            .named("V2.M2.EN.1"),
        rule()
            .layer(tech::V2)
            .enclosed_by(tech::M3)
            .greater_than(tech::V2_M3_ENCLOSURE)
            .named("V2.M3.EN.1"),
    ])
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ibex".to_owned());
    let spec = DesignSpec::paper(&name).unwrap_or_else(|| {
        eprintln!("unknown design '{name}', using ibex");
        DesignSpec::paper("ibex").expect("ibex exists")
    });
    println!(
        "generating {} ({} rows x {} sites)...",
        spec.name, spec.rows, spec.sites_per_row
    );
    let layout = generate_layout(&spec);
    println!(
        "{} cells, layers {:?}",
        layout.cell_count(),
        layout.layers()
    );

    let deck = beol_deck();

    let t = Instant::now();
    let seq = Engine::sequential().check(&layout, &deck);
    let seq_time = t.elapsed();

    let t = Instant::now();
    let par = Engine::parallel().check(&layout, &deck);
    let par_time = t.elapsed();

    assert_eq!(
        seq.violations, par.violations,
        "sequential and parallel modes must agree"
    );

    println!("\nviolations by rule:");
    for rule in deck.rules() {
        let n = seq.violations_of(&rule.name).count();
        println!("  {:<12} {:>6}", rule.name, n);
    }
    let by_kind = |k: ViolationKind| seq.violations.iter().filter(|v| v.kind == k).count();
    println!(
        "\ntotal {} (width {}, space {}, area {}, enclosure {})",
        seq.violations.len(),
        by_kind(ViolationKind::Width),
        by_kind(ViolationKind::Space),
        by_kind(ViolationKind::Area),
        by_kind(ViolationKind::Enclosure),
    );
    println!(
        "\nsequential: {:.3}s  parallel: {:.3}s (both modes verified equal)",
        seq_time.as_secs_f64(),
        par_time.as_secs_f64()
    );
    println!(
        "hierarchy reuse: {} checks computed, {} reused; {} partition rows",
        seq.stats.checks_computed, seq.stats.checks_reused, seq.stats.rows
    );
}
